//! Experiment sizing: one knob that scales every experiment from unit-test
//! smoke runs to paper-scale sweeps.

use crate::proctor::ProctorConfig;
use crate::split::SplitConfig;
use alba_ml::{AutoencoderParams, Criterion, ForestParams, LogRegParams, ModelFamily, ModelSpec};
use alba_telemetry::Scale;
use serde::{Deserialize, Serialize};

/// Sizing of one experiment run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunScale {
    /// Telemetry campaign size.
    pub campaign: Scale,
    /// Queries per active-learning session (the paper queries up to 1000
    /// and plots the first 250).
    pub budget: usize,
    /// Train/test split repetitions (5 in the paper).
    pub n_splits: usize,
    /// Repetitions of the stochastic baselines per split (10 in the paper).
    pub baseline_repeats: usize,
    /// Split / feature-selection configuration.
    pub split: SplitConfig,
    /// Proctor autoencoder sizing.
    pub proctor_ae: AutoencoderParams,
    /// Master seed.
    pub seed: u64,
}

impl RunScale {
    /// Unit-test sizing: seconds.
    pub fn smoke(seed: u64) -> Self {
        Self {
            campaign: Scale::Smoke,
            budget: 12,
            n_splits: 2,
            baseline_repeats: 1,
            split: SplitConfig { train_fraction: 0.5, top_k_features: 150 },
            proctor_ae: AutoencoderParams {
                encoder_widths: vec![64, 32],
                epochs: 8,
                batch_size: 64,
                seed: 0,
            },
            seed,
        }
    }

    /// Reduced-scale reproduction (default): minutes, preserves every
    /// qualitative result.
    pub fn default_scale(seed: u64) -> Self {
        Self {
            campaign: Scale::Default,
            budget: 150,
            n_splits: 4,
            baseline_repeats: 2,
            split: SplitConfig { train_fraction: 0.4, top_k_features: 1200 },
            proctor_ae: AutoencoderParams::reduced(),
            seed,
        }
    }

    /// Paper-scale sweep: hours.
    pub fn full(seed: u64) -> Self {
        Self {
            campaign: Scale::Full,
            budget: 1000,
            n_splits: 5,
            baseline_repeats: 10,
            split: SplitConfig { train_fraction: 0.4, top_k_features: 2000 },
            proctor_ae: AutoencoderParams::paper(),
            seed,
        }
    }

    /// Parses `smoke` / `default` / `full`.
    pub fn parse(name: &str, seed: u64) -> Option<Self> {
        match name {
            "smoke" => Some(Self::smoke(seed)),
            "default" => Some(Self::default_scale(seed)),
            "full" => Some(Self::full(seed)),
            _ => None,
        }
    }

    /// The supervised model the experiment drivers use at this scale.
    ///
    /// At `Full` scale this is the paper's tuned configuration (Table IV).
    /// At reduced scales the Eclipse forest is shrunk from 200 to 50 trees:
    /// the 200-tree configuration was tuned for a 5x larger dataset and
    /// only multiplies single-core wall time without changing any result
    /// shape (50 vs 200 trees differ by <0.01 F1 on the reduced pools).
    pub fn model(&self, volta: bool) -> ModelSpec {
        if self.campaign == Scale::Full || volta {
            ModelSpec::tuned(ModelFamily::Rf, volta)
        } else {
            ModelSpec::Forest(ForestParams {
                n_estimators: 50,
                max_depth: Some(8),
                criterion: Criterion::Entropy,
                ..ForestParams::default()
            })
        }
    }

    /// Proctor configuration at this scale.
    pub fn proctor(&self, seed: u64) -> ProctorConfig {
        ProctorConfig {
            autoencoder: self.proctor_ae.clone(),
            head: LogRegParams { max_iter: 150, ..LogRegParams::default() },
            budget: self.budget,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_names() {
        assert!(RunScale::parse("smoke", 1).is_some());
        assert!(RunScale::parse("default", 1).is_some());
        assert!(RunScale::parse("full", 1).is_some());
        assert!(RunScale::parse("huge", 1).is_none());
    }

    #[test]
    fn paper_scale_matches_paper_parameters() {
        let f = RunScale::full(0);
        assert_eq!(f.budget, 1000);
        assert_eq!(f.n_splits, 5);
        assert_eq!(f.baseline_repeats, 10);
        assert_eq!(f.split.top_k_features, 2000);
        assert_eq!(f.proctor_ae.encoder_widths.last(), Some(&2000));
    }

    #[test]
    fn smoke_is_smaller_than_default() {
        let s = RunScale::smoke(0);
        let d = RunScale::default_scale(0);
        assert!(s.budget < d.budget);
        assert!(s.n_splits <= d.n_splits);
    }
}
