//! Minimal SVG rendering of experiment curves — regenerates the paper's
//! figures as vector graphics (no plotting dependency; the SVG is written
//! by hand, which is ample for line charts with confidence bands).

use alba_active::MethodCurves;

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 360.0;
const MARGIN_L: f64 = 56.0;
const MARGIN_R: f64 = 150.0;
const MARGIN_T: f64 = 36.0;
const MARGIN_B: f64 = 48.0;

/// Color cycle (paper-style qualitative palette).
const COLORS: [&str; 7] =
    ["#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#17becf"];

fn x_pos(i: usize, n: usize) -> f64 {
    MARGIN_L + (WIDTH - MARGIN_L - MARGIN_R) * i as f64 / (n.max(2) - 1) as f64
}

fn y_pos(v: f64, lo: f64, hi: f64) -> f64 {
    let t = ((v - lo) / (hi - lo).max(1e-12)).clamp(0.0, 1.0);
    HEIGHT - MARGIN_B - (HEIGHT - MARGIN_T - MARGIN_B) * t
}

fn polyline(points: &[(f64, f64)]) -> String {
    points.iter().map(|(x, y)| format!("{x:.1},{y:.1}")).collect::<Vec<_>>().join(" ")
}

/// Renders one panel (e.g. "F1-score vs queries") for a set of methods.
///
/// `select` picks which trajectory of a [`MethodCurves`] to draw (mean) and
/// band (CI half-width). The y-range is fixed to `[0, 1]` — every metric in
/// the paper is a rate or a score.
pub fn render_curves_svg(
    title: &str,
    x_label: &str,
    curves: &[MethodCurves],
    select: impl Fn(&MethodCurves) -> (&[f64], &[f64]),
) -> String {
    let mut svg = String::new();
    svg.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">"#
    ));
    svg.push_str(r#"<rect width="100%" height="100%" fill="white"/>"#);
    svg.push_str(&format!(
        r#"<text x="{:.1}" y="22" font-family="sans-serif" font-size="15" font-weight="bold">{title}</text>"#,
        MARGIN_L
    ));

    // Axes.
    let x0 = MARGIN_L;
    let x1 = WIDTH - MARGIN_R;
    let y0 = HEIGHT - MARGIN_B;
    let y1 = MARGIN_T;
    svg.push_str(&format!(
        r#"<line x1="{x0}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="black"/><line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" stroke="black"/>"#
    ));
    // Y ticks at 0, 0.25, 0.5, 0.75, 1.
    for k in 0..=4 {
        let v = k as f64 / 4.0;
        let y = y_pos(v, 0.0, 1.0);
        svg.push_str(&format!(
            r##"<line x1="{:.1}" y1="{y:.1}" x2="{x0}" y2="{y:.1}" stroke="black"/><text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="11" text-anchor="end">{v:.2}</text><line x1="{x0}" y1="{y:.1}" x2="{x1}" y2="{y:.1}" stroke="#dddddd" stroke-dasharray="3,3"/>"##,
            x0 - 4.0,
            x0 - 7.0,
            y + 4.0
        ));
    }
    let n = curves.iter().map(|c| select(c).0.len()).max().unwrap_or(2);
    // X ticks: 5 evenly spaced query counts.
    for k in 0..=4 {
        let q = k * (n.max(2) - 1) / 4;
        let x = x_pos(q, n);
        svg.push_str(&format!(
            r#"<line x1="{x:.1}" y1="{y0}" x2="{x:.1}" y2="{:.1}" stroke="black"/><text x="{x:.1}" y="{:.1}" font-family="sans-serif" font-size="11" text-anchor="middle">{q}</text>"#,
            y0 + 4.0,
            y0 + 18.0
        ));
    }
    svg.push_str(&format!(
        r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="12" text-anchor="middle">{x_label}</text>"#,
        (x0 + x1) / 2.0,
        HEIGHT - 12.0
    ));

    // Curves with CI bands + legend.
    for (ci_idx, curve) in curves.iter().enumerate() {
        let color = COLORS[ci_idx % COLORS.len()];
        let (mean, band) = select(curve);
        if mean.is_empty() {
            continue;
        }
        // Confidence band polygon (upper then reversed lower).
        if band.iter().any(|&b| b > 0.0) {
            let mut pts: Vec<(f64, f64)> = mean
                .iter()
                .zip(band)
                .enumerate()
                .map(|(i, (&m, &b))| (x_pos(i, n), y_pos(m + b, 0.0, 1.0)))
                .collect();
            let lower: Vec<(f64, f64)> = mean
                .iter()
                .zip(band)
                .enumerate()
                .rev()
                .map(|(i, (&m, &b))| (x_pos(i, n), y_pos(m - b, 0.0, 1.0)))
                .collect();
            pts.extend(lower);
            svg.push_str(&format!(
                r#"<polygon points="{}" fill="{color}" opacity="0.15"/>"#,
                polyline(&pts)
            ));
        }
        let pts: Vec<(f64, f64)> =
            mean.iter().enumerate().map(|(i, &m)| (x_pos(i, n), y_pos(m, 0.0, 1.0))).collect();
        svg.push_str(&format!(
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
            polyline(&pts)
        ));
        // Legend entry.
        let ly = MARGIN_T + 16.0 * ci_idx as f64;
        svg.push_str(&format!(
            r#"<line x1="{:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2.5"/><text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="11">{}</text>"#,
            x1 + 8.0,
            x1 + 30.0,
            x1 + 36.0,
            ly + 4.0,
            curve.name
        ));
    }
    svg.push_str("</svg>");
    svg
}

/// Renders the three paper panels (F1, false-alarm rate, anomaly-miss
/// rate) for one curves result, returning `(file stem, svg)` pairs.
pub fn figure_panels(stem: &str, curves: &[MethodCurves]) -> Vec<(String, String)> {
    vec![
        (
            format!("{stem}_f1"),
            render_curves_svg("Macro F1-score", "labeled samples", curves, |c| {
                (&c.f1.mean, &c.f1.ci95)
            }),
        ),
        (
            format!("{stem}_false_alarm"),
            render_curves_svg("False alarm rate", "labeled samples", curves, |c| {
                (&c.false_alarm.mean, &c.false_alarm.ci95)
            }),
        ),
        (
            format!("{stem}_miss_rate"),
            render_curves_svg("Anomaly miss rate", "labeled samples", curves, |c| {
                (&c.miss_rate.mean, &c.miss_rate.ci95)
            }),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use alba_active::CurveBand;

    fn toy_curves() -> Vec<MethodCurves> {
        let mk = |name: &str, up: bool| MethodCurves {
            name: name.into(),
            f1: CurveBand {
                mean: (0..20).map(|i| if up { 0.5 + 0.02 * i as f64 } else { 0.5 }).collect(),
                ci95: vec![0.03; 20],
            },
            false_alarm: CurveBand { mean: vec![0.5; 20], ci95: vec![0.0; 20] },
            miss_rate: CurveBand { mean: vec![0.1; 20], ci95: vec![0.01; 20] },
        };
        vec![mk("uncertainty", true), mk("random", false)]
    }

    #[test]
    fn svg_is_well_formed_and_contains_curves() {
        let curves = toy_curves();
        let svg = render_curves_svg("F1", "queries", &curves, |c| (&c.f1.mean, &c.f1.ci95));
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2, "one line per method");
        assert_eq!(svg.matches("<polygon").count(), 2, "one CI band per method");
        assert!(svg.contains("uncertainty"));
        assert!(svg.contains("random"));
        // Balanced tags.
        assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
    }

    #[test]
    fn zero_ci_bands_are_omitted() {
        let curves = toy_curves();
        let svg = render_curves_svg("FAR", "queries", &curves, |c| {
            (&c.false_alarm.mean, &c.false_alarm.ci95)
        });
        assert_eq!(svg.matches("<polygon").count(), 0, "no CI -> no band polygon");
    }

    #[test]
    fn panels_produce_three_files() {
        let curves = toy_curves();
        let panels = figure_panels("fig3", &curves);
        assert_eq!(panels.len(), 3);
        assert_eq!(panels[0].0, "fig3_f1");
        assert!(panels.iter().all(|(_, svg)| svg.contains("</svg>")));
    }

    #[test]
    fn coordinates_stay_in_canvas() {
        let curves = toy_curves();
        let svg = render_curves_svg("F1", "q", &curves, |c| (&c.f1.mean, &c.f1.ci95));
        // Crude check: no negative coordinates.
        assert!(!svg.contains("\"-"), "negative coordinate in {svg}");
    }
}
