//! End-to-end dataset preparation: campaign generation → preprocessing →
//! feature extraction (Fig. 1's first stage).

use alba_data::Dataset;
use alba_features::{extract_features, FeatureExtractor, Mvts, PreprocessConfig, TsFresh};
use alba_store::{FeatureKey, TelemetryStore};
use alba_telemetry::{class_names, CampaignConfig, Scale};
use serde::{Deserialize, Serialize};

/// Environment variable naming a [`TelemetryStore`] directory. When set
/// (and non-empty), [`SystemData::generate`] memoises campaigns and
/// feature matrices there, surviving across processes — the CI gate uses
/// this to re-run experiments from a warm cache.
pub const STORE_DIR_ENV: &str = "ALBA_STORE_DIR";

/// Which feature-extraction toolkit to use (Sec. III-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureMethod {
    /// MVTS: 48 statistical features per metric.
    Mvts,
    /// TSFRESH-style: 176 features per metric.
    TsFresh,
}

impl FeatureMethod {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            FeatureMethod::Mvts => "MVTS",
            FeatureMethod::TsFresh => "TSFRESH",
        }
    }

    /// The extractor instance.
    pub fn extractor(self) -> Box<dyn FeatureExtractor> {
        match self {
            FeatureMethod::Mvts => Box::new(Mvts),
            FeatureMethod::TsFresh => Box::new(TsFresh),
        }
    }
}

/// Which of the paper's two systems a dataset comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum System {
    /// The Volta testbed (11 applications, 4-node runs).
    Volta,
    /// The Eclipse production system (6 applications, 4/8/16-node runs).
    Eclipse,
}

impl System {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            System::Volta => "Volta",
            System::Eclipse => "Eclipse",
        }
    }

    /// The campaign configuration for this system at a given scale.
    pub fn campaign(self, scale: Scale, seed: u64) -> CampaignConfig {
        match self {
            System::Volta => CampaignConfig::volta(scale, seed),
            System::Eclipse => CampaignConfig::eclipse(scale, seed),
        }
    }

    /// The feature extractor the paper found best for this system
    /// (Table V: TSFRESH on Volta, MVTS on Eclipse).
    pub fn best_feature_method(self) -> FeatureMethod {
        match self {
            System::Volta => FeatureMethod::TsFresh,
            System::Eclipse => FeatureMethod::Mvts,
        }
    }
}

/// A fully featurised system dataset, ready for splitting.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SystemData {
    /// Which system generated the telemetry.
    pub system: System,
    /// Extraction method used.
    pub method: FeatureMethod,
    /// The feature dataset (one row per node sample; *not* yet cleaned of
    /// degenerate columns — that happens per split to avoid leakage).
    pub dataset: Dataset,
}

impl SystemData {
    /// Generates the campaign, preprocesses every sample and extracts
    /// features. This is the expensive step; results are memoised per
    /// `(system, method, scale, seed)` so that the eight experiment drivers
    /// sharing a dataset pay for generation once per process.
    pub fn generate(system: System, method: FeatureMethod, scale: Scale, seed: u64) -> Self {
        use parking_lot::Mutex;
        use std::collections::HashMap;
        use std::sync::Arc;
        type Key = (System, FeatureMethod, Scale, u64);
        // alba-lint: allow(nondet-taint) reason="keyed memo cache; lookups only, never iterated"
        static CACHE: Mutex<Option<HashMap<Key, Arc<SystemData>>>> = Mutex::new(None);

        let key = (system, method, scale, seed);
        if let Some(hit) = CACHE.lock().as_ref().and_then(|m| m.get(&key).cloned()) {
            return (*hit).clone();
        }
        let data = Self::generate_via_env_store(system, method, scale, seed);
        let mut guard = CACHE.lock();
        // alba-lint: allow(nondet-taint) reason="keyed memo cache; lookups only, never iterated"
        let map = guard.get_or_insert_with(HashMap::new);
        // Datasets are large; keep only a handful of distinct configurations.
        if map.len() >= 6 {
            map.clear();
        }
        map.insert(key, Arc::new(data.clone()));
        data
    }

    /// Generates through the on-disk store named by [`STORE_DIR_ENV`]
    /// when that variable is set, falling back to the pure in-process
    /// path otherwise (or when the store is unusable).
    fn generate_via_env_store(
        system: System,
        method: FeatureMethod,
        scale: Scale,
        seed: u64,
    ) -> Self {
        let Ok(dir) = std::env::var(STORE_DIR_ENV) else {
            return Self::generate_uncached(system, method, scale, seed);
        };
        if dir.is_empty() {
            return Self::generate_uncached(system, method, scale, seed);
        }
        match TelemetryStore::open(&dir)
            .and_then(|store| Self::generate_stored(&store, system, method, scale, seed))
        {
            Ok(data) => data,
            Err(e) => {
                alba_obs::global().event(
                    "store_fallback",
                    &[("dir", dir.into()), ("error", e.to_string().into())],
                );
                Self::generate_uncached(system, method, scale, seed)
            }
        }
    }

    /// Generates through an explicit [`TelemetryStore`]: the campaign and
    /// the extracted feature matrix are both memoised on disk, so a warm
    /// store turns the expensive pipeline into two checksummed reads.
    pub fn generate_stored(
        store: &TelemetryStore,
        system: System,
        method: FeatureMethod,
        scale: Scale,
        seed: u64,
    ) -> alba_store::Result<Self> {
        let obs = alba_obs::global();
        let campaign = system.campaign(scale, seed);
        let extractor = method.extractor();
        let key = FeatureKey::whole_run(
            TelemetryStore::campaign_key(&campaign),
            extractor.as_ref(),
            PreprocessConfig::default(),
            &class_names(),
        );
        // The feature cache is consulted first: on a hit the raw telemetry
        // is never touched, so a warm read costs one checksummed file.
        let dataset = store.features().get_or_extract_with(&key, extractor.as_ref(), || {
            let _span = obs.span("exp_stage_ns", &[("stage", "generate_campaign")]);
            store.get_or_generate_campaign(&campaign)
        })?;
        Ok(Self { system, method, dataset })
    }

    /// [`SystemData::generate`] without memoisation.
    pub fn generate_uncached(
        system: System,
        method: FeatureMethod,
        scale: Scale,
        seed: u64,
    ) -> Self {
        let obs = alba_obs::global();
        let campaign = system.campaign(scale, seed);
        let samples = {
            let _span = obs.span("exp_stage_ns", &[("stage", "generate_campaign")]);
            campaign.generate()
        };
        let extractor = method.extractor();
        let _span = obs.span("exp_stage_ns", &[("stage", "extract_features")]);
        let dataset = extract_features(
            &samples,
            extractor.as_ref(),
            &PreprocessConfig::default(),
            &class_names(),
        );
        Self { system, method, dataset }
    }

    /// Convenience: generate with the system's best extraction method.
    pub fn generate_best(system: System, scale: Scale, seed: u64) -> Self {
        Self::generate(system, system.best_feature_method(), scale, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_methods_match_table_v() {
        assert_eq!(System::Volta.best_feature_method(), FeatureMethod::TsFresh);
        assert_eq!(System::Eclipse.best_feature_method(), FeatureMethod::Mvts);
    }

    #[test]
    fn generate_produces_labeled_features() {
        let sd = SystemData::generate(System::Volta, FeatureMethod::Mvts, Scale::Smoke, 3);
        assert!(sd.dataset.len() > 100, "smoke campaign yields hundreds of samples");
        assert_eq!(sd.dataset.n_classes(), 6);
        assert_eq!(sd.dataset.encoder.decode(0), Some("healthy"));
        // ~10% anomaly ratio.
        let ratio = sd.dataset.anomaly_ratio(0);
        assert!((0.07..=0.14).contains(&ratio), "anomaly ratio {ratio}");
        // All 11 applications present.
        assert_eq!(sd.dataset.applications().len(), 11);
    }

    #[test]
    fn stored_generation_matches_the_in_memory_path_bit_for_bit() {
        let dir = std::env::temp_dir().join(format!("alba-core-store-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = TelemetryStore::open(&dir).unwrap();

        let direct =
            SystemData::generate_uncached(System::Volta, FeatureMethod::Mvts, Scale::Smoke, 29);
        let cold = SystemData::generate_stored(
            &store,
            System::Volta,
            FeatureMethod::Mvts,
            Scale::Smoke,
            29,
        )
        .unwrap();
        let warm = SystemData::generate_stored(
            &store,
            System::Volta,
            FeatureMethod::Mvts,
            Scale::Smoke,
            29,
        )
        .unwrap();

        for other in [&cold, &warm] {
            assert_eq!(direct.dataset.x.shape(), other.dataset.x.shape());
            for (a, b) in direct.dataset.x.as_slice().iter().zip(other.dataset.x.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "stored path must be bit-identical");
            }
            assert_eq!(direct.dataset.y, other.dataset.y);
            assert_eq!(direct.dataset.meta, other.dataset.meta);
            assert_eq!(direct.dataset.feature_names, other.dataset.feature_names);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eclipse_smoke_has_six_apps_and_three_node_counts() {
        let sd = SystemData::generate(System::Eclipse, FeatureMethod::Mvts, Scale::Smoke, 4);
        assert_eq!(sd.dataset.applications().len(), 6);
        let mut node_counts: Vec<usize> = sd.dataset.meta.iter().map(|m| m.node_count).collect();
        node_counts.sort_unstable();
        node_counts.dedup();
        assert_eq!(node_counts, vec![4, 8, 16]);
    }
}
