//! # albadross
//!
//! A from-scratch Rust reproduction of *"ALBADross: Active Learning Based
//! Anomaly Diagnosis for Production HPC Systems"* (Aksar et al., IEEE
//! CLUSTER 2022).
//!
//! The crate ties the workspace together into the paper's pipeline
//! (Fig. 1): telemetry campaigns ([`alba_telemetry`]) → statistical feature
//! extraction and chi-square selection ([`alba_features`]) → supervised
//! models ([`alba_ml`]) → pool-based active learning ([`alba_active`]) —
//! plus the Proctor semi-supervised baseline and one experiment driver per
//! table and figure of the evaluation.
//!
//! ```no_run
//! use albadross::prelude::*;
//!
//! // Reproduce Fig. 3 (Volta) at reduced scale:
//! let result = run_curves(&CurvesConfig {
//!     system: System::Volta,
//!     method: None, // Table V best (TSFRESH on Volta)
//!     scale: RunScale::default_scale(42),
//!     include_proctor: true,
//! });
//! println!("{}", result.render());
//! ```

#![warn(missing_docs)]

pub mod data;
pub mod experiments;
pub mod monitor;
pub mod plot;
pub mod proctor;
pub mod report;
pub mod scale;
pub mod split;

pub use data::{FeatureMethod, System, SystemData, STORE_DIR_ENV};
pub use monitor::{Alarm, MonitorConfig, NodeMonitor, WindowVerdict};
pub use plot::{figure_panels, render_curves_svg};
pub use proctor::{run_proctor_session, Proctor, ProctorConfig};
pub use scale::RunScale;
pub use split::{
    prepare_pre_split, prepare_split, seed_and_pool, seed_and_pool_filtered, PreparedSplit,
    SeedPool, SplitConfig,
};

/// Convenience re-exports for examples and downstream users.
pub mod prelude {
    pub use crate::data::{FeatureMethod, System, SystemData};
    pub use crate::experiments::{
        run_curves, run_robustness, run_table4, run_table5, run_unseen_apps, run_unseen_inputs,
        CurvesConfig, DrilldownResult, RobustnessConfig, Table4Config, UnseenAppsConfig,
        UnseenInputsConfig,
    };
    pub use crate::proctor::{run_proctor_session, ProctorConfig};
    pub use crate::scale::RunScale;
    pub use crate::split::{prepare_split, seed_and_pool, SplitConfig};
    pub use alba_active::{run_session, SessionConfig, Strategy};
    pub use alba_ml::{Classifier, ModelFamily, ModelSpec, Scores};
    pub use alba_telemetry::Scale;
}
