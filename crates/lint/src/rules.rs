//! The rule catalog and the per-file rule engine.
//!
//! Every rule is a token-level pattern plus a path scope. Scopes are
//! deliberately coarse (path prefixes, forward slashes, relative to the
//! workspace root) — the point is to guard the crates whose *outputs*
//! must replay byte-identically, not to model the type system. Matching
//! happens on the [`crate::lexer`] token stream, so patterns inside
//! comments, strings, and raw strings can never fire.
//!
//! | rule | guards against |
//! |------|----------------|
//! | `no-float-partial-cmp` | `partial_cmp(..).unwrap()/expect(..)` float ordering — panics on NaN; use `total_cmp` |
//! | `no-ambient-time` | `Instant::now`/`SystemTime::now` outside the obs clock seam |
//! | `no-ambient-entropy` | `thread_rng`/`from_entropy`/`OsRng`/`getrandom` — all RNGs must be seeded |
//! | `no-unordered-iteration` | `HashMap`/`HashSet` in crates that serialise ordered output |
//! | `no-panic-in-fallible` | `unwrap`/`expect`/`panic!`-family on non-test runtime paths of serve/store/chaos/net |
//! | `no-direct-failpoint-bypass` | direct `std::fs`/`File`/`OpenOptions` I/O in serve, bypassing the store's `set_fault_hook` seam |
//! | `no-unbounded-channel` | `VecDeque::new`/`LinkedList::new`/`mpsc::channel` queues on the network ingest path — every buffer a peer can fill must be born bounded |
//! | `no-untraced-stage` | stage functions in serve's service.rs that open an obs span without touching the causal tracer — metrics and traces must cover the same stages |
//! | `no-unordered-join` | `try_iter`/`try_recv`/iterating a receiver in the parallel runtime — results must be joined by a counted blocking barrier, in slot order, never in arrival order |
//!
//! Three further rules — `reachable-panic`, `nondet-taint`,
//! `lock-order-cycle` — are produced by the interprocedural engine in
//! [`crate::dataflow`], not by this per-file engine; they live in the
//! same catalog so `allow(...)` validation and `--rules` cover them.

use crate::lexer::{LexFile, Tok, Token};

/// A single diagnostic before suppression/baseline filtering.
#[derive(Clone, Debug, PartialEq)]
pub struct RawFinding {
    /// Rule that fired.
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// Human explanation.
    pub message: String,
}

/// Static description of one rule (the catalog entry).
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Kebab-case rule name, as used in `allow(...)`.
    pub name: &'static str,
    /// One-line description for `--rules` and the docs.
    pub summary: &'static str,
}

/// The full rule catalog, in reporting order.
pub const CATALOG: &[RuleInfo] = &[
    RuleInfo {
        name: "no-float-partial-cmp",
        summary: "float ordering must use total_cmp; partial_cmp().unwrap()/expect() panics on NaN",
    },
    RuleInfo {
        name: "no-ambient-time",
        summary: "Instant::now/SystemTime::now only inside the obs clock seam (crates/obs/src/clock.rs)",
    },
    RuleInfo {
        name: "no-ambient-entropy",
        summary: "thread_rng/from_entropy/OsRng/getrandom forbidden; every RNG must be explicitly seeded",
    },
    RuleInfo {
        name: "no-unordered-iteration",
        summary: "HashMap/HashSet forbidden in serve/store/obs/repro; use BTreeMap/BTreeSet or justify lookup-only use",
    },
    RuleInfo {
        name: "no-panic-in-fallible",
        summary: "unwrap/expect/panic!/unreachable!/todo!/unimplemented! forbidden on non-test serve/store/chaos runtime paths",
    },
    RuleInfo {
        name: "no-direct-failpoint-bypass",
        summary: "serve must not do filesystem I/O directly; store I/O routes through alba-store and its set_fault_hook seam",
    },
    RuleInfo {
        name: "no-unbounded-channel",
        summary: "VecDeque::new/LinkedList::new/mpsc::channel forbidden on the network ingest path; queues a peer can fill must use with_capacity plus an enforced bound",
    },
    RuleInfo {
        name: "no-untraced-stage",
        summary: "a serve service.rs function that opens an obs stage span must also record alba-trace hops, so causal traces cover every stage the metrics cover",
    },
    RuleInfo {
        name: "no-unordered-join",
        summary: "try_iter/try_recv/iterating a receiver forbidden in the parallel runtime; join worker results with a counted blocking recv and reorder by slot, never by arrival",
    },
    RuleInfo {
        name: "reachable-panic",
        summary: "interprocedural: no unwrap/expect/panic!-family/indexing transitively reachable from the hot-path roots (FleetService::tick, par epoch/workers, gateway poll, grid workers); reported with the full call chain",
    },
    RuleInfo {
        name: "nondet-taint",
        summary: "interprocedural: ambient time/entropy and unordered containers must not be reachable from fns whose output is journaled (obs events/exposition, traces, model serialisation)",
    },
    RuleInfo {
        name: "lock-order-cycle",
        summary: "interprocedural: the lock-acquisition-order graph over Type::field lock identities must be acyclic; a cycle is a deadlock candidate",
    },
];

/// True when `name` is a known rule (for validating `allow(...)` lists).
pub fn is_known_rule(name: &str) -> bool {
    name == crate::suppress::BAD_SUPPRESSION || CATALOG.iter().any(|r| r.name == name)
}

/// File-classification facts the rules scope on.
#[derive(Clone, Debug)]
pub struct FileContext {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// First line of the file's `#[cfg(test)]` region, if any.
    pub test_from_line: Option<u32>,
    /// True when the whole file is test/bench/example context.
    pub all_test: bool,
}

impl FileContext {
    /// Classifies `path` (workspace-relative, forward slashes).
    pub fn classify(path: &str, lexed: &LexFile) -> Self {
        let all_test = path.starts_with("tests/")
            || path.contains("/tests/")
            || path.contains("/benches/")
            || path.starts_with("examples/")
            || path.contains("/examples/")
            || path.ends_with("/testutil.rs");
        Self { path: path.to_string(), test_from_line: find_cfg_test(lexed), all_test }
    }

    /// True when `line` sits in test context (whole-file or trailing
    /// `#[cfg(test)]` region).
    pub fn is_test_line(&self, line: u32) -> bool {
        self.all_test || self.test_from_line.is_some_and(|from| line >= from)
    }
}

/// Finds the line of the first `#[cfg(... test ...)]` attribute. The
/// repo convention keeps test modules at the end of each file, so
/// everything from that line onward is treated as test code.
fn find_cfg_test(lexed: &LexFile) -> Option<u32> {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if !(is_punct(toks, i, '#') && is_punct(toks, i + 1, '[') && is_ident(toks, i + 2, "cfg")) {
            continue;
        }
        // Scan the attribute's (...) group for a `test` ident.
        let mut depth = 0i32;
        for t in &toks[i + 3..] {
            match &t.tok {
                Tok::Punct('(') => depth += 1,
                Tok::Punct(')') => {
                    depth -= 1;
                    if depth <= 0 {
                        break;
                    }
                }
                Tok::Punct(']') if depth == 0 => break,
                Tok::Ident(s) if s == "test" && depth >= 1 => return Some(toks[i].line),
                _ => {}
            }
        }
    }
    None
}

fn is_ident(toks: &[Token], i: usize, name: &str) -> bool {
    matches!(toks.get(i), Some(Token { tok: Tok::Ident(s), .. }) if s == name)
}

fn is_punct(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i), Some(Token { tok: Tok::Punct(p), .. }) if *p == c)
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i) {
        Some(Token { tok: Tok::Ident(s), .. }) => Some(s.as_str()),
        _ => None,
    }
}

/// `a :: b` at position `i` (the `a` ident).
fn is_path_pair(toks: &[Token], i: usize, a: &str, b: &str) -> bool {
    is_ident(toks, i, a)
        && is_punct(toks, i + 1, ':')
        && is_punct(toks, i + 2, ':')
        && is_ident(toks, i + 3, b)
}

/// Index just past the `)` matching the `(` at `open` (which must be a
/// `(`), or `None` when unbalanced.
fn skip_parens(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Marks which token indices sit inside a `use ...;` item, so type
/// *imports* don't trip the unordered-container rule.
fn use_statement_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut in_use = false;
    for (i, t) in toks.iter().enumerate() {
        match &t.tok {
            Tok::Ident(s) if s == "use" && !in_use => in_use = true,
            Tok::Punct(';') if in_use => {
                in_use = false;
                continue;
            }
            _ => {}
        }
        mask[i] = in_use;
    }
    mask
}

// ---- path scopes ----------------------------------------------------

fn in_pipeline_scope(path: &str) -> bool {
    // Bench binaries and examples measure wall time legitimately; the
    // lint tool itself is not part of the replayed pipeline.
    !(path.starts_with("crates/bench/")
        || path.starts_with("examples/")
        || path.starts_with("crates/lint/"))
}

fn in_ordered_output_scope(path: &str) -> bool {
    path.starts_with("crates/serve/src/")
        || path.starts_with("crates/store/src/")
        || path.starts_with("crates/obs/src/")
        || path.starts_with("crates/net/src/")
        || path.starts_with("crates/trace/src/")
        || path.starts_with("crates/grid/src/")
        || path.starts_with("crates/par/src/")
        || path == "crates/bench/src/bin/repro.rs"
}

fn in_no_panic_scope(path: &str) -> bool {
    path.starts_with("crates/serve/src/")
        || path.starts_with("crates/store/src/")
        || path.starts_with("crates/chaos/src/")
        || path.starts_with("crates/net/src/")
        || path.starts_with("crates/trace/src/")
        || path.starts_with("crates/grid/src/")
}

/// The network ingest path: buffers here are fillable by a remote peer,
/// so every queue must be born with an explicit capacity.
fn in_net_ingest_scope(path: &str) -> bool {
    path.starts_with("crates/net/src/") || path == "crates/serve/src/ingest.rs"
}

fn in_serve_io_scope(path: &str) -> bool {
    path.starts_with("crates/serve/src/")
}

/// The serve tick pipeline: the one file where obs stage spans and
/// alba-trace hops must move in lockstep.
fn in_traced_stage_scope(path: &str) -> bool {
    path == "crates/serve/src/service.rs"
}

/// The parallel runtime: code that joins worker results. Arrival-order
/// consumption (`try_iter`, `try_recv`, looping over a receiver) makes
/// the merge order scheduler-dependent, which is exactly the
/// non-determinism the epoch barrier exists to prevent.
fn in_join_scope(path: &str) -> bool {
    path.starts_with("crates/par/src/")
        || path == "crates/serve/src/service.rs"
        || path == "crates/grid/src/runner.rs"
}

// ---- the engine -----------------------------------------------------

/// Runs every rule over one lexed file. Suppressions are NOT applied
/// here — the caller filters (so it can also count suppressed findings).
pub fn check_file(ctx: &FileContext, lexed: &LexFile) -> Vec<RawFinding> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();

    // no-float-partial-cmp: `.partial_cmp( ... ).unwrap()` / `.expect(`.
    for i in 0..toks.len() {
        if !(is_punct(toks, i, '.') && is_ident(toks, i + 1, "partial_cmp")) {
            continue;
        }
        let Some(after) = skip_parens(toks, i + 2) else { continue };
        if is_punct(toks, after, '.')
            && (is_ident(toks, after + 1, "unwrap") || is_ident(toks, after + 1, "expect"))
        {
            out.push(RawFinding {
                rule: "no-float-partial-cmp",
                line: toks[i + 1].line,
                message:
                    "partial_cmp().unwrap()/expect() panics on NaN; order floats with total_cmp"
                        .to_string(),
            });
        }
    }

    // no-ambient-time: `Instant::now` / `SystemTime::now`.
    if in_pipeline_scope(&ctx.path) {
        for i in 0..toks.len() {
            for src in ["Instant", "SystemTime"] {
                if is_path_pair(toks, i, src, "now") {
                    out.push(RawFinding {
                        rule: "no-ambient-time",
                        line: toks[i].line,
                        message: format!(
                            "{src}::now() is ambient time; route through the alba-obs Clock seam \
                             (WallClock/TickClock) so replays stay byte-identical"
                        ),
                    });
                }
            }
        }
    }

    // no-ambient-entropy: unseeded RNG sources, everywhere.
    for (i, t) in toks.iter().enumerate() {
        if let Tok::Ident(s) = &t.tok {
            if matches!(s.as_str(), "thread_rng" | "from_entropy" | "OsRng" | "getrandom") {
                out.push(RawFinding {
                    rule: "no-ambient-entropy",
                    line: toks[i].line,
                    message: format!(
                        "`{s}` draws ambient entropy; derive every RNG from an explicit seed \
                         (SeedableRng::seed_from_u64)"
                    ),
                });
            }
        }
    }

    // no-unordered-iteration: HashMap/HashSet outside `use` items, in
    // crates whose outputs are order-sensitive; test code exempt.
    if in_ordered_output_scope(&ctx.path) {
        let mask = use_statement_mask(toks);
        for (i, t) in toks.iter().enumerate() {
            if mask[i] || ctx.is_test_line(t.line) {
                continue;
            }
            if let Tok::Ident(s) = &t.tok {
                if s == "HashMap" || s == "HashSet" {
                    out.push(RawFinding {
                        rule: "no-unordered-iteration",
                        line: t.line,
                        message: format!(
                            "`{s}` iteration order is seeded by ambient RandomState; in a crate \
                             that serialises ordered output use BTreeMap/BTreeSet, sort before \
                             emitting, or justify a lookup-only use with an allow"
                        ),
                    });
                }
            }
        }
    }

    // no-panic-in-fallible: `.unwrap()`/`.expect(` + panic!-family on
    // non-test runtime paths of serve/store/chaos.
    if in_no_panic_scope(&ctx.path) {
        for i in 0..toks.len() {
            let line = match toks.get(i) {
                Some(t) => t.line,
                None => continue,
            };
            if ctx.is_test_line(line) {
                continue;
            }
            if is_punct(toks, i, '.')
                && is_punct(toks, i + 2, '(')
                && (is_ident(toks, i + 1, "unwrap") || is_ident(toks, i + 1, "expect"))
            {
                let what = ident_at(toks, i + 1).unwrap_or("unwrap");
                out.push(RawFinding {
                    rule: "no-panic-in-fallible",
                    line: toks[i + 1].line,
                    message: format!(
                        "`.{what}()` on a runtime path; return a typed error (or justify an \
                         infallible-by-construction case with an allow)"
                    ),
                });
            }
            if is_punct(toks, i + 1, '!') {
                if let Some(mac) = ident_at(toks, i) {
                    if matches!(mac, "panic" | "unreachable" | "todo" | "unimplemented") {
                        out.push(RawFinding {
                            rule: "no-panic-in-fallible",
                            line,
                            message: format!(
                                "`{mac}!` on a runtime path; surface a typed error instead of \
                                 crashing the service"
                            ),
                        });
                    }
                }
            }
        }
    }

    // no-direct-failpoint-bypass: direct fs I/O in serve runtime code.
    if in_serve_io_scope(&ctx.path) {
        for i in 0..toks.len() {
            let line = match toks.get(i) {
                Some(t) => t.line,
                None => continue,
            };
            if ctx.is_test_line(line) {
                continue;
            }
            // `fs::read` only counts when `fs` starts the path, so the
            // `std::fs::read` form is not reported twice.
            let bare_fs =
                is_path_pair(toks, i, "fs", "read") && !is_punct(toks, i.wrapping_sub(1), ':');
            let hit = if is_path_pair(toks, i, "std", "fs") || bare_fs {
                Some("std::fs")
            } else if is_path_pair(toks, i, "File", "open")
                || is_path_pair(toks, i, "File", "create")
            {
                Some("File::open/create")
            } else if is_ident(toks, i, "OpenOptions") {
                Some("OpenOptions")
            } else {
                None
            };
            if let Some(what) = hit {
                out.push(RawFinding {
                    rule: "no-direct-failpoint-bypass",
                    line,
                    message: format!(
                        "direct `{what}` I/O in serve bypasses the store's set_fault_hook \
                         failpoint seam; route persistence through alba-store APIs"
                    ),
                });
            }
        }
    }

    // no-unbounded-channel: growable queues born without a capacity on
    // the network ingest path. `with_capacity` alone is only half the
    // contract (the bound must also be enforced), but `new()` is the
    // reliably-lintable half: a queue that never states its capacity
    // certainly never checks it.
    if in_net_ingest_scope(&ctx.path) {
        for i in 0..toks.len() {
            let line = match toks.get(i) {
                Some(t) => t.line,
                None => continue,
            };
            if ctx.is_test_line(line) {
                continue;
            }
            let hit = if is_path_pair(toks, i, "VecDeque", "new") {
                Some("VecDeque::new")
            } else if is_path_pair(toks, i, "LinkedList", "new") {
                Some("LinkedList::new")
            } else if is_path_pair(toks, i, "mpsc", "channel") {
                Some("mpsc::channel")
            } else {
                None
            };
            if let Some(what) = hit {
                out.push(RawFinding {
                    rule: "no-unbounded-channel",
                    line,
                    message: format!(
                        "`{what}` creates an unbounded queue on the network ingest path; a \
                         hostile or bursty peer can grow it without limit — use with_capacity \
                         and shed (BUSY) past the bound, or justify with an allow"
                    ),
                });
            }
        }
    }

    // no-untraced-stage: a service.rs fn that opens an obs stage span
    // (`.span(`) must also touch the causal tracer (a `tracer`, `hop`,
    // or `trace_*` ident) somewhere in its body — otherwise the stage
    // is visible to metrics but invisible to trace replay. The lexer
    // drops string literals, so the check is identifier-shaped: find
    // each fn body by brace matching and compare what it calls.
    if in_traced_stage_scope(&ctx.path) {
        let mut i = 0;
        while i < toks.len() {
            if !is_ident(toks, i, "fn") {
                i += 1;
                continue;
            }
            let fn_line = toks[i].line;
            let fn_name = ident_at(toks, i + 1).unwrap_or("?").to_string();
            // The body's opening brace; a `;` first means no body
            // (trait method signature).
            let mut j = i + 1;
            let mut open = None;
            while j < toks.len() {
                match toks[j].tok {
                    Tok::Punct('{') => {
                        open = Some(j);
                        break;
                    }
                    Tok::Punct(';') => break,
                    _ => {}
                }
                j += 1;
            }
            let Some(open) = open else {
                i = j.max(i + 1);
                continue;
            };
            let mut depth = 0i32;
            let mut end = toks.len();
            for (k, t) in toks.iter().enumerate().skip(open) {
                match t.tok {
                    Tok::Punct('{') => depth += 1,
                    Tok::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            end = k + 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let body = &toks[open..end];
            let opens_span = (0..body.len()).any(|k| {
                is_punct(body, k, '.')
                    && is_ident(body, k + 1, "span")
                    && is_punct(body, k + 2, '(')
            });
            let traced = body.iter().any(|t| {
                matches!(&t.tok, Tok::Ident(s)
                    if s == "tracer" || s == "hop" || s.starts_with("trace_"))
            });
            if opens_span && !traced && !ctx.is_test_line(fn_line) {
                out.push(RawFinding {
                    rule: "no-untraced-stage",
                    line: fn_line,
                    message: format!(
                        "`{fn_name}` opens an obs stage span but never records an alba-trace hop; \
                         every pipeline stage must appear in the causal trace (record a hop, or \
                         justify a metrics-only stage with an allow)"
                    ),
                });
            }
            i = open + 1;
        }
    }

    // no-unordered-join: arrival-order result consumption in the
    // parallel runtime. `try_iter`/`try_recv` yield whatever has landed
    // so far, and a `for` loop over a receiver drains in completion
    // order — either way the merge order depends on the scheduler. The
    // sanctioned shape is a counted loop of *blocking* `recv` calls
    // that reorders results by slot index before anything downstream
    // sees them.
    if in_join_scope(&ctx.path) {
        for i in 0..toks.len() {
            let line = match toks.get(i) {
                Some(t) => t.line,
                None => continue,
            };
            if ctx.is_test_line(line) {
                continue;
            }
            if is_punct(toks, i, '.')
                && is_punct(toks, i + 2, '(')
                && (is_ident(toks, i + 1, "try_iter") || is_ident(toks, i + 1, "try_recv"))
            {
                let what = ident_at(toks, i + 1).unwrap_or("try_recv");
                out.push(RawFinding {
                    rule: "no-unordered-join",
                    line: toks[i + 1].line,
                    message: format!(
                        "`.{what}()` consumes worker results in arrival order; join with a \
                         counted blocking recv and reorder by slot index so the merge is \
                         scheduler-independent"
                    ),
                });
            }
            // `for <pat> in <expr> {` whose header names a receiver.
            if is_ident(toks, i, "for") && !is_punct(toks, i + 1, '<') {
                for t in &toks[i + 1..] {
                    match &t.tok {
                        Tok::Punct('{') | Tok::Punct(';') => break,
                        Tok::Ident(s)
                            if s == "rx"
                                || s == "receiver"
                                || s.ends_with("_rx")
                                || s.starts_with("rx_") =>
                        {
                            out.push(RawFinding {
                                rule: "no-unordered-join",
                                line,
                                message: format!(
                                    "`for … in` over receiver `{s}` drains results in completion \
                                     order; use a counted blocking recv loop and reorder by slot \
                                     index instead"
                                ),
                            });
                            break;
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    out.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> Vec<RawFinding> {
        let lexed = lex(src);
        let ctx = FileContext::classify(path, &lexed);
        check_file(&ctx, &lexed)
    }

    fn rules_fired(path: &str, src: &str) -> Vec<&'static str> {
        run(path, src).into_iter().map(|f| f.rule).collect()
    }

    // ---- no-float-partial-cmp ---------------------------------------

    #[test]
    fn partial_cmp_unwrap_fires_anywhere() {
        let src = "fn f(a: &[f64], b: f64) { let mut v = a.to_vec(); v.sort_by(|x, y| x.partial_cmp(y).unwrap()); }";
        assert_eq!(rules_fired("crates/core/src/x.rs", src), vec!["no-float-partial-cmp"]);
        let src2 = "fn g() { let _ = a.partial_cmp(&b).expect(\"finite\"); }";
        assert_eq!(rules_fired("tests/t.rs", src2), vec!["no-float-partial-cmp"]);
    }

    #[test]
    fn partial_cmp_with_nan_handling_is_fine() {
        let src = "fn f() { let o = a.partial_cmp(&b).unwrap_or(core::cmp::Ordering::Equal); let t = a.total_cmp(&b); }";
        assert!(rules_fired("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn partial_cmp_with_nested_parens_still_matches() {
        let src = "fn f() { v.sort_by(|a, b| score(a).partial_cmp(&score(b)).unwrap()); }";
        assert_eq!(rules_fired("crates/ml/src/x.rs", src), vec!["no-float-partial-cmp"]);
    }

    // ---- no-ambient-time --------------------------------------------

    #[test]
    fn ambient_time_fires_in_pipeline_crates() {
        let src = "fn f() { let t = Instant::now(); let w = std::time::SystemTime::now(); }";
        assert_eq!(
            rules_fired("crates/serve/src/x.rs", src),
            vec!["no-ambient-time", "no-ambient-time"]
        );
    }

    #[test]
    fn ambient_time_is_allowed_in_bench_and_examples() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(rules_fired("crates/bench/src/bin/repro.rs", src).is_empty());
        assert!(rules_fired("examples/fleet_monitor.rs", src).is_empty());
    }

    // ---- no-ambient-entropy -----------------------------------------

    #[test]
    fn ambient_entropy_fires_everywhere_even_tests() {
        assert_eq!(
            rules_fired("crates/serve/src/x.rs", "fn f() { let mut rng = thread_rng(); }"),
            vec!["no-ambient-entropy"]
        );
        assert_eq!(
            rules_fired("tests/t.rs", "fn f() { let r = StdRng::from_entropy(); }"),
            vec!["no-ambient-entropy"]
        );
        assert_eq!(
            rules_fired("crates/bench/benches/b.rs", "use rand::rngs::OsRng;"),
            vec!["no-ambient-entropy"]
        );
    }

    #[test]
    fn seeded_rngs_are_fine() {
        let src = "fn f() { let r = StdRng::seed_from_u64(42); }";
        assert!(rules_fired("crates/serve/src/x.rs", src).is_empty());
    }

    // ---- no-unordered-iteration -------------------------------------

    #[test]
    fn hashmap_fires_in_output_sensitive_crates_only() {
        let src = "struct S { m: HashMap<u32, u32> }";
        assert_eq!(rules_fired("crates/serve/src/x.rs", src), vec!["no-unordered-iteration"]);
        assert_eq!(rules_fired("crates/obs/src/x.rs", src), vec!["no-unordered-iteration"]);
        assert!(rules_fired("crates/chaos/src/x.rs", src).is_empty(), "chaos is out of scope");
        assert!(rules_fired("crates/ml/src/x.rs", src).is_empty());
    }

    #[test]
    fn hashmap_in_use_items_and_tests_is_exempt() {
        let src = "use std::collections::HashMap;\nfn f() {}\n#[cfg(test)]\nmod tests { fn g() { let m: HashMap<u8, u8> = HashMap::new(); } }";
        assert!(rules_fired("crates/serve/src/x.rs", src).is_empty());
    }

    #[test]
    fn btreemap_is_always_fine() {
        let src = "use std::collections::BTreeMap;\nstruct S { m: BTreeMap<u32, u32> }";
        assert!(rules_fired("crates/obs/src/x.rs", src).is_empty());
    }

    // ---- no-panic-in-fallible ---------------------------------------

    #[test]
    fn unwrap_fires_on_runtime_paths_of_guarded_crates() {
        let src = "fn f(v: Option<u8>) -> u8 { v.unwrap() }";
        assert_eq!(rules_fired("crates/store/src/x.rs", src), vec!["no-panic-in-fallible"]);
        assert_eq!(rules_fired("crates/chaos/src/x.rs", src), vec!["no-panic-in-fallible"]);
        assert!(rules_fired("crates/ml/src/x.rs", src).is_empty(), "ml is out of scope");
    }

    #[test]
    fn panic_macros_fire_but_not_panic_any() {
        let src = "fn f(x: u8) { if x > 3 { panic!(\"bad\"); } else { unreachable!() } }";
        let fired = rules_fired("crates/serve/src/x.rs", src);
        assert_eq!(fired, vec!["no-panic-in-fallible", "no-panic-in-fallible"]);
        // panic_any is the sanctioned chaos-injection channel.
        let src2 = "fn g() { std::panic::panic_any(InjectedPanic); }";
        assert!(rules_fired("crates/serve/src/x.rs", src2).is_empty());
    }

    #[test]
    fn test_modules_and_test_files_are_exempt() {
        let src = "fn f() -> u8 { 1 }\n#[cfg(test)]\nmod tests { #[test] fn t() { Some(1).unwrap(); panic!(\"in test\"); } }";
        assert!(rules_fired("crates/store/src/x.rs", src).is_empty());
        assert!(
            rules_fired("crates/store/tests/durability.rs", "fn t() { x.unwrap(); }").is_empty()
        );
        assert!(
            rules_fired("crates/store/src/testutil.rs", "fn t() { x.expect(\"e\"); }").is_empty()
        );
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "fn f(v: Option<u8>) -> u8 { v.unwrap_or(0) + v.unwrap_or_else(|| 1) + v.unwrap_or_default() }";
        assert!(rules_fired("crates/serve/src/x.rs", src).is_empty());
    }

    // ---- no-direct-failpoint-bypass ---------------------------------

    #[test]
    fn direct_fs_io_in_serve_fires() {
        let src = "fn f() { let _ = std::fs::read(\"x\"); }";
        assert_eq!(rules_fired("crates/serve/src/x.rs", src), vec!["no-direct-failpoint-bypass"]);
        let src2 = "fn f() { let _ = File::open(\"x\"); }";
        assert_eq!(rules_fired("crates/serve/src/x.rs", src2), vec!["no-direct-failpoint-bypass"]);
    }

    #[test]
    fn fs_io_outside_serve_src_is_fine() {
        let src = "fn f() { let _ = std::fs::read(\"x\"); }";
        assert!(rules_fired("crates/store/src/x.rs", src).is_empty());
        assert!(rules_fired("crates/serve/tests/t.rs", src).is_empty());
    }

    // ---- no-unbounded-channel ---------------------------------------

    #[test]
    fn unbounded_queues_fire_on_the_net_ingest_path() {
        let src = "fn f() { let q: VecDeque<u8> = VecDeque::new(); }";
        assert_eq!(rules_fired("crates/net/src/conn.rs", src), vec!["no-unbounded-channel"]);
        assert_eq!(rules_fired("crates/serve/src/ingest.rs", src), vec!["no-unbounded-channel"]);
        let src2 = "fn g() { let (tx, rx) = mpsc::channel(); }";
        assert_eq!(rules_fired("crates/net/src/gateway.rs", src2), vec!["no-unbounded-channel"]);
        let src3 = "fn h() { let l = LinkedList::new(); }";
        assert_eq!(rules_fired("crates/net/src/client.rs", src3), vec!["no-unbounded-channel"]);
    }

    #[test]
    fn bounded_queues_and_out_of_scope_paths_are_fine() {
        let bounded = "fn f(cap: usize) { let q: VecDeque<u8> = VecDeque::with_capacity(cap); }";
        assert!(rules_fired("crates/net/src/conn.rs", bounded).is_empty());
        // Outside the ingest path, unbounded queues are not this rule's
        // business (other crates are not peer-fillable).
        let unbounded = "fn f() { let q: VecDeque<u8> = VecDeque::new(); }";
        assert!(rules_fired("crates/serve/src/service.rs", unbounded).is_empty());
        assert!(rules_fired("crates/store/src/wal.rs", unbounded).is_empty());
        // Test modules on the ingest path are exempt.
        let test_src = "fn f() {}\n#[cfg(test)]\nmod tests { fn g() { let q: VecDeque<u8> = VecDeque::new(); } }";
        assert!(rules_fired("crates/net/src/conn.rs", test_src).is_empty());
    }

    // ---- no-untraced-stage ------------------------------------------

    #[test]
    fn span_without_tracer_fires_only_in_service_rs() {
        let src =
            "impl S { fn tick(&self) { let s = self.obs.span(\"stage_ns\", &[]); s.finish(); } }";
        assert_eq!(rules_fired("crates/serve/src/service.rs", src), vec!["no-untraced-stage"]);
        assert!(rules_fired("crates/serve/src/shard.rs", src).is_empty(), "only service.rs");
    }

    #[test]
    fn stage_fns_touching_the_tracer_are_fine() {
        let hopped = "impl S { fn tick(&self) { let s = self.obs.span(\"stage_ns\", &[]); s.finish(); self.tracer.hop(); } }";
        assert!(rules_fired("crates/serve/src/service.rs", hopped).is_empty());
        let helper = "impl S { fn tick(&self) { let s = self.obs.span(\"x\", &[]); self.trace_stage(0); s.finish(); } }";
        assert!(rules_fired("crates/serve/src/service.rs", helper).is_empty());
        let spanless = "impl S { fn stats(&self) -> u8 { 1 } }";
        assert!(rules_fired("crates/serve/src/service.rs", spanless).is_empty());
    }

    #[test]
    fn untraced_spans_in_test_modules_are_exempt() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests { fn t(o: &Obs) { let s = o.span(\"x\", &[]); s.finish(); } }";
        assert!(rules_fired("crates/serve/src/service.rs", src).is_empty());
    }

    // ---- no-unordered-join ------------------------------------------

    #[test]
    fn arrival_order_joins_fire_in_the_parallel_runtime() {
        let src = "fn f(rx: &Receiver<u8>) { for r in rx.try_iter() { use_it(r); } }";
        // Both the try_iter call and the for-over-rx header fire.
        assert_eq!(
            rules_fired("crates/par/src/lib.rs", src),
            vec!["no-unordered-join", "no-unordered-join"]
        );
        let src2 = "fn g(results_rx: &Receiver<u8>) { while let Ok(r) = results_rx.try_recv() { use_it(r); } }";
        assert_eq!(rules_fired("crates/serve/src/service.rs", src2), vec!["no-unordered-join"]);
        let src3 = "fn h(receiver: Receiver<u8>) { for r in receiver { use_it(r); } }";
        assert_eq!(rules_fired("crates/grid/src/runner.rs", src3), vec!["no-unordered-join"]);
    }

    #[test]
    fn counted_blocking_joins_are_fine() {
        // The sanctioned barrier: block on recv exactly n times, then
        // reorder by slot — no arrival-order iteration anywhere.
        let src = "fn f(rx: &Receiver<(usize, u8)>, n: usize) { let mut got = 0; while got < n { let (slot, r) = rx.recv().unwrap_or_default(); out[slot] = r; got += 1; } }";
        assert!(rules_fired("crates/par/src/lib.rs", src).is_empty());
        let shutdown = "fn d(rx: &Receiver<u8>) { while let Ok(m) = rx.recv() { handle(m); } }";
        assert!(rules_fired("crates/par/src/lib.rs", shutdown).is_empty());
    }

    #[test]
    fn unordered_joins_outside_the_join_scope_or_in_tests_are_exempt() {
        let src = "fn f(rx: &Receiver<u8>) { for r in rx.try_iter() { use_it(r); } }";
        assert!(rules_fired("crates/net/src/conn.rs", src).is_empty(), "net is out of scope");
        assert!(rules_fired("crates/serve/src/shard.rs", src).is_empty(), "only service.rs");
        let test_src = "fn ok() {}\n#[cfg(test)]\nmod tests { fn t(rx: &Receiver<u8>) { for r in rx.try_iter() {} } }";
        assert!(rules_fired("crates/par/src/lib.rs", test_src).is_empty());
        // Idents merely *containing* rx (matrix …) are not receivers.
        let matrix = "fn f(matrix: &Matrix) { for row in matrix.rows() { use_it(row); } }";
        assert!(rules_fired("crates/par/src/lib.rs", matrix).is_empty());
        // `for<'a>` higher-ranked bounds are not loops.
        let hrtb = "fn f<F: for<'a> Fn(&'a u8)>(g: F) { g(&1); }";
        assert!(rules_fired("crates/par/src/lib.rs", hrtb).is_empty());
    }

    // ---- context classification -------------------------------------

    #[test]
    fn cfg_test_region_detection_handles_nested_cfgs() {
        let lexed = lex("fn f() {}\n#[cfg(all(test, feature = \"x\"))]\nmod tests {}\n");
        assert_eq!(find_cfg_test(&lexed), Some(2));
        let lexed2 = lex("#[cfg(feature = \"slow\")]\nmod slow {}\n");
        assert_eq!(find_cfg_test(&lexed2), None);
    }

    #[test]
    fn findings_inside_comments_and_strings_never_fire() {
        let src = concat!(
            "// thread_rng() Instant::now() HashMap x.partial_cmp(y).unwrap()\n",
            "/* SystemTime::now() panic!(\"no\") */\n",
            "fn f() -> &'static str { \"thread_rng OsRng std::fs::read\" }\n",
            "const R: &str = r#\"Instant::now() .unwrap()\"#;\n",
        );
        assert!(rules_fired("crates/serve/src/x.rs", src).is_empty());
    }
}
