//! Deterministic discovery of the Rust sources to lint.
//!
//! Walks `crates/`, `src/`, `tests/`, and `examples/` under the
//! workspace root, visiting directory entries in sorted order so the
//! tool's own output is reproducible. `vendor/` (offline dependency
//! shims — external API surface, not ours), any `target/` directory,
//! and `fixtures/` trees (linter input corpora, deliberately full of
//! violations) are skipped.

use std::path::{Path, PathBuf};

/// Roots scanned below the workspace root.
pub const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

fn skip_dir(name: &str) -> bool {
    name == "target" || name == "vendor" || name == "fixtures" || name.starts_with('.')
}

fn walk_into(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !skip_dir(name) {
                walk_into(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Every `.rs` file under the scan roots, absolute paths, sorted by
/// their forward-slash relative form (`mod.rs` vs `mod/` siblings make
/// depth-first order differ from the string order diagnostics use).
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for sub in SCAN_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            walk_into(&dir, &mut out)?;
        }
    }
    out.sort_by_key(|p| relative_path(root, p));
    Ok(out)
}

/// `path` relative to `root`, with forward slashes (rule scopes and the
/// baseline use this form on every platform).
pub fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_walk_is_sorted_and_skips_vendor() {
        // CARGO_MANIFEST_DIR = crates/lint — the workspace root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = workspace_sources(&root).unwrap();
        assert!(!files.is_empty());
        let rels: Vec<String> = files.iter().map(|f| relative_path(&root, f)).collect();
        let mut sorted = rels.clone();
        sorted.sort();
        assert_eq!(rels, sorted, "walk order must be deterministic");
        assert!(rels.iter().all(|r| !r.starts_with("vendor/") && !r.contains("/target/")));
        assert!(rels.iter().all(|r| !r.contains("/fixtures/")), "corpora are input, not source");
        assert!(rels.iter().any(|r| r == "crates/lint/src/walk.rs"), "finds itself: {rels:?}");
    }
}
