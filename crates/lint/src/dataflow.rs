//! The three interprocedural passes over the call graph.
//!
//! All three are *function-level* analyses: a fact attaches to a whole
//! fn, not to individual values. That makes them flow-insensitive
//! over-approximations (documented in DESIGN.md) but keeps them exact
//! about one thing — every reported chain is a real path of resolved
//! call edges, printed step by step as clickable `file:line`s.
//!
//! 1. **reachable-panic** — multi-source BFS from the designated
//!    hot-path roots; any panic site (`unwrap`/`expect`/`panic!`-family
//!    macros, plus indexing inside the service crates) in a reached fn
//!    is a finding.
//! 2. **nondet-taint** — roots are the journaled-output sinks
//!    (`Obs::event`/`expose`, `Tracer::hop`/`dump`,
//!    `DiagnosisModel::to_json`/`save`) *and* every fn that calls one
//!    directly; any ambient time/entropy or unordered-container site
//!    reachable from such a fn is a finding, because that fn's output
//!    lands in a byte-compared journal.
//! 3. **lock-order-cycle** — a digraph over lock identities
//!    (`Type::field`): an edge `A -> B` exists when `B` is acquired
//!    (directly, or anywhere inside a callee) while `A` is held; any
//!    cycle is a deadlock candidate and fails the gate.

use crate::callgraph::{FnIdx, Graph};
use crate::parse::{Site, SiteKind};
use std::collections::{BTreeMap, BTreeSet};

/// A designated analysis root: (path prefix, optional impl type, name).
#[derive(Clone, Copy, Debug)]
pub struct RootSpec {
    pub path_prefix: &'static str,
    pub self_ty: Option<&'static str>,
    pub name: &'static str,
}

/// The hot-path roots for the panic pass: the fns that must never
/// panic in production, per the fleet-runtime contract.
pub const HOT_PATH_ROOTS: &[RootSpec] = &[
    RootSpec { path_prefix: "crates/serve/", self_ty: Some("FleetService"), name: "tick" },
    RootSpec { path_prefix: "crates/serve/", self_ty: Some("FleetService"), name: "tick_from" },
    RootSpec { path_prefix: "crates/par/", self_ty: Some("Pool"), name: "run_epoch" },
    RootSpec { path_prefix: "crates/par/", self_ty: None, name: "worker_loop" },
    RootSpec { path_prefix: "crates/net/", self_ty: Some("Gateway"), name: "poll" },
    RootSpec { path_prefix: "crates/grid/", self_ty: None, name: "run_grid" },
    RootSpec { path_prefix: "crates/grid/", self_ty: None, name: "worker_loop" },
];

/// The journaled-output sinks for the taint pass: anything written
/// through these fns is byte-compared across replays.
pub const OUTPUT_SINKS: &[RootSpec] = &[
    RootSpec { path_prefix: "crates/obs/", self_ty: Some("Obs"), name: "event" },
    RootSpec { path_prefix: "crates/obs/", self_ty: Some("Obs"), name: "expose" },
    RootSpec { path_prefix: "crates/trace/", self_ty: Some("Tracer"), name: "hop" },
    RootSpec { path_prefix: "crates/trace/", self_ty: Some("Tracer"), name: "dump" },
    RootSpec { path_prefix: "crates/ml/", self_ty: Some("DiagnosisModel"), name: "to_json" },
    RootSpec { path_prefix: "crates/ml/", self_ty: Some("DiagnosisModel"), name: "save" },
];

/// Indexing is a panic site only inside the service crates (whose
/// contract is "no panics on runtime paths"); the numeric kernels in
/// ml/features/core index slices as a matter of course behind
/// length invariants and are out of scope for the `Index` site kind
/// (their `unwrap`/`expect`/`panic!` still count everywhere).
const INDEX_SCOPE: &[&str] = &[
    "crates/serve/",
    "crates/store/",
    "crates/chaos/",
    "crates/net/",
    "crates/trace/",
    "crates/grid/",
    "crates/par/",
];

/// One step of a reported call chain.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct ChainStep {
    /// Workspace-relative file.
    pub path: String,
    /// 1-based line (fn declaration, or the site itself for the last
    /// step).
    pub line: u32,
    /// `Type::name` for fn steps; a site description for the last step.
    pub func: String,
}

/// One interprocedural finding, before suppression filtering.
#[derive(Clone, Debug)]
pub struct InterFinding {
    /// `reachable-panic` / `nondet-taint` / `lock-order-cycle`.
    pub rule: &'static str,
    /// File of the *site* (where the panic / nondeterminism lives).
    pub path: String,
    /// 1-based line of the site.
    pub line: u32,
    /// File of the *root* (hot-path fn / sink caller) — findings are
    /// suppressible here too.
    pub root_path: String,
    /// 1-based line of the root fn declaration.
    pub root_line: u32,
    /// The full chain, root first, site last.
    pub chain: Vec<ChainStep>,
    /// Human explanation (includes the rendered chain).
    pub message: String,
    /// The token rule whose `allow(...)` also silences this finding at
    /// the source line (`no-panic-in-fallible` for reachable-panic,
    /// the matching nondet rule for taint findings).
    pub alias: Option<&'static str>,
}

/// Human description of a site kind, for messages.
fn describe(kind: &SiteKind) -> String {
    match kind {
        SiteKind::PanicUnwrap(d) => format!("`.{d}()`"),
        SiteKind::PanicMacro(m) => format!("`{m}!`"),
        SiteKind::Index => "slice indexing `[..]`".to_string(),
        SiteKind::AmbientTime(t) => format!("`{t}::now`"),
        SiteKind::AmbientEntropy(e) => format!("`{e}`"),
        SiteKind::UnorderedContainer(c) => format!("`{c}`"),
    }
}

fn render_chain(chain: &[ChainStep]) -> String {
    let steps: Vec<String> =
        chain.iter().map(|s| format!("{} ({}:{})", s.func, s.path, s.line)).collect();
    steps.join(" -> ")
}

/// Multi-source BFS; returns (visited-in-order, parent edge map).
/// Deterministic: roots in given order, edges in call order.
fn bfs(graph: &Graph, roots: &[FnIdx]) -> (Vec<FnIdx>, Vec<Option<FnIdx>>) {
    let mut parent: Vec<Option<FnIdx>> = vec![None; graph.fns.len()];
    let mut seen = vec![false; graph.fns.len()];
    let mut queue: std::collections::VecDeque<FnIdx> = std::collections::VecDeque::new();
    let mut order = Vec::new();
    for &r in roots {
        if !seen[r] {
            seen[r] = true;
            queue.push_back(r);
        }
    }
    while let Some(f) = queue.pop_front() {
        order.push(f);
        for e in &graph.edges[f] {
            if !seen[e.callee] {
                seen[e.callee] = true;
                parent[e.callee] = Some(f);
                queue.push_back(e.callee);
            }
        }
    }
    (order, parent)
}

/// Walks parent pointers from `f` back to its root; returns fn steps
/// root-first (each step at the fn's declaration line).
fn chain_to(graph: &Graph, parent: &[Option<FnIdx>], f: FnIdx) -> Vec<ChainStep> {
    let mut steps = Vec::new();
    let mut cur = Some(f);
    while let Some(i) = cur {
        let fi = &graph.fns[i];
        steps.push(ChainStep { path: fi.path.clone(), line: fi.line, func: fi.display() });
        cur = parent[i];
    }
    steps.reverse();
    steps
}

fn site_step(fi: &crate::parse::FnItem, site: &Site) -> ChainStep {
    ChainStep { path: fi.path.clone(), line: site.line, func: describe(&site.kind) }
}

fn resolve_roots(graph: &Graph, specs: &[RootSpec]) -> Vec<FnIdx> {
    let mut out = Vec::new();
    for s in specs {
        for idx in graph.find(s.path_prefix, s.self_ty, s.name) {
            if !out.contains(&idx) {
                out.push(idx);
            }
        }
    }
    out
}

/// Pass 1: panic sites reachable from the hot-path roots.
pub fn panic_reachability(graph: &Graph, roots: &[RootSpec]) -> Vec<InterFinding> {
    let root_idxs = resolve_roots(graph, roots);
    let (order, parent) = bfs(graph, &root_idxs);
    let mut out = Vec::new();
    let mut seen_sites: BTreeSet<(String, u32)> = BTreeSet::new();
    for f in order {
        let fi = &graph.fns[f];
        let index_in_scope = INDEX_SCOPE.iter().any(|p| fi.path.starts_with(p));
        for site in &fi.sites {
            let is_panic = match &site.kind {
                SiteKind::PanicUnwrap(_) | SiteKind::PanicMacro(_) => true,
                SiteKind::Index => index_in_scope,
                _ => false,
            };
            if !is_panic || !seen_sites.insert((fi.path.clone(), site.line)) {
                continue;
            }
            let mut chain = chain_to(graph, &parent, f);
            let root = chain[0].clone();
            chain.push(site_step(fi, site));
            let message = format!(
                "panic site {} reachable from hot-path root `{}`: {}",
                describe(&site.kind),
                root.func,
                render_chain(&chain),
            );
            out.push(InterFinding {
                rule: "reachable-panic",
                path: fi.path.clone(),
                line: site.line,
                root_path: root.path,
                root_line: root.line,
                chain,
                message,
                alias: Some("no-panic-in-fallible"),
            });
        }
    }
    out
}

/// Pass 2: nondeterminism sources reachable from fns whose output is
/// journaled (sink fns and their direct callers).
pub fn nondet_taint(graph: &Graph, sinks: &[RootSpec]) -> Vec<InterFinding> {
    let sink_idxs = resolve_roots(graph, sinks);
    let sink_set: BTreeSet<FnIdx> = sink_idxs.iter().copied().collect();
    // Taint roots: the sinks themselves, plus every fn with a direct
    // call edge into a sink (that call's output is journaled). Each
    // root remembers which sink implicates it, for the message.
    let mut roots: Vec<FnIdx> = Vec::new();
    let mut implicated_by: BTreeMap<FnIdx, (String, u32)> = BTreeMap::new();
    for &s in &sink_idxs {
        roots.push(s);
        implicated_by.insert(s, (graph.fns[s].display(), graph.fns[s].line));
    }
    for (i, edges) in graph.edges.iter().enumerate() {
        for e in edges {
            if sink_set.contains(&e.callee) && !implicated_by.contains_key(&i) {
                roots.push(i);
                implicated_by.insert(i, (graph.fns[e.callee].display(), e.line));
            }
        }
    }
    let (order, parent) = bfs(graph, &roots);
    let mut out = Vec::new();
    let mut seen_sites: BTreeSet<(String, u32)> = BTreeSet::new();
    for f in order {
        let fi = &graph.fns[f];
        for site in &fi.sites {
            let is_source = matches!(
                site.kind,
                SiteKind::AmbientTime(_)
                    | SiteKind::AmbientEntropy(_)
                    | SiteKind::UnorderedContainer(_)
            );
            if !is_source || !seen_sites.insert((fi.path.clone(), site.line)) {
                continue;
            }
            let mut chain = chain_to(graph, &parent, f);
            let root = chain[0].clone();
            chain.push(site_step(fi, site));
            // The root fn is implicated by some sink call; name it.
            let root_idx = root_of(&parent, f);
            let (sink_name, sink_line) = implicated_by
                .get(&root_idx)
                .cloned()
                .unwrap_or_else(|| (root.func.clone(), root.line));
            let message = format!(
                "nondeterminism source {} flows into journaled output: `{}` writes `{}` ({}:{}); chain {}",
                describe(&site.kind),
                root.func,
                sink_name,
                root.path,
                sink_line,
                render_chain(&chain),
            );
            let alias = match &site.kind {
                SiteKind::AmbientTime(_) => Some("no-ambient-time"),
                SiteKind::AmbientEntropy(_) => Some("no-ambient-entropy"),
                _ => Some("no-unordered-iteration"),
            };
            out.push(InterFinding {
                rule: "nondet-taint",
                path: fi.path.clone(),
                line: site.line,
                root_path: root.path,
                root_line: root.line,
                chain,
                message,
                alias,
            });
        }
    }
    out
}

fn root_of(parent: &[Option<FnIdx>], mut f: FnIdx) -> FnIdx {
    while let Some(p) = parent[f] {
        f = p;
    }
    f
}

/// An edge in the lock digraph, with its witness location.
#[derive(Clone, Debug)]
struct LockEdge {
    to: String,
    /// Where `to` is acquired (or the call that leads to it) while the
    /// `from` lock is held.
    path: String,
    line: u32,
    /// The fn the witness sits in.
    func: String,
}

/// Pass 3: cycles in the lock-acquisition-order digraph.
pub fn lock_order(graph: &Graph) -> Vec<InterFinding> {
    // Transitive lock set per fn: every lock identity acquired in the
    // fn itself or anywhere in its callees (fixpoint).
    let n = graph.fns.len();
    let mut owned: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    for (i, f) in graph.fns.iter().enumerate() {
        for l in &f.locks {
            if let Some(id) = &l.lock_id {
                owned[i].insert(id.clone());
            }
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            for e in &graph.edges[i] {
                let add: Vec<String> =
                    owned[e.callee].iter().filter(|l| !owned[i].contains(*l)).cloned().collect();
                if !add.is_empty() {
                    owned[i].extend(add);
                    changed = true;
                }
            }
        }
    }

    // Edges: while span L is held in f, any direct acquisition of M or
    // any call whose callee (transitively) acquires M gives L -> M.
    let mut edges: BTreeMap<String, Vec<LockEdge>> = BTreeMap::new();
    let mut add_edge = |from: &str, to: &str, path: &str, line: u32, func: &str| {
        if from == to {
            return; // re-acquisition is a self-deadlock but not an order cycle
        }
        let list = edges.entry(from.to_string()).or_default();
        if !list.iter().any(|e| e.to == to) {
            list.push(LockEdge {
                to: to.to_string(),
                path: path.to_string(),
                line,
                func: func.to_string(),
            });
        }
    };
    for (i, f) in graph.fns.iter().enumerate() {
        for l in &f.locks {
            let Some(from) = &l.lock_id else { continue };
            for m in &f.locks {
                if let Some(to) = &m.lock_id {
                    if m.start_seq > l.start_seq && m.start_seq <= l.end_seq {
                        add_edge(from, to, &f.path, m.line, &f.display());
                    }
                }
            }
            for e in &graph.edges[i] {
                if e.seq > l.start_seq && e.seq <= l.end_seq {
                    for to in owned[e.callee].clone() {
                        add_edge(from, &to, &f.path, e.line, &f.display());
                    }
                }
            }
        }
    }

    // Cycle detection: DFS from each node in sorted order; report each
    // cycle once, canonicalised by its smallest rotation.
    let mut findings = Vec::new();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<&String> = edges.keys().collect();
    for &start in &nodes {
        let mut stack: Vec<(String, usize)> = vec![(start.clone(), 0)];
        let mut path_nodes: Vec<String> = vec![start.clone()];
        while let Some((node, ei)) = stack.last().cloned() {
            let next = edges.get(&node).and_then(|l| l.get(ei)).cloned();
            let Some(edge) = next else {
                stack.pop();
                path_nodes.pop();
                continue;
            };
            if let Some(s) = stack.last_mut() {
                s.1 += 1;
            }
            if edge.to == *start {
                // A cycle back to the DFS origin.
                let mut cyc = path_nodes.clone();
                // Canonical form: rotate so the smallest id leads.
                let min_pos =
                    cyc.iter().enumerate().min_by_key(|&(_, v)| v.clone()).map(|(i, _)| i);
                if let Some(p) = min_pos {
                    cyc.rotate_left(p);
                }
                if reported.insert(cyc.clone()) {
                    findings.push(cycle_finding(&path_nodes, &edges));
                }
            } else if !path_nodes.contains(&edge.to) && edges.contains_key(&edge.to) {
                path_nodes.push(edge.to.clone());
                stack.push((edge.to, 0));
            }
        }
    }
    findings
}

/// Builds the finding for one cycle (nodes in DFS path order).
fn cycle_finding(cycle: &[String], edges: &BTreeMap<String, Vec<LockEdge>>) -> InterFinding {
    let mut chain = Vec::new();
    let mut witness_bits = Vec::new();
    for (k, from) in cycle.iter().enumerate() {
        let to = &cycle[(k + 1) % cycle.len()];
        if let Some(e) = edges.get(from).and_then(|l| l.iter().find(|e| &e.to == to)) {
            chain.push(ChainStep {
                path: e.path.clone(),
                line: e.line,
                func: format!("{} holds `{from}`, takes `{to}`", e.func),
            });
            witness_bits.push(format!("`{from}` -> `{to}` in {} ({}:{})", e.func, e.path, e.line));
        }
    }
    let first = chain.first().cloned().unwrap_or(ChainStep {
        path: String::new(),
        line: 0,
        func: String::new(),
    });
    let order: Vec<&str> = cycle.iter().map(String::as_str).collect();
    let message = format!(
        "lock-order cycle (deadlock candidate): {} -> {}; {}",
        order.join(" -> "),
        order[0],
        witness_bits.join("; "),
    );
    InterFinding {
        rule: "lock-order-cycle",
        path: first.path.clone(),
        line: first.line,
        root_path: first.path,
        root_line: first.line,
        chain,
        message,
        alias: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_file;
    use crate::rules::FileContext;
    use std::collections::BTreeMap;

    fn graph(files: &[(&str, &str)]) -> Graph {
        let mut parsed = BTreeMap::new();
        for (path, src) in files {
            let lexed = lex(src);
            let ctx = FileContext::classify(path, &lexed);
            parsed.insert(path.to_string(), parse_file(path, &lexed, &ctx));
        }
        Graph::build(&parsed)
    }

    #[test]
    fn panic_pass_reports_the_full_chain() {
        let g = graph(&[
            (
                "crates/serve/src/service.rs",
                "impl FleetService { pub fn tick(&mut self) { self.step(); } fn step(&mut self) { refine(1); } }\nfn refine(x: u8) { inner(x); }\nfn inner(x: u8) { Some(x).unwrap(); }",
            ),
        ]);
        let f = panic_reachability(&g, HOT_PATH_ROOTS);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "reachable-panic");
        // tick -> step -> refine -> inner -> site: 3+ call edges deep.
        assert_eq!(f[0].chain.len(), 5);
        assert_eq!(f[0].chain[0].func, "FleetService::tick");
        assert_eq!(f[0].chain[4].func, "`.unwrap()`");
        assert!(f[0].message.contains("service.rs:"));
    }

    #[test]
    fn panic_pass_ignores_unreachable_sites() {
        let g = graph(&[(
            "crates/serve/src/service.rs",
            "impl FleetService { pub fn tick(&mut self) {} }\nfn dead() { Some(1).unwrap(); }",
        )]);
        assert!(panic_reachability(&g, HOT_PATH_ROOTS).is_empty());
    }

    #[test]
    fn indexing_counts_only_in_service_crates() {
        let g = graph(&[
            (
                "crates/serve/src/service.rs",
                "impl FleetService { pub fn tick(&mut self, v: &[u8]) { let _ = v[9]; kernel(v); } }",
            ),
            ("crates/ml/src/kern.rs", "pub fn kernel(v: &[u8]) -> u8 { v[0] }"),
        ]);
        let f = panic_reachability(&g, HOT_PATH_ROOTS);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].path, "crates/serve/src/service.rs");
    }

    #[test]
    fn taint_pass_tracks_time_through_helpers() {
        let g = graph(&[
            (
                "crates/serve/src/service.rs",
                "impl FleetService { fn report(&self, o: &Obs) { o.event(\"t\", &[]); let t = stamp(); } }\nfn stamp() -> u64 { wall() }\nfn wall() -> u64 { Instant::now() }",
            ),
            ("crates/obs/src/registry.rs", "impl Obs { pub fn event(&self, k: &str, f: &[u8]) {} }"),
        ]);
        let f = nondet_taint(&g, OUTPUT_SINKS);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "nondet-taint");
        assert!(f[0].message.contains("Obs::event"), "{}", f[0].message);
        // report -> stamp -> wall -> site.
        assert_eq!(f[0].chain.len(), 4);
    }

    #[test]
    fn taint_pass_ignores_fns_that_never_reach_a_sink() {
        let g = graph(&[
            ("crates/serve/src/a.rs", "fn helper() -> u64 { Instant::now() }"),
            ("crates/obs/src/registry.rs", "impl Obs { pub fn event(&self, k: &str) {} }"),
        ]);
        assert!(nondet_taint(&g, OUTPUT_SINKS).is_empty());
    }

    #[test]
    fn lock_cycle_is_detected_across_fns() {
        let g = graph(&[(
            "crates/par/src/lib.rs",
            "impl Gate { fn a(&self, o: &Other) { let g = self.inner.lock(); o.b(); } }\nimpl Other { fn b(&self) { let g = self.state.lock(); } fn c(&self, q: &Gate) { let g = self.state.lock(); q.d(); } }\nimpl Gate { fn d(&self) { let g = self.inner.lock(); } }",
        )]);
        let f = lock_order(&g);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "lock-order-cycle");
        assert!(f[0].message.contains("Gate::inner"), "{}", f[0].message);
        assert!(f[0].message.contains("Other::state"), "{}", f[0].message);
        assert_eq!(f[0].chain.len(), 2);
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let g = graph(&[(
            "crates/par/src/lib.rs",
            "impl Gate { fn a(&self, o: &Other) { let g = self.inner.lock(); o.b(); } }\nimpl Other { fn b(&self) { let g = self.state.lock(); } }",
        )]);
        assert!(lock_order(&g).is_empty());
    }

    #[test]
    fn sequential_spans_do_not_create_edges() {
        // Locks taken in disjoint blocks are never held together.
        let g = graph(&[(
            "crates/par/src/lib.rs",
            "impl Gate { fn a(&self) { { let g = self.inner.lock(); } { let h = self.other.lock(); } } fn b(&self) { { let h = self.other.lock(); } { let g = self.inner.lock(); } } }",
        )]);
        assert!(lock_order(&g).is_empty());
    }
}
