//! A lightweight item parser on top of the [`crate::lexer`] stream.
//!
//! This is *not* a Rust grammar. It recovers exactly the facts the
//! interprocedural passes need and nothing more:
//!
//! * `fn` items with their enclosing `impl`/`trait` context (so
//!   `self.m()` can be resolved precisely) and their body token range;
//! * call expressions inside each body — `self.m(...)`, `x.m(...)`,
//!   `Type::assoc(...)`, `module::free(...)`, `free(...)` — with
//!   turbofish skipped and macro invocations excluded;
//! * the *sites* the dataflow passes care about: panic sites
//!   (`.unwrap()`, `.expect(..)`, `panic!`-family macros, slice/array
//!   indexing), ambient time/entropy, unordered containers, and lock
//!   acquisitions (`*.lock()`), the latter with the lexical block span
//!   they are held for;
//! * `use` declarations, so type aliases (`use a::Foo as Bar`) resolve
//!   to their real names and paths carry a crate hint.
//!
//! Everything the parser cannot model (closures passed as values,
//! function pointers, fully-qualified `<T as Tr>::m` calls, macro
//! bodies) degrades to "no call edge", never to a crash: like the
//! lexer, the parser is total on hostile input.

use crate::lexer::{LexFile, Tok, Token};
use crate::rules::FileContext;
use std::collections::BTreeMap;

/// How a call site names its callee.
#[derive(Clone, Debug, PartialEq)]
pub enum CallTarget {
    /// `self.m(...)` or `Self::m(...)` — resolved against the enclosing
    /// impl/trait type.
    SelfMethod(String),
    /// `x.m(...)` — a method call on a receiver of unknown type.
    Method(String),
    /// `a::b::f(...)`, `Type::assoc(...)`, or a bare `f(...)` — the
    /// full segment list, aliases not yet applied.
    Path(Vec<String>),
}

/// One call expression inside a fn body.
#[derive(Clone, Debug, PartialEq)]
pub struct Call {
    /// 1-based line of the callee name.
    pub line: u32,
    /// Sequence number within the fn (shared with sites, source order).
    pub seq: u32,
    /// The named callee.
    pub target: CallTarget,
}

/// The kinds of dataflow-relevant sites the parser records.
#[derive(Clone, Debug, PartialEq)]
pub enum SiteKind {
    /// `.unwrap()` / `.expect(` — the detail says which.
    PanicUnwrap(&'static str),
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    PanicMacro(&'static str),
    /// `expr[...]` indexing (out-of-bounds panics).
    Index,
    /// `Instant::now` / `SystemTime::now` — the detail says which.
    AmbientTime(&'static str),
    /// `thread_rng` / `from_entropy` / `OsRng` / `getrandom`.
    AmbientEntropy(String),
    /// A `HashMap`/`HashSet` mention outside `use` items.
    UnorderedContainer(String),
}

/// One dataflow-relevant site inside a fn body.
#[derive(Clone, Debug, PartialEq)]
pub struct Site {
    /// 1-based line.
    pub line: u32,
    /// Sequence number within the fn (shared with calls, source order).
    pub seq: u32,
    /// What was found.
    pub kind: SiteKind,
}

/// One `*.lock()` acquisition and the lexical span it is held for.
///
/// The guard is modelled as held from its acquisition to the end of the
/// enclosing block (`}` at a shallower brace depth releases it) — the
/// repo's `{ let g = x.lock(); ... }` scoping idiom maps exactly onto
/// this; early `drop(g)` calls are not modelled (conservative: spans
/// may be too long, never too short).
#[derive(Clone, Debug, PartialEq)]
pub struct LockSpan {
    /// 1-based line of the acquisition.
    pub line: u32,
    /// Sequence number at acquisition.
    pub start_seq: u32,
    /// Sequence number at release (end of block or fn).
    pub end_seq: u32,
    /// Lock identity: `Type::field` for `self.field.lock()` inside an
    /// `impl Type`; `None` when the receiver is a local (unresolvable).
    pub lock_id: Option<String>,
}

/// One parsed `fn` item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Workspace-relative file path (forward slashes).
    pub path: String,
    /// The crate the file belongs to (`serve`, `ml`, ... / `.` for the
    /// root package).
    pub crate_name: String,
    /// Enclosing `impl Type`/`trait Type` name, if any.
    pub self_ty: Option<String>,
    /// `impl Trait for Type` — the trait name, if any.
    pub trait_of: Option<String>,
    /// The fn's own name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// True when the fn sits in test context (test file or trailing
    /// `#[cfg(test)]` region) — excluded from the call graph.
    pub is_test: bool,
    /// Calls made in the body, in source order.
    pub calls: Vec<Call>,
    /// Dataflow sites in the body, in source order.
    pub sites: Vec<Site>,
    /// Lock acquisitions with their held spans.
    pub locks: Vec<LockSpan>,
}

impl FnItem {
    /// `Type::name` / `name` — the display form used in chains.
    pub fn display(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Everything parsed out of one file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// Every fn item, in source order.
    pub fns: Vec<FnItem>,
    /// `use` aliases: visible name -> full path segments.
    pub uses: BTreeMap<String, Vec<String>>,
}

/// Maps a workspace-relative path to its crate name: `crates/x/...` ->
/// `x`, everything else (root `src/`, `tests/`, `examples/`) -> `.`.
pub fn crate_of(path: &str) -> String {
    match path.strip_prefix("crates/").and_then(|r| r.split('/').next()) {
        Some(c) => c.to_string(),
        None => ".".to_string(),
    }
}

/// Maps an extern-crate path segment to the crate directory name it
/// resolves to in this workspace (`alba_ml` -> `ml`, `albadross` ->
/// `core`), or `None` for external crates (`std`, vendored shims).
pub fn crate_of_extern(seg: &str) -> Option<String> {
    match seg {
        "albadross" => Some("core".to_string()),
        "albadross_repro" => Some(".".to_string()),
        _ => seg.strip_prefix("alba_").map(str::to_string),
    }
}

const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "true", "type", "union",
    "unsafe", "use", "where", "while", "yield",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i) {
        Some(Token { tok: Tok::Ident(s), .. }) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Token], i: usize) -> Option<char> {
    match toks.get(i) {
        Some(Token { tok: Tok::Punct(p), .. }) => Some(*p),
        _ => None,
    }
}

fn is_punct(toks: &[Token], i: usize, c: char) -> bool {
    punct_at(toks, i) == Some(c)
}

/// Index just past a balanced `<...>` group opening at `open`, or
/// `None` when it does not close (the parser then treats the `<` as a
/// comparison and moves on).
fn skip_angles(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = open;
    // Bound the scan: an unclosed `<` (a comparison) must not swallow
    // the rest of the file.
    let limit = (open + 256).min(toks.len());
    while i < limit {
        match punct_at(toks, i) {
            Some('<') => depth += 1,
            Some('>') => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            Some(';') | Some('{') => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// The scope stack entry: what an open `{` belongs to.
#[derive(Clone, Debug)]
enum Scope {
    /// `impl Type { ... }` / `impl Trait for Type { ... }`.
    Impl { self_ty: String, trait_of: Option<String> },
    /// `trait Name { ... }` (default method bodies).
    Trait { name: String },
    /// A fn body; the index into `out.fns`.
    Fn { idx: usize },
    /// Any other brace group (blocks, structs, matches, modules).
    Other,
}

/// Marks token indices inside `use ...;` items (so container *imports*
/// are not sites, mirroring the token-rule engine).
fn use_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut in_use = false;
    for (i, t) in toks.iter().enumerate() {
        match &t.tok {
            Tok::Ident(s) if s == "use" && !in_use => in_use = true,
            Tok::Punct(';') if in_use => {
                in_use = false;
                continue;
            }
            _ => {}
        }
        mask[i] = in_use;
    }
    mask
}

/// Parses one lexed file into items. Total on hostile input: malformed
/// headers simply produce no item, never a panic.
pub fn parse_file(path: &str, lexed: &LexFile, ctx: &FileContext) -> ParsedFile {
    let toks = &lexed.tokens;
    let mask = use_mask(toks);
    let mut out = ParsedFile::default();
    let crate_name = crate_of(path);

    // Scope tracking: every `{` pushes, every `}` pops. `pending` holds
    // the scope the *next* `{` should open (set by impl/trait/fn
    // headers).
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending: Option<Scope> = None;
    // Per-open-fn bookkeeping (supports nested fns): (fns index, seq
    // counter, open locks as (site index into fns[i].locks, depth)).
    let mut fn_stack: Vec<FnFrame> = Vec::new();

    let mut i = 0usize;
    while i < toks.len() {
        // ---- structural: use / impl / trait / fn headers ------------
        match ident_at(toks, i) {
            Some("use") if !in_fn(&fn_stack) => {
                i = parse_use(toks, i, &mut out.uses);
                continue;
            }
            Some("impl") => {
                if let Some((scope, next)) = parse_impl_header(toks, i) {
                    pending = Some(scope);
                    i = next;
                    continue;
                }
            }
            Some("trait") => {
                if let Some(name) = ident_at(toks, i + 1) {
                    if !is_keyword(name) {
                        pending = Some(Scope::Trait { name: name.to_string() });
                        i += 2;
                        continue;
                    }
                }
            }
            Some("fn") => {
                if let Some(name) = ident_at(toks, i + 1) {
                    let (self_ty, trait_of) = enclosing_type(&scopes);
                    let line = toks[i].line;
                    out.fns.push(FnItem {
                        path: path.to_string(),
                        crate_name: crate_name.clone(),
                        self_ty,
                        trait_of,
                        name: name.to_string(),
                        line,
                        is_test: ctx.is_test_line(line),
                        calls: Vec::new(),
                        sites: Vec::new(),
                        locks: Vec::new(),
                    });
                    pending = Some(Scope::Fn { idx: out.fns.len() - 1 });
                    // Skip the signature: nothing between `fn name` and
                    // the body `{` (or a bodyless `;`) is a call. Paren
                    // groups (params) and angle groups (generics) are
                    // skipped wholesale so `fn f(g: impl Fn() -> u8)`
                    // bounds don't look like body braces.
                    i = skip_signature(toks, i + 2);
                    continue;
                }
            }
            _ => {}
        }

        match punct_at(toks, i) {
            Some('{') => {
                scopes.push(pending.take().unwrap_or(Scope::Other));
                if let Some(Scope::Fn { idx }) = scopes.last() {
                    fn_stack.push((*idx, 0, Vec::new()));
                }
                i += 1;
                continue;
            }
            Some('}') => {
                match scopes.pop() {
                    Some(Scope::Fn { idx }) => {
                        // Close the fn: release its remaining locks.
                        if let Some((fidx, seq, open_locks)) = fn_stack.pop() {
                            debug_assert_eq!(fidx, idx);
                            for (li, _) in open_locks {
                                out.fns[fidx].locks[li].end_seq = seq;
                            }
                        }
                    }
                    Some(_) => {
                        // A block inside a fn closed: locks acquired in
                        // deeper blocks are released here.
                        if let Some((fidx, seq, open_locks)) = fn_stack.last_mut() {
                            let depth = scopes.len();
                            open_locks.retain(|&(li, acq_depth)| {
                                if acq_depth > depth {
                                    out.fns[*fidx].locks[li].end_seq = *seq;
                                    false
                                } else {
                                    true
                                }
                            });
                        }
                    }
                    None => {}
                }
                i += 1;
                continue;
            }
            _ => {}
        }

        // A header that never found its `{` (e.g. `impl Trait for T;`
        // in hostile input) must not leak onto the next brace.
        if is_punct(toks, i, ';') {
            pending = None;
        }

        // ---- body facts: calls, sites, locks ------------------------
        if let Some(&(fidx, ..)) = fn_stack.last() {
            if !mask[i] {
                i = scan_body_token(toks, i, fidx, &mut out.fns, &mut fn_stack, scopes.len());
                continue;
            }
        }
        i += 1;
    }

    // EOF with open fns (unterminated input): close their locks.
    while let Some((fidx, seq, open_locks)) = fn_stack.pop() {
        for (li, _) in open_locks {
            out.fns[fidx].locks[li].end_seq = seq;
        }
    }
    out.fns.sort_by(|a, b| a.line.cmp(&b.line).then(a.name.cmp(&b.name)));
    out
}

/// Per-open-fn scan state: (fns index, seq counter, open locks as
/// (site index into `fns[i].locks`, brace depth)).
type FnFrame = (usize, u32, Vec<(usize, usize)>);

fn in_fn(fn_stack: &[FnFrame]) -> bool {
    !fn_stack.is_empty()
}

/// The innermost impl/trait context on the scope stack.
fn enclosing_type(scopes: &[Scope]) -> (Option<String>, Option<String>) {
    for s in scopes.iter().rev() {
        match s {
            Scope::Impl { self_ty, trait_of } => return (Some(self_ty.clone()), trait_of.clone()),
            Scope::Trait { name } => return (Some(name.clone()), Some(name.clone())),
            _ => {}
        }
    }
    (None, None)
}

/// Parses `use a::b::{c, d as e};` into the alias map; returns the
/// index just past the `;`.
fn parse_use(toks: &[Token], start: usize, uses: &mut BTreeMap<String, Vec<String>>) -> usize {
    let mut i = start + 1;
    let mut prefix: Vec<String> = Vec::new();
    let mut group: Vec<(Vec<String>, Option<String>)> = Vec::new();
    let mut current: Vec<String> = Vec::new();
    let mut alias: Option<String> = None;
    let mut depth = 0i32;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct(';') => {
                i += 1;
                break;
            }
            Tok::Punct('{') => {
                depth += 1;
                if depth == 1 {
                    prefix = std::mem::take(&mut current);
                }
            }
            Tok::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    break; // malformed; bail before eating the file
                }
            }
            Tok::Punct(',') => {
                group.push((std::mem::take(&mut current), alias.take()));
            }
            Tok::Ident(s) if s == "as" => {
                alias = ident_at(toks, i + 1).map(str::to_string);
                i += 2;
                continue;
            }
            Tok::Ident(s) => current.push(s.clone()),
            _ => {}
        }
        i += 1;
    }
    group.push((current, alias));
    for (segs, alias) in group {
        if segs.is_empty() {
            continue;
        }
        let full: Vec<String> = prefix.iter().chain(segs.iter()).cloned().collect();
        let name = alias.unwrap_or_else(|| full[full.len() - 1].clone());
        if name != "*" {
            uses.insert(name, full);
        }
    }
    i
}

/// Parses `impl<G> Type {` / `impl<G> Trait<T> for Type {` headers.
/// Returns the scope plus the index of the opening `{` (the main loop
/// re-reads it), or `None` when the header is not parseable.
fn parse_impl_header(toks: &[Token], start: usize) -> Option<(Scope, usize)> {
    let mut i = start + 1;
    if is_punct(toks, i, '<') {
        i = skip_angles(toks, i)?;
    }
    // First type path: segments until `for` / `{` / `where`.
    let (first, mut i) = parse_type_path(toks, i)?;
    let mut trait_of = None;
    let mut self_ty = first;
    if ident_at(toks, i) == Some("for") {
        let (second, j) = parse_type_path(toks, i + 1)?;
        trait_of = Some(self_ty);
        self_ty = second;
        i = j;
    }
    // Skip a where clause: scan to the `{`.
    let limit = (i + 512).min(toks.len());
    while i < limit {
        match punct_at(toks, i) {
            Some('{') => return Some((Scope::Impl { self_ty, trait_of }, i)),
            Some(';') => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// Parses one type path (`a::b::Type<G>`, `&mut Type`, `dyn Tr`),
/// returning its last plain segment and the index just past it.
fn parse_type_path(toks: &[Token], start: usize) -> Option<(String, usize)> {
    let mut i = start;
    // Leading sigils and modifiers.
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('&') | Tok::Punct('*') => i += 1,
            Tok::Ident(s) if matches!(s.as_str(), "mut" | "dyn" | "const") => i += 1,
            _ => break,
        }
    }
    let mut last = None;
    while i < toks.len() {
        match ident_at(toks, i) {
            Some(s) if !is_keyword(s) => {
                last = Some(s.to_string());
                i += 1;
                if is_punct(toks, i, '<') {
                    i = skip_angles(toks, i).unwrap_or(i);
                }
                if is_punct(toks, i, ':') && is_punct(toks, i + 1, ':') {
                    i += 2;
                    continue;
                }
                break;
            }
            _ => break,
        }
    }
    last.map(|l| (l, i))
}

/// Skips a fn signature starting just past the name; returns the index
/// of the body `{` (so the main loop opens the Fn scope) or just past
/// the `;` of a bodyless signature.
fn skip_signature(toks: &[Token], mut i: usize) -> usize {
    if is_punct(toks, i, '<') {
        i = skip_angles(toks, i).unwrap_or(i);
    }
    let mut paren = 0i32;
    while i < toks.len() {
        match punct_at(toks, i) {
            Some('(') => paren += 1,
            Some(')') => paren -= 1,
            Some('{') if paren <= 0 => return i,
            Some(';') if paren <= 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

const ENTROPY_IDENTS: &[&str] = &["thread_rng", "from_entropy", "OsRng", "getrandom"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Examines the body token at `i`, recording calls/sites/locks into
/// `fns[fidx]`; returns the next index to scan from.
fn scan_body_token(
    toks: &[Token],
    i: usize,
    fidx: usize,
    fns: &mut [FnItem],
    fn_stack: &mut [FnFrame],
    depth: usize,
) -> usize {
    let line = toks[i].line;
    let top = fn_stack.last_mut().map(|(_, seq, locks)| (seq, locks));
    let Some((seq, open_locks)) = top else { return i + 1 };

    // `.name(` — method call, panic site, or lock acquisition. The
    // token *after* the name decides (turbofish skipped).
    if is_punct(toks, i, '.') {
        if let Some(name) = ident_at(toks, i + 1) {
            let mut after = i + 2;
            if is_punct(toks, after, ':') && is_punct(toks, after + 1, ':') {
                if let Some(j) = skip_angles(toks, after + 2) {
                    after = j;
                }
            }
            if is_punct(toks, after, '(') {
                let nline = toks[i + 1].line;
                *seq += 1;
                match name {
                    "unwrap" | "expect" => {
                        let d = if name == "unwrap" { "unwrap" } else { "expect" };
                        fns[fidx].sites.push(Site {
                            line: nline,
                            seq: *seq,
                            kind: SiteKind::PanicUnwrap(d),
                        });
                    }
                    "lock" => {
                        let lock_id = lock_receiver(toks, i, fns[fidx].self_ty.as_deref());
                        fns[fidx].locks.push(LockSpan {
                            line: nline,
                            start_seq: *seq,
                            end_seq: u32::MAX,
                            lock_id,
                        });
                        open_locks.push((fns[fidx].locks.len() - 1, depth));
                    }
                    _ => {
                        let target = if ident_at(toks, i.wrapping_sub(1)) == Some("self")
                            && !is_punct(toks, i.wrapping_sub(2), '.')
                        {
                            CallTarget::SelfMethod(name.to_string())
                        } else {
                            CallTarget::Method(name.to_string())
                        };
                        fns[fidx].calls.push(Call { line: nline, seq: *seq, target });
                    }
                }
                return i + 2;
            }
        }
        return i + 1;
    }

    if let Some(id) = ident_at(toks, i) {
        // Macro invocation: `name!` — panic-family macros are sites;
        // all other macros produce no edges (their bodies are opaque).
        if is_punct(toks, i + 1, '!') {
            if let Some(m) = PANIC_MACROS.iter().find(|m| **m == id) {
                *seq += 1;
                fns[fidx].sites.push(Site { line, seq: *seq, kind: SiteKind::PanicMacro(m) });
            }
            return i + 2;
        }
        // Ambient entropy / unordered containers are single idents.
        if ENTROPY_IDENTS.contains(&id) {
            *seq += 1;
            fns[fidx].sites.push(Site {
                line,
                seq: *seq,
                kind: SiteKind::AmbientEntropy(id.to_string()),
            });
            return i + 1;
        }
        if id == "HashMap" || id == "HashSet" {
            *seq += 1;
            fns[fidx].sites.push(Site {
                line,
                seq: *seq,
                kind: SiteKind::UnorderedContainer(id.to_string()),
            });
            return i + 1;
        }
        // Path expression: `a::b::name(` / `Instant::now(` / `name(`.
        // Only consider path *starts* (previous token is not `.`/`::`).
        let prev_sep = is_punct(toks, i.wrapping_sub(1), '.')
            || (is_punct(toks, i.wrapping_sub(1), ':') && i > 0);
        // `crate::`/`super::`/`self::` are keyword-led path starts.
        let keyword_path_start = matches!(id, "crate" | "super")
            || (id == "self" && is_punct(toks, i + 1, ':') && is_punct(toks, i + 2, ':'));
        if !prev_sep && (!is_keyword(id) || keyword_path_start) {
            let mut segs = vec![id.to_string()];
            let mut j = i + 1;
            while is_punct(toks, j, ':') && is_punct(toks, j + 1, ':') {
                if is_punct(toks, j + 2, '<') {
                    // Turbofish ends the segment list.
                    if let Some(k) = skip_angles(toks, j + 2) {
                        j = k;
                    }
                    break;
                }
                match ident_at(toks, j + 2) {
                    Some(s) if !is_keyword(s) => {
                        segs.push(s.to_string());
                        j += 3;
                    }
                    _ => break,
                }
            }
            // Ambient-time sites are path pairs, call or not.
            if segs.len() >= 2 && segs[segs.len() - 1] == "now" {
                let base = &segs[segs.len() - 2];
                if base == "Instant" || base == "SystemTime" {
                    *seq += 1;
                    let d = if base == "Instant" { "Instant" } else { "SystemTime" };
                    fns[fidx].sites.push(Site { line, seq: *seq, kind: SiteKind::AmbientTime(d) });
                    return j;
                }
            }
            if is_punct(toks, j, '(') && !is_punct(toks, j.wrapping_sub(1), '!') {
                *seq += 1;
                let target = if segs.len() == 2 && segs[0] == "Self" {
                    CallTarget::SelfMethod(segs[1].clone())
                } else {
                    CallTarget::Path(segs)
                };
                fns[fidx].calls.push(Call { line, seq: *seq, target });
                return j + 1;
            }
            return j.max(i + 1);
        }
        return i + 1;
    }

    // Indexing: `expr[` where expr just ended in an ident, `)` or `]`.
    if is_punct(toks, i, '[') {
        let indexable = match toks.get(i.wrapping_sub(1)).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => !is_keyword(s),
            Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => true,
            _ => false,
        };
        if indexable {
            *seq += 1;
            fns[fidx].sites.push(Site { line, seq: *seq, kind: SiteKind::Index });
        }
    }
    i + 1
}

/// Resolves the receiver of `<recv>.lock()` at the `.` before `lock`.
/// `self.field.lock()` (or `self.a.b.lock()`) inside `impl T` yields
/// `T::field` (the *last* field named); anything else is unresolvable.
fn lock_receiver(toks: &[Token], dot: usize, self_ty: Option<&str>) -> Option<String> {
    let field = ident_at(toks, dot.wrapping_sub(1)).filter(|s| !is_keyword(s))?;
    // Walk back through the field chain to the base.
    let mut i = dot - 1;
    while i >= 2 && is_punct(toks, i - 1, '.') && ident_at(toks, i - 2).is_some() {
        i -= 2;
    }
    if ident_at(toks, i) == Some("self") {
        self_ty.map(|t| format!("{t}::{field}"))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(path: &str, src: &str) -> ParsedFile {
        let lexed = lex(src);
        let ctx = FileContext::classify(path, &lexed);
        parse_file(path, &lexed, &ctx)
    }

    fn one(src: &str) -> FnItem {
        let p = parse("crates/serve/src/x.rs", src);
        assert_eq!(p.fns.len(), 1, "want one fn: {:?}", p.fns);
        p.fns.into_iter().next().unwrap()
    }

    #[test]
    fn impl_context_and_self_calls() {
        let f = one("impl FleetService { pub fn tick(&mut self) -> bool { self.step(1); true } }");
        assert_eq!(f.self_ty.as_deref(), Some("FleetService"));
        assert_eq!(f.name, "tick");
        assert_eq!(
            f.calls,
            vec![Call { line: 1, seq: 1, target: CallTarget::SelfMethod("step".into()) }]
        );
    }

    #[test]
    fn trait_impls_record_the_trait() {
        let src = "impl NetFrontier for Gateway { fn poll(&mut self, now: usize) -> Vec<u8> { decode(now) } }";
        let f = one(src);
        assert_eq!(f.self_ty.as_deref(), Some("Gateway"));
        assert_eq!(f.trait_of.as_deref(), Some("NetFrontier"));
        assert_eq!(f.calls[0].target, CallTarget::Path(vec!["decode".into()]));
    }

    #[test]
    fn generic_impl_headers_parse() {
        let src = "impl<J: Send, R> Pool<J, R> { fn run_epoch(&mut self) { helper::go::<J>(); } }";
        let f = one(src);
        assert_eq!(f.self_ty.as_deref(), Some("Pool"));
        assert_eq!(f.calls[0].target, CallTarget::Path(vec!["helper".into(), "go".into()]));
    }

    #[test]
    fn method_and_assoc_calls() {
        let f = one("fn f(x: &T) { x.refresh(); Store::open(1); Self::go(); }");
        let targets: Vec<&CallTarget> = f.calls.iter().map(|c| &c.target).collect();
        assert_eq!(
            targets,
            vec![
                &CallTarget::Method("refresh".into()),
                &CallTarget::Path(vec!["Store".into(), "open".into()]),
                &CallTarget::SelfMethod("go".into()),
            ]
        );
    }

    #[test]
    fn self_field_method_is_not_a_self_method() {
        let f = one("impl S { fn f(&self) { self.tracer.hop(1); } }");
        assert_eq!(f.calls[0].target, CallTarget::Method("hop".into()));
    }

    #[test]
    fn panic_sites_are_recorded() {
        let f = one("fn f(v: Option<u8>, s: &[u8], i: usize) -> u8 { v.unwrap(); v.expect(\"x\"); if i > 9 { panic!(\"no\") } s[i] }");
        let kinds: Vec<&SiteKind> = f.sites.iter().map(|s| &s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                &SiteKind::PanicUnwrap("unwrap"),
                &SiteKind::PanicUnwrap("expect"),
                &SiteKind::PanicMacro("panic"),
                &SiteKind::Index,
            ]
        );
    }

    #[test]
    fn attribute_brackets_and_array_literals_are_not_indexing() {
        let src = "fn f() { let a = [1, 2]; let v: Vec<[u8; 2]> = vec![a]; }\n#[derive(Debug)]\nstruct S;";
        let p = parse("crates/serve/src/x.rs", src);
        assert!(p.fns[0].sites.is_empty(), "{:?}", p.fns[0].sites);
    }

    #[test]
    fn ambient_time_and_entropy_sites() {
        let f = one("fn f() { let t = Instant::now(); let r = thread_rng(); let m: HashMap<u8, u8> = make(); }");
        let kinds: Vec<&SiteKind> = f.sites.iter().map(|s| &s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                &SiteKind::AmbientTime("Instant"),
                &SiteKind::AmbientEntropy("thread_rng".into()),
                &SiteKind::UnorderedContainer("HashMap".into()),
            ]
        );
        // The container in a `use` item is not a site.
        let p = parse("crates/serve/src/y.rs", "use std::collections::HashMap;\nfn g() {}");
        assert!(p.fns[0].sites.is_empty());
    }

    #[test]
    fn lock_spans_follow_block_scope() {
        let src =
            "impl Gate { fn f(&self) { { let g = self.inner.lock(); g.touch(); } self.after(); } }";
        let f = one(src);
        assert_eq!(f.locks.len(), 1);
        let l = &f.locks[0];
        assert_eq!(l.lock_id.as_deref(), Some("Gate::inner"));
        // `self.after()` (seq past the block close) is outside the span.
        let after = f.calls.iter().find(|c| c.target == CallTarget::SelfMethod("after".into()));
        assert!(after.unwrap().seq > l.end_seq, "{l:?} vs {:?}", f.calls);
        // `g.touch()` is inside.
        let touch = f.calls.iter().find(|c| c.target == CallTarget::Method("touch".into()));
        assert!(touch.unwrap().seq <= l.end_seq);
    }

    #[test]
    fn local_lock_receivers_are_unresolvable() {
        let f = one("fn f(m: &Mutex<u8>) { let g = m.lock(); drop(g); }");
        assert_eq!(f.locks.len(), 1);
        assert_eq!(f.locks[0].lock_id, None);
    }

    #[test]
    fn use_aliases_are_collected() {
        let src = "use alba_ml::{Fitted as Model, predict};\nuse std::fmt::Write as _;\nfn f() {}";
        let p = parse("crates/serve/src/x.rs", src);
        assert_eq!(
            p.uses.get("Model").unwrap(),
            &vec!["alba_ml".to_string(), "Fitted".to_string()]
        );
        assert_eq!(
            p.uses.get("predict").unwrap(),
            &vec!["alba_ml".to_string(), "predict".to_string()]
        );
    }

    #[test]
    fn test_region_fns_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }";
        let p = parse("crates/serve/src/x.rs", src);
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test);
        let p2 = parse("crates/serve/tests/t.rs", "fn t() {}");
        assert!(p2.fns[0].is_test);
    }

    #[test]
    fn bodyless_trait_methods_produce_items_without_calls() {
        let src = "trait Sink { fn flush(&self); fn log(&self) { self.flush(); } }";
        let p = parse("crates/obs/src/x.rs", src);
        assert_eq!(p.fns.len(), 2);
        let log = p.fns.iter().find(|f| f.name == "log").unwrap();
        assert_eq!(log.self_ty.as_deref(), Some("Sink"));
        assert_eq!(log.calls[0].target, CallTarget::SelfMethod("flush".into()));
        let flush = p.fns.iter().find(|f| f.name == "flush").unwrap();
        assert!(flush.calls.is_empty());
    }

    #[test]
    fn macros_do_not_become_calls() {
        let f = one("fn f() { println!(\"{}\", go()); vec![1] }");
        // `go()` inside the macro body still parses as a call (macro
        // args are expression-shaped in this codebase) but `println`
        // itself must not.
        assert!(f.calls.iter().all(|c| c.target != CallTarget::Path(vec!["println".into()])));
    }

    #[test]
    fn parser_is_total_on_hostile_input() {
        for src in [
            "impl",
            "impl {",
            "impl<T for {",
            "fn",
            "fn (",
            "fn f(",
            "trait",
            "use ;",
            "use {{{",
            "fn f() { self. }",
            "fn f() { a::::b(); }",
            "}}}}",
            "fn f() { { { .lock() } }",
            "impl X { fn a() { \"unterminated",
        ] {
            let lexed = lex(src);
            let ctx = FileContext::classify("crates/serve/src/x.rs", &lexed);
            let _ = parse_file("crates/serve/src/x.rs", &lexed, &ctx);
        }
    }
}
