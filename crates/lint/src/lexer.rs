//! A minimal Rust lexer, just strong enough to lint safely.
//!
//! The rule engine only needs identifiers and punctuation with accurate
//! line numbers; everything a rule pattern could *falsely* match inside
//! — line and block comments (nested), string literals with escapes,
//! raw strings with any number of `#` guards, byte/C-string variants,
//! char literals, and lifetimes — is consumed and dropped here, so a
//! `thread_rng` inside a doc comment or a test fixture string can never
//! produce a finding. Line comments are additionally captured verbatim,
//! because that is where `alba-lint: allow(...)` suppressions live.
//!
//! The lexer never panics, whatever bytes it is fed: all slicing happens
//! at ASCII boundaries and unterminated literals simply run to EOF.

/// One lexed token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// An identifier or keyword (raw identifiers lose their `r#`).
    Ident(String),
    /// A single ASCII punctuation character.
    Punct(char),
}

/// A token with the 1-based line it starts on.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// 1-based source line.
    pub line: u32,
    /// The token itself.
    pub tok: Tok,
}

/// A captured `//` comment (doc comments included).
#[derive(Clone, Debug, PartialEq)]
pub struct Comment {
    /// 1-based source line the comment starts on.
    pub line: u32,
    /// Text after the `//` (leading `/` or `!` of doc comments kept).
    pub text: String,
    /// True when code tokens precede the comment on its line.
    pub trailing: bool,
}

/// The lexed view of one source file.
#[derive(Clone, Debug, Default)]
pub struct LexFile {
    /// Identifier/punctuation stream, in source order.
    pub tokens: Vec<Token>,
    /// Every `//` comment, in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Consumes a `"..."` string body starting at the opening quote;
/// returns the index just past the closing quote (or EOF).
fn skip_string(b: &[u8], open: usize, line: &mut u32) -> usize {
    let mut j = open + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            b'\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    b.len()
}

/// True when `at` begins `#`*n `"` — the guard of a raw string.
fn raw_string_starts(b: &[u8], at: usize) -> Option<usize> {
    let mut hashes = 0;
    let mut j = at;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    (j < b.len() && b[j] == b'"').then_some(hashes)
}

/// Consumes a raw string whose `#`-guard (possibly empty) starts at
/// `at`; returns the index just past the closing delimiter (or EOF).
fn skip_raw_string(b: &[u8], at: usize, hashes: usize, line: &mut u32) -> usize {
    let mut j = at + hashes + 1; // past the opening quote
    while j < b.len() {
        if b[j] == b'\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if b[j] == b'"'
            && b.len() - j > hashes
            && b[j + 1..j + 1 + hashes].iter().all(|&h| h == b'#')
        {
            return j + 1 + hashes;
        }
        j += 1;
    }
    b.len()
}

/// Consumes a char/byte-char literal starting at the opening `'`;
/// returns the index just past the closing quote (or EOF).
fn skip_char_literal(b: &[u8], open: usize, line: &mut u32) -> usize {
    let mut j = open + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\'' => return j + 1,
            b'\n' => {
                // A bare newline cannot appear in a char literal; bail so
                // a stray quote does not swallow the rest of the file.
                *line += 1;
                return j + 1;
            }
            _ => j += 1,
        }
    }
    b.len()
}

/// Lexes `src` (see the module docs for what is kept vs dropped).
pub fn lex(src: &str) -> LexFile {
    let b = src.as_bytes();
    let mut out = LexFile::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                let trailing = out.tokens.last().is_some_and(|t| t.line == line);
                out.comments.push(Comment { line, text: src[start..j].to_string(), trailing });
                i = j;
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1u32;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    match b[j] {
                        b'\n' => {
                            line += 1;
                            j += 1;
                        }
                        b'/' if b.get(j + 1) == Some(&b'*') => {
                            depth += 1;
                            j += 2;
                        }
                        b'*' if b.get(j + 1) == Some(&b'/') => {
                            depth -= 1;
                            j += 2;
                        }
                        _ => j += 1,
                    }
                }
                i = j;
            }
            b'"' => i = skip_string(b, i, &mut line),
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let k = i + 1;
                if k < b.len() && is_ident_start(b[k]) {
                    let mut m = k;
                    while m < b.len() && is_ident_continue(b[m]) {
                        m += 1;
                    }
                    if b.get(m) == Some(&b'\'') {
                        i = m + 1; // 'a' — a one-ident char literal
                    } else {
                        i = m; // 'a — a lifetime; drop it
                    }
                } else {
                    i = skip_char_literal(b, i, &mut line);
                }
            }
            c if is_ident_start(c) => {
                let start = i;
                let mut j = i;
                while j < b.len() && is_ident_continue(b[j]) {
                    j += 1;
                }
                let ident = &src[start..j];
                let string_prefix = matches!(ident, "r" | "b" | "br" | "c" | "cr");
                if ident == "r"
                    && b.get(j) == Some(&b'#')
                    && b.get(j + 1).copied().is_some_and(is_ident_start)
                {
                    // Raw identifier r#name: keep `name`.
                    let s2 = j + 1;
                    let mut m = s2;
                    while m < b.len() && is_ident_continue(b[m]) {
                        m += 1;
                    }
                    out.tokens.push(Token { line, tok: Tok::Ident(src[s2..m].to_string()) });
                    i = m;
                } else if string_prefix && j < b.len() {
                    if let Some(hashes) = raw_string_starts(b, j) {
                        i = skip_raw_string(b, j, hashes, &mut line);
                    } else if b[j] == b'\'' && (ident == "b" || ident == "c") {
                        i = skip_char_literal(b, j, &mut line);
                    } else {
                        out.tokens.push(Token { line, tok: Tok::Ident(ident.to_string()) });
                        i = j;
                    }
                } else {
                    out.tokens.push(Token { line, tok: Tok::Ident(ident.to_string()) });
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < b.len() {
                    if is_ident_continue(b[j]) {
                        j += 1;
                    } else if b[j] == b'.'
                        && b.get(j + 1).copied().is_some_and(|d| d.is_ascii_digit())
                    {
                        j += 1; // the dot of a float, not a method call
                    } else {
                        break;
                    }
                }
                i = j;
            }
            c if c.is_ascii_whitespace() => i += 1,
            c if c.is_ascii() => {
                out.tokens.push(Token { line, tok: Tok::Punct(c as char) });
                i += 1;
            }
            _ => i += 1, // non-ASCII byte outside a literal: ignore
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                Tok::Punct(_) => None,
            })
            .collect()
    }

    #[test]
    fn comments_are_dropped_from_the_token_stream() {
        let src = "// thread_rng()\n/* Instant::now() */ let x = 1;\n/// doc partial_cmp\n";
        assert_eq!(idents(src), vec!["let", "x"]);
    }

    #[test]
    fn nested_block_comments_are_handled() {
        let src = "/* outer /* inner thread_rng */ still comment */ fn f() {}";
        assert_eq!(idents(src), vec!["fn", "f"]);
    }

    #[test]
    fn strings_and_raw_strings_are_dropped() {
        let src = concat!(
            "let a = \"thread_rng()\";\n",
            "let b = r\"SystemTime::now()\";\n",
            "let c = r#\"partial_cmp \" quote\"#;\n",
            "let d = r##\"one \"# deep\"##;\n",
            "let e = b\"bytes thread_rng\";\n",
            "let f = br#\"raw bytes\"#;\n",
        );
        assert_eq!(
            idents(src),
            vec!["let", "a", "let", "b", "let", "c", "let", "d", "let", "e", "let", "f"]
        );
    }

    #[test]
    fn escaped_quotes_do_not_end_strings_early() {
        let src = r#"let s = "a\"thread_rng\"b"; let t = 1;"#;
        assert_eq!(idents(src), vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { let c = 'x'; let n = '\\n'; x }";
        let ids = idents(src);
        assert!(ids.contains(&"str".to_string()));
        // 'x' must not swallow `; let n` as a string body would.
        assert!(ids.contains(&"n".to_string()));
        assert!(!ids.contains(&"a".to_string()), "lifetime idents are dropped: {ids:?}");
        assert!(!ids.contains(&"static".to_string()));
    }

    #[test]
    fn raw_identifiers_lose_their_prefix() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn float_literals_do_not_split_into_method_calls() {
        let src = "let x = 1.5e3; let y = 2.0.total_cmp(&x);";
        let ids = idents(src);
        assert!(ids.contains(&"total_cmp".to_string()));
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "let a = \"line\none\";\nlet b = 2; // note\n";
        let f = lex(src);
        let b_tok = f.tokens.iter().find(|t| t.tok == Tok::Ident("b".into())).unwrap();
        assert_eq!(b_tok.line, 3);
        assert_eq!(f.comments.len(), 1);
        assert_eq!(f.comments[0].line, 3);
        assert!(f.comments[0].trailing);
    }

    #[test]
    fn standalone_comments_are_not_trailing() {
        let f = lex("// leading note\nlet x = 1; // trailing note\n");
        assert!(!f.comments[0].trailing);
        assert!(f.comments[1].trailing);
    }

    #[test]
    fn lexer_survives_hostile_input() {
        for src in
            ["\"unterminated", "r#\"never closed", "'", "b'", "/* open", "r###", "'\\", "ünïcode £"]
        {
            let _ = lex(src);
        }
    }
}
