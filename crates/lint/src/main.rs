//! The `alba-lint` command-line gate.
//!
//! ```text
//! cargo run -p alba-lint                  # human output, exit 1 on findings
//! cargo run -p alba-lint -- --json        # machine output for tooling
//! cargo run -p alba-lint -- --check-stale # additionally fail on stale baseline entries
//! cargo run -p alba-lint -- --write-baseline   # grandfather current findings
//! cargo run -p alba-lint -- --rules       # print the rule catalog
//! ```
//!
//! Exit codes: 0 clean, 1 findings (or stale baseline under
//! `--check-stale`), 2 usage/environment error.

use alba_lint::baseline::Baseline;
use alba_lint::{gate, lint_workspace, rules};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    baseline_path: PathBuf,
    json: bool,
    check_stale: bool,
    write_baseline: bool,
}

const USAGE: &str = "usage: alba-lint [--root DIR] [--baseline FILE] [--json] \
                     [--check-stale] [--write-baseline] [--rules]";

fn parse_args() -> Result<Option<Args>, String> {
    // Default root: the workspace root, two levels above this crate.
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut baseline_path: Option<PathBuf> = None;
    let mut json = false;
    let mut check_stale = false;
    let mut write_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from).ok_or("--root needs a value")?,
            "--baseline" => {
                baseline_path =
                    Some(args.next().map(PathBuf::from).ok_or("--baseline needs a value")?)
            }
            "--json" => json = true,
            "--check-stale" => check_stale = true,
            "--write-baseline" => write_baseline = true,
            "--rules" => {
                for r in rules::CATALOG {
                    println!("{:28} {}", r.name, r.summary);
                }
                return Ok(None);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown argument {other:?} ({USAGE})")),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.txt"));
    Ok(Some(Args { root, baseline_path, json, check_stale, write_baseline }))
}

fn run(args: &Args) -> Result<ExitCode, String> {
    let report =
        lint_workspace(&args.root).map_err(|e| format!("scanning {}: {e}", args.root.display()))?;

    if args.write_baseline {
        let b = Baseline::from_counts(&report.counts());
        std::fs::write(&args.baseline_path, b.render())
            .map_err(|e| format!("writing {}: {e}", args.baseline_path.display()))?;
        println!("wrote {} ({} entries)", args.baseline_path.display(), b.entries.len());
        return Ok(ExitCode::SUCCESS);
    }

    let baseline = match std::fs::read_to_string(&args.baseline_path) {
        Ok(text) => {
            Baseline::parse(&text).map_err(|e| format!("{}: {e}", args.baseline_path.display()))?
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(format!("reading {}: {e}", args.baseline_path.display())),
    };
    let gated = gate(&report, &baseline);
    let stale_fails =
        args.check_stale && (!gated.stale.is_empty() || !report.stale_suppressions.is_empty());
    let failed = !gated.violations.is_empty() || stale_fails;

    if args.json {
        let payload = serde_json::to_string_pretty(&JsonReport {
            findings: report.findings.clone(),
            violations: gated.violations.clone(),
            stale: gated.stale.clone(),
            stale_suppressions: report.stale_suppressions.clone(),
            suppressed: report.suppressed,
            absorbed: gated.absorbed,
            files_scanned: report.files_scanned,
            fns_analyzed: report.fns_analyzed,
            call_edges: report.call_edges,
            ok: !failed,
        })
        .map_err(|e| format!("rendering JSON: {e}"))?;
        println!("{payload}");
        return Ok(if failed { ExitCode::FAILURE } else { ExitCode::SUCCESS });
    }

    // Print findings for (rule, path) pairs over their baseline budget;
    // fully-absorbed pairs stay quiet (they are the grandfathered debt).
    let over: std::collections::BTreeSet<(&str, &str)> =
        gated.violations.iter().map(|v| (v.rule.as_str(), v.path.as_str())).collect();
    for f in &report.findings {
        if over.contains(&(f.rule.as_str(), f.path.as_str())) {
            println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        }
    }
    for v in &gated.violations {
        if v.allowed > 0 {
            println!(
                "baseline exceeded: [{}] {} has {} findings, baseline tolerates {}",
                v.rule, v.path, v.actual, v.allowed
            );
        }
    }
    for s in &gated.stale {
        let verdict = if args.check_stale { "error" } else { "note" };
        println!(
            "{verdict}: stale baseline entry [{}] {} tolerates {}, only {} fire — shrink it",
            s.rule, s.path, s.allowed, s.actual
        );
    }
    for f in &report.stale_suppressions {
        let verdict = if args.check_stale { "error" } else { "note" };
        println!("{verdict}: {}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
    }
    println!(
        "alba-lint: {} files, {} fns / {} call edges, {} findings ({} absorbed by baseline), {} suppressed with reasons{}",
        report.files_scanned,
        report.fns_analyzed,
        report.call_edges,
        report.findings.len(),
        gated.absorbed,
        report.suppressed,
        if failed { " — FAIL" } else { " — OK" }
    );
    Ok(if failed { ExitCode::FAILURE } else { ExitCode::SUCCESS })
}

#[derive(serde::Serialize)]
struct JsonReport {
    findings: Vec<alba_lint::Finding>,
    violations: Vec<alba_lint::baseline::Violation>,
    stale: Vec<alba_lint::baseline::StaleEntry>,
    stale_suppressions: Vec<alba_lint::Finding>,
    suppressed: u64,
    absorbed: u64,
    files_scanned: u64,
    fns_analyzed: u64,
    call_edges: u64,
    ok: bool,
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(None) => ExitCode::SUCCESS,
        Ok(Some(args)) => match run(&args) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("alba-lint: {e}");
                ExitCode::from(2)
            }
        },
        Err(e) => {
            eprintln!("alba-lint: {e}");
            ExitCode::from(2)
        }
    }
}
