//! The grandfathered-findings baseline.
//!
//! `lint-baseline.txt` at the workspace root records, per `(rule, path)`,
//! how many findings are tolerated. CI semantics are shrink-only: a file
//! may have *at most* its baselined count of findings for a rule — fewer
//! is fine (and the baseline should then be tightened), more fails the
//! gate, and findings in un-baselined locations always fail. The stale
//! check (`--check-stale`, run by `scripts/ci.sh --full`) fails when a
//! baseline entry no longer fires at all, so the file can only ever
//! shrink toward empty.
//!
//! Format: one `rule<TAB>path<TAB>count` triple per line; `#` comments
//! and blank lines ignored. The file is sorted on write so diffs stay
//! reviewable.

use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Baseline key: (rule, workspace-relative path).
pub type Key = (String, String);

/// Parsed baseline: tolerated finding counts per (rule, path).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Baseline {
    /// Tolerated counts.
    pub entries: BTreeMap<Key, u64>,
}

/// One baseline violation (more findings than tolerated).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Violation {
    /// Rule name.
    pub rule: String,
    /// File path.
    pub path: String,
    /// Findings present now.
    pub actual: u64,
    /// Findings the baseline tolerates.
    pub allowed: u64,
}

/// One stale baseline entry (tolerates findings that no longer exist).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct StaleEntry {
    /// Rule name.
    pub rule: String,
    /// File path.
    pub path: String,
    /// Tolerated count that no longer fires in full.
    pub allowed: u64,
    /// Findings actually present now.
    pub actual: u64,
}

impl Baseline {
    /// Parses the baseline file format. Malformed lines are errors — a
    /// typo must not silently tolerate findings.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = BTreeMap::new();
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            let (rule, path, count) = match (parts.next(), parts.next(), parts.next(), parts.next())
            {
                (Some(r), Some(p), Some(c), None) => (r, p, c),
                _ => {
                    return Err(format!(
                        "baseline line {}: expected rule<TAB>path<TAB>count",
                        n + 1
                    ))
                }
            };
            let count: u64 = count
                .parse()
                .map_err(|_| format!("baseline line {}: bad count {count:?}", n + 1))?;
            if entries.insert((rule.to_string(), path.to_string()), count).is_some() {
                return Err(format!("baseline line {}: duplicate entry {rule} {path}", n + 1));
            }
        }
        Ok(Self { entries })
    }

    /// Renders the file format (sorted, with a header).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# alba-lint baseline: grandfathered findings, shrink-only.\n\
             # Format: rule<TAB>path<TAB>count. CI fails when a (rule, path) exceeds\n\
             # its count or appears here without firing (stale; checked by --check-stale).\n",
        );
        for ((rule, path), count) in &self.entries {
            let _ = writeln!(out, "{rule}\t{path}\t{count}");
        }
        out
    }

    /// Builds a baseline that exactly tolerates `current` finding counts.
    pub fn from_counts(current: &BTreeMap<Key, u64>) -> Self {
        Self {
            entries: current.iter().filter(|(_, &c)| c > 0).map(|(k, &c)| (k.clone(), c)).collect(),
        }
    }

    /// Splits current findings into violations (over baseline) and the
    /// number of findings the baseline absorbs.
    pub fn compare(&self, current: &BTreeMap<Key, u64>) -> (Vec<Violation>, u64) {
        let mut violations = Vec::new();
        let mut absorbed = 0u64;
        for ((rule, path), &actual) in current {
            let allowed = self.entries.get(&(rule.clone(), path.clone())).copied().unwrap_or(0);
            if actual > allowed {
                violations.push(Violation {
                    rule: rule.clone(),
                    path: path.clone(),
                    actual,
                    allowed,
                });
            }
            absorbed += actual.min(allowed);
        }
        (violations, absorbed)
    }

    /// Baseline entries that tolerate more findings than currently fire
    /// (including entries that no longer fire at all).
    pub fn stale(&self, current: &BTreeMap<Key, u64>) -> Vec<StaleEntry> {
        self.entries
            .iter()
            .filter_map(|((rule, path), &allowed)| {
                let actual = current.get(&(rule.clone(), path.clone())).copied().unwrap_or(0);
                (actual < allowed).then(|| StaleEntry {
                    rule: rule.clone(),
                    path: path.clone(),
                    allowed,
                    actual,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(items: &[(&str, &str, u64)]) -> BTreeMap<Key, u64> {
        items.iter().map(|(r, p, c)| ((r.to_string(), p.to_string()), *c)).collect()
    }

    #[test]
    fn parse_render_round_trip() {
        let b = Baseline::from_counts(&counts(&[
            ("no-ambient-time", "crates/serve/src/x.rs", 2),
            ("no-panic-in-fallible", "crates/store/src/y.rs", 1),
        ]));
        let back = Baseline::parse(&b.render()).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn empty_and_commented_baselines_parse() {
        assert!(Baseline::parse("").unwrap().entries.is_empty());
        assert!(Baseline::parse("# only comments\n\n").unwrap().entries.is_empty());
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(Baseline::parse("rule only-two-fields").is_err());
        assert!(Baseline::parse("r\tp\tnot-a-number").is_err());
        assert!(Baseline::parse("r\tp\t1\nr\tp\t2").is_err(), "duplicates rejected");
    }

    #[test]
    fn shrink_only_semantics() {
        let b = Baseline::from_counts(&counts(&[("r", "a.rs", 2)]));
        // Equal: absorbed, no violation.
        let (v, absorbed) = b.compare(&counts(&[("r", "a.rs", 2)]));
        assert!(v.is_empty());
        assert_eq!(absorbed, 2);
        // Fewer: fine (but stale reports the slack).
        let (v, _) = b.compare(&counts(&[("r", "a.rs", 1)]));
        assert!(v.is_empty());
        assert_eq!(b.stale(&counts(&[("r", "a.rs", 1)]))[0].allowed, 2);
        // More: violation.
        let (v, _) = b.compare(&counts(&[("r", "a.rs", 3)]));
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].actual, v[0].allowed), (3, 2));
        // Unbaselined location: violation with allowed = 0.
        let (v, _) = b.compare(&counts(&[("r", "b.rs", 1)]));
        assert_eq!(v[0].allowed, 0);
    }

    #[test]
    fn stale_entries_are_detected() {
        let b = Baseline::from_counts(&counts(&[("r", "a.rs", 1), ("r", "b.rs", 1)]));
        let stale = b.stale(&counts(&[("r", "a.rs", 1)]));
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].path, "b.rs");
        assert_eq!(stale[0].actual, 0);
    }
}
