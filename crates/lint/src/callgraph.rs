//! Cross-crate call graph over the parsed workspace.
//!
//! Name resolution is deliberately conservative — an edge exists only
//! when the callee is unambiguous:
//!
//! * `self.m()` / `Self::m()` resolve against the enclosing impl type
//!   (falling back to the implemented trait's default methods);
//! * `Type::m()` resolves through the type index (with `use ... as`
//!   aliases applied first);
//! * `x.m()` on an unknown receiver resolves only when exactly **one**
//!   workspace type defines a method `m` — if several types share the
//!   name (trait impls, common names like `len`), the call stays
//!   unresolved rather than fan out to every candidate;
//! * free `f()` prefers same-crate definitions, then a unique
//!   cross-crate definition; `module::f()` uses the leading segment
//!   (`crate`/`alba_x`/...) as a crate hint.
//!
//! Unresolved calls are dropped edges (possible false negatives, listed
//! in DESIGN.md), never false edges. Test-context fns are excluded
//! entirely, so `#[cfg(test)]` callers cannot make a panic "reachable".

use crate::parse::{Call, CallTarget, FnItem, ParsedFile};
use std::collections::BTreeMap;

/// A function's index in [`Graph::fns`].
pub type FnIdx = usize;

/// One resolved call edge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Edge {
    /// The callee.
    pub callee: FnIdx,
    /// 1-based line of the call site in the caller.
    pub line: u32,
    /// Sequence number of the call within the caller's body.
    pub seq: u32,
}

/// The workspace call graph: parsed fns plus resolved edges.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    /// All non-test fns, ordered by (path, line) — deterministic.
    pub fns: Vec<FnItem>,
    /// Outgoing edges per fn, in call order.
    pub edges: Vec<Vec<Edge>>,
}

impl Graph {
    /// Builds the graph from per-file parses (path -> parse). Test fns
    /// are dropped before indexing so they neither produce nor receive
    /// edges.
    pub fn build(files: &BTreeMap<String, ParsedFile>) -> Graph {
        let mut fns: Vec<FnItem> = Vec::new();
        for parsed in files.values() {
            fns.extend(parsed.fns.iter().filter(|f| !f.is_test).cloned());
        }
        fns.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));

        // Indices. Methods = fns with a self type (impl or trait body).
        let mut by_type_method: BTreeMap<(&str, &str), Vec<FnIdx>> = BTreeMap::new();
        let mut method_types: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        let mut free_by_crate: BTreeMap<(&str, &str), Vec<FnIdx>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<&str, Vec<FnIdx>> = BTreeMap::new();
        let mut type_traits: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            match &f.self_ty {
                Some(ty) => {
                    by_type_method.entry((ty, &f.name)).or_default().push(i);
                    let types = method_types.entry(&f.name).or_default();
                    if !types.contains(&ty.as_str()) {
                        types.push(ty);
                    }
                    if let Some(tr) = &f.trait_of {
                        if tr != ty {
                            let traits = type_traits.entry(ty.as_str()).or_default();
                            if !traits.contains(&tr.as_str()) {
                                traits.push(tr);
                            }
                        }
                    }
                }
                None => {
                    free_by_crate.entry((&f.crate_name, &f.name)).or_default().push(i);
                    free_by_name.entry(&f.name).or_default().push(i);
                }
            }
        }

        // Per-file alias maps: visible name -> (real name, crate hint).
        let mut aliases: BTreeMap<&str, BTreeMap<&str, (&str, Option<String>)>> = BTreeMap::new();
        for (path, parsed) in files {
            let map = aliases.entry(path).or_default();
            for (name, full) in &parsed.uses {
                let hint = full.first().and_then(|s| crate_hint(s, path));
                if let Some(real) = full.last() {
                    map.insert(name, (real, hint));
                }
            }
        }

        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); fns.len()];
        for (i, f) in fns.iter().enumerate() {
            let file_aliases = aliases.get(f.path.as_str());
            for call in &f.calls {
                let callee = resolve(
                    call,
                    f,
                    &by_type_method,
                    &method_types,
                    &type_traits,
                    &free_by_crate,
                    &free_by_name,
                    file_aliases,
                );
                for c in callee {
                    edges[i].push(Edge { callee: c, line: call.line, seq: call.seq });
                }
            }
        }
        Graph { fns, edges }
    }

    /// Finds a fn by (path prefix, optional self type, name). Used to
    /// designate analysis roots; returns every match (e.g. `worker_loop`
    /// exists in both par and grid — the prefix disambiguates).
    pub fn find(&self, path_prefix: &str, self_ty: Option<&str>, name: &str) -> Vec<FnIdx> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.name == name
                    && f.path.starts_with(path_prefix)
                    && match self_ty {
                        Some(t) => f.self_ty.as_deref() == Some(t),
                        None => f.self_ty.is_none(),
                    }
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Total resolved edge count (for the bench / stats line).
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }
}

/// Maps a `use` path's leading segment to a crate-directory hint.
fn crate_hint(seg: &str, path: &str) -> Option<String> {
    match seg {
        "crate" | "self" | "super" => Some(crate::parse::crate_of(path)),
        _ => crate::parse::crate_of_extern(seg),
    }
}

/// Method names ubiquitous on std types. A workspace type defining one
/// of these must not capture every `x.iter()`-style call in the tree,
/// so the unique-name rule never applies to them (`self.m()` and
/// `Type::m()` still resolve precisely).
const COMMON_STD_METHODS: &[&str] = &[
    "abs",
    "all",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "borrow",
    "borrow_mut",
    "bytes",
    "ceil",
    "chars",
    "chunks",
    "clear",
    "clone",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copy_from_slice",
    "count",
    "drain",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "extend",
    "extend_from_slice",
    "fill",
    "filter",
    "find",
    "first",
    "flush",
    "floor",
    "fold",
    "get",
    "get_mut",
    "get_or_insert_with",
    "insert",
    "into_iter",
    "is_empty",
    "is_some",
    "is_none",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "map",
    "max",
    "min",
    "next",
    "parse",
    "partial_cmp",
    "pop",
    "position",
    "push",
    "push_str",
    "read",
    "read_to_end",
    "read_to_string",
    "recv",
    "remove",
    "replace",
    "reserve",
    "resize",
    "rev",
    "rotate_left",
    "rotate_right",
    "send",
    "set",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "split",
    "split_at",
    "starts_with",
    "sum",
    "swap",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "values",
    "windows",
    "write",
    "write_all",
    "zip",
];

/// Resolves one call to zero or more callees (multiple only when the
/// same type name + method name has several impl blocks).
#[allow(clippy::too_many_arguments)]
fn resolve(
    call: &Call,
    caller: &FnItem,
    by_type_method: &BTreeMap<(&str, &str), Vec<FnIdx>>,
    method_types: &BTreeMap<&str, Vec<&str>>,
    type_traits: &BTreeMap<&str, Vec<&str>>,
    free_by_crate: &BTreeMap<(&str, &str), Vec<FnIdx>>,
    free_by_name: &BTreeMap<&str, Vec<FnIdx>>,
    aliases: Option<&BTreeMap<&str, (&str, Option<String>)>>,
) -> Vec<FnIdx> {
    match &call.target {
        CallTarget::SelfMethod(m) => {
            let Some(ty) = caller.self_ty.as_deref() else { return Vec::new() };
            let direct = lookup(by_type_method, ty, m);
            if !direct.is_empty() {
                return direct;
            }
            // Default trait method: `self.m()` where `m` lives in a
            // trait the type implements (or, inside `impl Tr for T`,
            // in `Tr` itself). Ambiguous across traits -> no edge.
            let mut traits: Vec<&str> = Vec::new();
            if let Some(tr) = caller.trait_of.as_deref() {
                traits.push(tr);
            }
            if let Some(ts) = type_traits.get(ty) {
                traits.extend(ts.iter().copied());
            }
            let mut hits: Vec<Vec<FnIdx>> = Vec::new();
            for tr in traits {
                let h = lookup(by_type_method, tr, m);
                if !h.is_empty() && !hits.contains(&h) {
                    hits.push(h);
                }
            }
            if hits.len() == 1 {
                hits.remove(0)
            } else {
                Vec::new()
            }
        }
        CallTarget::Method(m) => {
            // Unknown receiver: resolve only when exactly one workspace
            // type defines the method (else: ambiguous, no edge) and
            // the name isn't a ubiquitous std method.
            if COMMON_STD_METHODS.contains(&m.as_str()) {
                return Vec::new();
            }
            match method_types.get(m.as_str()) {
                Some(types) if types.len() == 1 => lookup(by_type_method, types[0], m),
                _ => Vec::new(),
            }
        }
        CallTarget::Path(segs) => {
            resolve_path(segs, caller, by_type_method, free_by_crate, free_by_name, aliases)
        }
    }
}

fn lookup(index: &BTreeMap<(&str, &str), Vec<FnIdx>>, ty: &str, m: &str) -> Vec<FnIdx> {
    index.get(&(ty, m)).cloned().unwrap_or_default()
}

fn resolve_path(
    segs: &[String],
    caller: &FnItem,
    by_type_method: &BTreeMap<(&str, &str), Vec<FnIdx>>,
    free_by_crate: &BTreeMap<(&str, &str), Vec<FnIdx>>,
    free_by_name: &BTreeMap<&str, Vec<FnIdx>>,
    aliases: Option<&BTreeMap<&str, (&str, Option<String>)>>,
) -> Vec<FnIdx> {
    let Some(name) = segs.last() else { return Vec::new() };

    if segs.len() >= 2 {
        let qual = &segs[segs.len() - 2];
        // `Type::assoc(...)` — type names are capitalised by repo
        // convention. Apply `use x::Real as Alias` renames first.
        if qual.chars().next().is_some_and(char::is_uppercase) {
            let real = match aliases.and_then(|a| a.get(qual.as_str())) {
                Some((real, _)) => real,
                None => qual.as_str(),
            };
            return lookup(by_type_method, real, name);
        }
    }

    // Free fn. Determine a crate hint from the path or the use map.
    let hint: Option<String> = if segs.len() >= 2 {
        crate_hint(&segs[0], &caller.path)
    } else {
        match aliases.and_then(|a| a.get(segs[0].as_str())) {
            Some((_, h)) => h.clone(),
            // Bare `f()`: same-crate first.
            None => Some(caller.crate_name.clone()),
        }
    };
    if let Some(h) = &hint {
        let hit = free_by_crate.get(&(h.as_str(), name.as_str())).cloned().unwrap_or_default();
        if !hit.is_empty() {
            return hit;
        }
        // A qualified path (`module::f`) whose hint resolved to a real
        // crate but found nothing stays unresolved (std / vendor).
        if segs.len() >= 2 {
            return Vec::new();
        }
    }
    // Unique cross-crate fallback for bare names.
    match free_by_name.get(name.as_str()) {
        Some(all) => {
            // Unique definition anywhere -> take it; ambiguous -> drop.
            if all.len() == 1 {
                all.clone()
            } else {
                Vec::new()
            }
        }
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_file;
    use crate::rules::FileContext;

    fn graph(files: &[(&str, &str)]) -> Graph {
        let mut parsed = BTreeMap::new();
        for (path, src) in files {
            let lexed = lex(src);
            let ctx = FileContext::classify(path, &lexed);
            parsed.insert(path.to_string(), parse_file(path, &lexed, &ctx));
        }
        Graph::build(&parsed)
    }

    fn idx(g: &Graph, name: &str) -> FnIdx {
        g.fns.iter().position(|f| f.name == name).unwrap_or_else(|| panic!("no fn {name}"))
    }

    fn callees(g: &Graph, name: &str) -> Vec<String> {
        g.edges[idx(g, name)].iter().map(|e| g.fns[e.callee].display()).collect()
    }

    #[test]
    fn self_calls_resolve_within_the_impl() {
        let g = graph(&[(
            "crates/serve/src/service.rs",
            "impl FleetService { pub fn tick(&mut self) { self.tick_core(); } fn tick_core(&mut self) {} }",
        )]);
        assert_eq!(callees(&g, "tick"), vec!["FleetService::tick_core"]);
    }

    #[test]
    fn assoc_calls_resolve_across_crates() {
        let g = graph(&[
            ("crates/serve/src/a.rs", "fn run() { Store::open(); }"),
            ("crates/store/src/b.rs", "impl Store { pub fn open() {} }"),
        ]);
        assert_eq!(callees(&g, "run"), vec!["Store::open"]);
    }

    #[test]
    fn unknown_receiver_resolves_only_when_unique() {
        let g = graph(&[
            ("crates/serve/src/a.rs", "fn run(t: &Tracer, s: &S) { t.hop(); s.len(); }"),
            ("crates/trace/src/b.rs", "impl Tracer { pub fn hop(&self) {} }"),
            // Two types define `len` -> ambiguous -> no edge.
            (
                "crates/store/src/c.rs",
                "impl Seg { pub fn len(&self) {} } impl Buf { pub fn len(&self) {} }",
            ),
        ]);
        assert_eq!(callees(&g, "run"), vec!["Tracer::hop"]);
    }

    #[test]
    fn free_fns_prefer_same_crate() {
        let g = graph(&[
            ("crates/serve/src/a.rs", "fn run() { helper(); }\nfn helper() {}"),
            ("crates/ml/src/b.rs", "pub fn helper() {}"),
        ]);
        let e = &g.edges[idx(&g, "run")];
        assert_eq!(e.len(), 1);
        assert_eq!(g.fns[e[0].callee].crate_name, "serve");
    }

    #[test]
    fn crate_qualified_paths_use_the_hint() {
        let g = graph(&[
            ("crates/serve/src/a.rs", "fn run() { alba_ml::fit(); crate::local(); }"),
            ("crates/serve/src/b.rs", "pub fn local() {}"),
            ("crates/ml/src/c.rs", "pub fn fit() {}"),
        ]);
        let got = callees(&g, "run");
        assert_eq!(got, vec!["fit", "local"]);
    }

    #[test]
    fn use_aliases_rename_types() {
        let g = graph(&[
            ("crates/serve/src/a.rs", "use alba_ml::Fitted as Model;\nfn run() { Model::load(); }"),
            ("crates/ml/src/b.rs", "impl Fitted { pub fn load() {} }"),
        ]);
        assert_eq!(callees(&g, "run"), vec!["Fitted::load"]);
    }

    #[test]
    fn test_fns_are_excluded() {
        let g = graph(&[(
            "crates/serve/src/a.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests { fn t() { live(); } }",
        )]);
        assert_eq!(g.fns.len(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn trait_default_methods_resolve_for_impls() {
        let g = graph(&[(
            "crates/net/src/a.rs",
            "trait Frontier { fn poll(&mut self); fn drain(&mut self) { self.poll(); } }\nimpl Frontier for Gateway { fn poll(&mut self) { self.step(); } }\nimpl Gateway { fn step(&mut self) { self.drain(); } }",
        )]);
        // Gateway::step -> Frontier::drain (default method).
        assert_eq!(callees(&g, "step"), vec!["Frontier::drain"]);
    }

    #[test]
    fn find_disambiguates_by_path_prefix() {
        let g = graph(&[
            ("crates/par/src/lib.rs", "fn worker_loop() {}"),
            ("crates/grid/src/runner.rs", "fn worker_loop() {}"),
        ]);
        let hits = g.find("crates/par/", None, "worker_loop");
        assert_eq!(hits.len(), 1);
        assert_eq!(g.fns[hits[0]].path, "crates/par/src/lib.rs");
    }
}
