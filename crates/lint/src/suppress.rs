//! Parsing of `alba-lint` suppression comments.
//!
//! Two forms are recognised, both only in `//` line comments:
//!
//! ```text
//! // alba-lint: allow(rule-a, rule-b) reason="why this is sound"
//! // alba-lint: allow-file(rule-a) reason="why for the whole file"
//! ```
//!
//! A *trailing* `allow` (code precedes it on the line) suppresses
//! findings on its own line; a *standalone* `allow` suppresses findings
//! on the next line that carries any code. `allow-file` suppresses the
//! named rules everywhere in the file. The `reason` is mandatory and
//! must be non-empty: a reason-less or malformed suppression is itself
//! reported as a `bad-suppression` finding, so justifications can never
//! silently rot away.
//!
//! Only comments that *begin* with the marker are treated as
//! suppressions — prose that merely mentions the syntax mid-sentence
//! (like this module's docs) is ignored.

use crate::lexer::{Comment, LexFile};

/// The marker every suppression comment must carry.
pub const MARKER: &str = "alba-lint:";

/// Rule name of the diagnostics produced for malformed suppressions.
pub const BAD_SUPPRESSION: &str = "bad-suppression";

/// One parsed suppression.
#[derive(Clone, Debug, PartialEq)]
pub struct Suppression {
    /// Line the comment sits on.
    pub line: u32,
    /// Rules being allowed.
    pub rules: Vec<String>,
    /// The mandatory justification.
    pub reason: String,
    /// True for `allow-file` (whole-file scope).
    pub whole_file: bool,
    /// Lines whose findings this suppression covers (line forms only).
    pub covers: Vec<u32>,
}

impl Suppression {
    /// Whether this suppression silences `rule` at `line`.
    pub fn silences(&self, rule: &str, line: u32) -> bool {
        self.rules.iter().any(|r| r == rule) && (self.whole_file || self.covers.contains(&line))
    }
}

/// A malformed suppression, to be surfaced as a finding.
#[derive(Clone, Debug, PartialEq)]
pub struct BadSuppression {
    /// Line the comment sits on.
    pub line: u32,
    /// What is wrong with it.
    pub detail: String,
}

/// Everything suppression-related extracted from one file.
#[derive(Clone, Debug, Default)]
pub struct Suppressions {
    /// Well-formed suppressions.
    pub active: Vec<Suppression>,
    /// Malformed ones (missing reason, unparseable rule list, ...).
    pub bad: Vec<BadSuppression>,
}

impl Suppressions {
    /// Whether any well-formed suppression silences `rule` at `line`.
    pub fn silences(&self, rule: &str, line: u32) -> bool {
        self.active.iter().any(|s| s.silences(rule, line))
    }
}

/// Parses `allow(a, b)` / `allow-file(a)` plus `reason="..."` out of a
/// single comment known to contain [`MARKER`].
fn parse_one(
    c: &Comment,
    next_code_line: impl Fn(u32) -> Option<u32>,
) -> Result<Suppression, String> {
    let after = c.text.trim_start().strip_prefix(MARKER).unwrap_or("").trim_start();
    let whole_file = after.starts_with("allow-file");
    let keyword = if whole_file { "allow-file" } else { "allow" };
    if !after.starts_with(keyword) {
        return Err(format!("expected `allow(...)` or `allow-file(...)` after `{MARKER}`"));
    }
    let rest = after[keyword.len()..].trim_start();
    let Some(body) = rest.strip_prefix('(') else {
        return Err(format!("expected `(` after `{keyword}`"));
    };
    let Some(close) = body.find(')') else {
        return Err("unclosed rule list".to_string());
    };
    let rules: Vec<String> =
        body[..close].split(',').map(|r| r.trim().to_string()).filter(|r| !r.is_empty()).collect();
    if rules.is_empty() {
        return Err("empty rule list".to_string());
    }
    let tail = body[close + 1..].trim_start();
    let Some(reason_body) = tail.strip_prefix("reason=\"") else {
        return Err("missing `reason=\"...\"` — every suppression must be justified".to_string());
    };
    let Some(end) = reason_body.find('"') else {
        return Err("unterminated reason string".to_string());
    };
    let reason = reason_body[..end].trim().to_string();
    if reason.is_empty() {
        return Err("empty reason — every suppression must be justified".to_string());
    }
    let covers = if whole_file {
        Vec::new()
    } else if c.trailing {
        vec![c.line]
    } else {
        // A standalone allow covers the next line that carries code (and
        // its own line, in case of a mid-expression comment).
        let mut v = vec![c.line];
        if let Some(l) = next_code_line(c.line) {
            v.push(l);
        }
        v
    };
    Ok(Suppression { line: c.line, rules, reason, whole_file, covers })
}

/// Extracts all suppressions from a lexed file.
pub fn extract(file: &LexFile) -> Suppressions {
    let mut out = Suppressions::default();
    for c in &file.comments {
        if !c.text.trim_start().starts_with(MARKER) {
            continue;
        }
        let next_code_line = |after: u32| file.tokens.iter().map(|t| t.line).find(|&l| l > after);
        match parse_one(c, next_code_line) {
            Ok(s) => out.active.push(s),
            Err(detail) => out.bad.push(BadSuppression { line: c.line, detail }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let f = lex("let t = now(); // alba-lint: allow(no-ambient-time) reason=\"wall stats\"\n");
        let s = extract(&f);
        assert!(s.bad.is_empty());
        assert!(s.active[0].silences("no-ambient-time", 1));
        assert!(!s.active[0].silences("no-ambient-time", 2));
        assert!(!s.active[0].silences("no-ambient-entropy", 1));
    }

    #[test]
    fn standalone_allow_covers_the_next_code_line() {
        let src = "// alba-lint: allow(no-panic-in-fallible) reason=\"slice len checked\"\n\nlet x = v.unwrap();\n";
        let s = extract(&lex(src));
        assert!(s.active[0].silences("no-panic-in-fallible", 3));
    }

    #[test]
    fn allow_file_covers_every_line() {
        let src =
            "// alba-lint: allow-file(no-ambient-time) reason=\"the clock seam\"\nfn f() {}\n";
        let s = extract(&lex(src));
        assert!(s.active[0].whole_file);
        assert!(s.silences("no-ambient-time", 999));
    }

    #[test]
    fn multiple_rules_in_one_allow() {
        let src = "let x = 1; // alba-lint: allow(rule-a, rule-b) reason=\"both fine here\"\n";
        let s = extract(&lex(src));
        assert!(s.active[0].silences("rule-a", 1) && s.active[0].silences("rule-b", 1));
    }

    #[test]
    fn missing_reason_is_reported() {
        let s = extract(&lex("// alba-lint: allow(no-ambient-time)\n"));
        assert!(s.active.is_empty());
        assert_eq!(s.bad.len(), 1);
        assert!(s.bad[0].detail.contains("reason"));
    }

    #[test]
    fn empty_reason_is_reported() {
        let s = extract(&lex("// alba-lint: allow(r) reason=\"  \"\n"));
        assert_eq!(s.bad.len(), 1);
    }

    #[test]
    fn malformed_forms_are_reported_not_ignored() {
        for src in [
            "// alba-lint: deny(x) reason=\"y\"\n",
            "// alba-lint: allow() reason=\"y\"\n",
            "// alba-lint: allow(x reason=\"y\"\n",
            "// alba-lint: allow(x) reason=unquoted\n",
        ] {
            let s = extract(&lex(src));
            assert_eq!(s.bad.len(), 1, "src: {src}");
        }
    }

    #[test]
    fn ordinary_comments_are_not_suppressions() {
        // The marker mid-sentence is prose, not a suppression.
        let s = extract(&lex(
            "// docs may mention the alba-lint: allow(x) syntax freely\nlet x = 1;\n",
        ));
        assert!(s.active.is_empty() && s.bad.is_empty());
        // A comment that *begins* with the marker but is junk is
        // rejected loudly — better a false bad-suppression than a
        // silently ignored one.
        let s = extract(&lex("// alba-lint: please ignore this line\n"));
        assert_eq!(s.bad.len(), 1);
    }
}
