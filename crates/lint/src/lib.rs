//! `alba-lint` — workspace determinism & robustness lints.
//!
//! Every subsystem in this workspace leans on one invariant: *no
//! ambient nondeterminism and no panics on fallible paths*, because
//! serve's equal-seed event logs, store's bit-for-bit warm restarts and
//! chaos's replayable fault drills are all byte-identity contracts. The
//! end-to-end tests tell you when that invariant breaks; this crate
//! tells you *where*, before anything runs.
//!
//! Two engines share one reporting pipeline:
//!
//! * the **token engine** ([`rules`]) — per-file patterns over the
//!   hand-rolled [`lexer`] stream (comments/strings can never fire);
//! * the **interprocedural engine** — an item parser ([`parse`]) on the
//!   same lexer, a cross-crate call graph ([`callgraph`]), and three
//!   dataflow passes ([`dataflow`]): panic-reachability from hot-path
//!   roots, nondeterminism taint into journaled-output sinks, and
//!   lock-order cycle detection. Findings carry the full call chain,
//!   each step a clickable `file:line`.
//!
//! Suppressions ([`suppress`]) are reason-mandatory; interprocedural
//! findings are suppressible at the *source* (the panic/nondet site —
//! also via the matching token rule's name) or at the *root* (the
//! hot-path fn / sink caller — interprocedural rule name only). A
//! suppression naming an interprocedural rule that no longer silences
//! anything is itself reported (`stale-suppression`) under
//! `--check-stale`, so dead call edges cannot leave dead allows behind.
//! The baseline ([`baseline`]) stays shrink-only. Run as
//! `cargo run -p alba-lint`; `scripts/ci.sh` runs it as a hard gate.

pub mod baseline;
pub mod callgraph;
pub mod dataflow;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod suppress;
pub mod walk;

use baseline::{Baseline, Key, StaleEntry, Violation};
use callgraph::Graph;
use dataflow::{lock_order, nondet_taint, panic_reachability, InterFinding};
use rules::FileContext;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// The rules produced by the interprocedural engine.
pub const INTERPROCEDURAL_RULES: &[&str] = &["reachable-panic", "nondet-taint", "lock-order-cycle"];

/// Rule name of the diagnostics produced for suppressions that name an
/// interprocedural rule but no longer silence anything.
pub const STALE_SUPPRESSION: &str = "stale-suppression";

/// One reportable finding (post-suppression).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Finding {
    /// Rule that fired (or `bad-suppression`).
    pub rule: String,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human explanation.
    pub message: String,
    /// Interprocedural findings carry the call chain, root first, site
    /// last; token findings leave it empty.
    pub chain: Vec<dataflow::ChainStep>,
}

/// The outcome of linting a set of files.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Report {
    /// Findings not silenced by a suppression (baseline not yet applied).
    pub findings: Vec<Finding>,
    /// Suppressions naming an interprocedural rule that silenced
    /// nothing — reported (and failed) only under `--check-stale`.
    pub stale_suppressions: Vec<Finding>,
    /// Findings silenced by a reasoned suppression.
    pub suppressed: u64,
    /// Files scanned.
    pub files_scanned: u64,
    /// Non-test fns in the call graph.
    pub fns_analyzed: u64,
    /// Resolved call edges in the graph.
    pub call_edges: u64,
}

impl Report {
    /// Finding counts per (rule, path) — the shape the baseline compares.
    pub fn counts(&self) -> BTreeMap<Key, u64> {
        let mut m = BTreeMap::new();
        for f in &self.findings {
            *m.entry((f.rule.clone(), f.path.clone())).or_insert(0) += 1;
        }
        m
    }
}

/// Runs the *token* rules on one in-memory source file (the
/// interprocedural passes need the whole workspace; see
/// [`analyze_sources`]). `path` is the workspace-relative path (forward
/// slashes) the rule scopes match against.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let ctx = FileContext::classify(path, &lexed);
    let sup = suppress::extract(&lexed);
    let mut out = Vec::new();
    push_suppression_findings(&sup, path, &mut out);
    for raw in rules::check_file(&ctx, &lexed) {
        if !sup.silences(raw.rule, raw.line) {
            out.push(Finding {
                rule: raw.rule.to_string(),
                path: path.to_string(),
                line: raw.line,
                message: raw.message,
                chain: Vec::new(),
            });
        }
    }
    out.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(&b.rule)));
    out
}

/// Malformed or unknown-rule suppressions are findings themselves,
/// never silenceable.
fn push_suppression_findings(sup: &suppress::Suppressions, path: &str, out: &mut Vec<Finding>) {
    for bad in &sup.bad {
        out.push(Finding {
            rule: suppress::BAD_SUPPRESSION.to_string(),
            path: path.to_string(),
            line: bad.line,
            message: bad.detail.clone(),
            chain: Vec::new(),
        });
    }
    // A suppression naming an unknown rule is a typo that would silently
    // not protect anything — reject it loudly.
    for s in &sup.active {
        for r in &s.rules {
            if !rules::is_known_rule(r) {
                out.push(Finding {
                    rule: suppress::BAD_SUPPRESSION.to_string(),
                    path: path.to_string(),
                    line: s.line,
                    message: format!(
                        "allow names unknown rule `{r}` (see --rules for the catalog)"
                    ),
                    chain: Vec::new(),
                });
            }
        }
    }
}

/// Number of token-rule findings a reasoned suppression silenced in `src`.
pub fn suppressed_count(path: &str, src: &str) -> u64 {
    let lexed = lexer::lex(src);
    let ctx = FileContext::classify(path, &lexed);
    let sup = suppress::extract(&lexed);
    rules::check_file(&ctx, &lexed)
        .into_iter()
        .filter(|raw| sup.silences(raw.rule, raw.line))
        .count() as u64
}

/// Runs both engines over a set of in-memory sources (workspace-relative
/// path -> contents). This is the full analysis behind
/// [`lint_workspace`]; the fixture tests drive it directly.
pub fn analyze_sources(files: &BTreeMap<String, String>) -> Report {
    let mut report = Report::default();
    let mut sups: BTreeMap<String, suppress::Suppressions> = BTreeMap::new();
    let mut parsed: BTreeMap<String, parse::ParsedFile> = BTreeMap::new();

    // Stage 1: lex once per file; token rules + suppression extraction
    // + item parse off the same token stream.
    for (path, src) in files {
        let lexed = lexer::lex(src);
        let ctx = FileContext::classify(path, &lexed);
        let sup = suppress::extract(&lexed);
        report.files_scanned += 1;
        push_suppression_findings(&sup, path, &mut report.findings);
        for raw in rules::check_file(&ctx, &lexed) {
            if sup.silences(raw.rule, raw.line) {
                report.suppressed += 1;
            } else {
                report.findings.push(Finding {
                    rule: raw.rule.to_string(),
                    path: path.clone(),
                    line: raw.line,
                    message: raw.message,
                    chain: Vec::new(),
                });
            }
        }
        parsed.insert(path.clone(), parse::parse_file(path, &lexed, &ctx));
        sups.insert(path.clone(), sup);
    }

    // Stage 2: call graph + the three interprocedural passes.
    let graph = Graph::build(&parsed);
    report.fns_analyzed = graph.fns.len() as u64;
    report.call_edges = graph.edge_count() as u64;
    let mut inter = panic_reachability(&graph, dataflow::HOT_PATH_ROOTS);
    inter.extend(nondet_taint(&graph, dataflow::OUTPUT_SINKS));
    inter.extend(lock_order(&graph));

    // Stage 3: suppression scoping — a finding is silenceable at its
    // source site or at its root. Track which interprocedural
    // suppressions earned their keep.
    let mut used: BTreeSet<(String, u32)> = BTreeSet::new();
    for f in inter {
        if silences_inter(&sups, &f, &mut used) {
            report.suppressed += 1;
        } else {
            report.findings.push(Finding {
                rule: f.rule.to_string(),
                path: f.path,
                line: f.line,
                message: f.message,
                chain: f.chain,
            });
        }
    }
    for (path, sup) in &sups {
        for s in &sup.active {
            let names_inter = s.rules.iter().any(|r| INTERPROCEDURAL_RULES.contains(&r.as_str()));
            if names_inter && !used.contains(&(path.clone(), s.line)) {
                report.stale_suppressions.push(Finding {
                    rule: STALE_SUPPRESSION.to_string(),
                    path: path.clone(),
                    line: s.line,
                    message: format!(
                        "suppression names `{}` but silences no interprocedural finding — the call edge it covered is dead; remove the allow",
                        s.rules.join(", "),
                    ),
                    chain: Vec::new(),
                });
            }
        }
    }

    report
        .findings
        .sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)).then(a.rule.cmp(&b.rule)));
    report.stale_suppressions.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    report
}

/// Whether any suppression silences interprocedural finding `f` —
/// at the source (its own rule name or the matching token rule's) or at
/// the root (interprocedural rule name only). Every matching
/// suppression that names an interprocedural rule is marked used.
fn silences_inter(
    sups: &BTreeMap<String, suppress::Suppressions>,
    f: &InterFinding,
    used: &mut BTreeSet<(String, u32)>,
) -> bool {
    let mut hit = false;
    if let Some(sup) = sups.get(&f.path) {
        for s in &sup.active {
            let covers = s.whole_file || s.covers.contains(&f.line);
            let named = s.rules.iter().any(|r| r == f.rule || Some(r.as_str()) == f.alias);
            if covers && named {
                hit = true;
                if s.rules.iter().any(|r| INTERPROCEDURAL_RULES.contains(&r.as_str())) {
                    used.insert((f.path.clone(), s.line));
                }
            }
        }
    }
    if let Some(sup) = sups.get(&f.root_path) {
        for s in &sup.active {
            let covers = s.whole_file || s.covers.contains(&f.root_line);
            if covers && s.rules.iter().any(|r| r == f.rule) {
                hit = true;
                used.insert((f.root_path.clone(), s.line));
            }
        }
    }
    hit
}

/// Lints every workspace source under `root` with both engines.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = BTreeMap::new();
    for abs in walk::workspace_sources(root)? {
        let rel = walk::relative_path(root, &abs);
        files.insert(rel, std::fs::read_to_string(&abs)?);
    }
    Ok(analyze_sources(&files))
}

/// The result of applying a baseline to a report.
#[derive(Clone, Debug, Serialize)]
pub struct Gated {
    /// (rule, path) pairs exceeding their tolerated counts.
    pub violations: Vec<Violation>,
    /// Findings absorbed by baseline entries.
    pub absorbed: u64,
    /// Baseline entries tolerating more than currently fires.
    pub stale: Vec<StaleEntry>,
}

/// Applies `baseline` to `report`.
pub fn gate(report: &Report, baseline: &Baseline) -> Gated {
    let counts = report.counts();
    let (violations, absorbed) = baseline.compare(&counts);
    let stale = baseline.stale(&counts);
    Gated { violations, absorbed, stale }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(files: &[(&str, &str)]) -> Report {
        let map: BTreeMap<String, String> =
            files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect();
        analyze_sources(&map)
    }

    #[test]
    fn suppressed_findings_are_counted_not_reported() {
        let src = "struct S { m: HashMap<u8, u8> } // alba-lint: allow(no-unordered-iteration) reason=\"lookup only\"\n";
        let path = "crates/serve/src/x.rs";
        assert!(lint_source(path, src).is_empty());
        assert_eq!(suppressed_count(path, src), 1);
    }

    #[test]
    fn reasonless_suppression_is_a_finding_and_does_not_silence() {
        let src = "struct S { m: HashMap<u8, u8> } // alba-lint: allow(no-unordered-iteration)\n";
        let found = lint_source("crates/serve/src/x.rs", src);
        let rules: Vec<&str> = found.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"bad-suppression"));
        assert!(rules.contains(&"no-unordered-iteration"), "unjustified allow must not silence");
    }

    #[test]
    fn unknown_rule_in_allow_is_rejected() {
        let src = "fn f() {} // alba-lint: allow(no-such-rule) reason=\"typo\"\n";
        let found = lint_source("crates/serve/src/x.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "bad-suppression");
        assert!(found[0].message.contains("no-such-rule"));
    }

    #[test]
    fn allow_file_silences_the_whole_file() {
        let src = "// alba-lint: allow-file(no-ambient-time) reason=\"the one sanctioned wall clock\"\nfn f() { let t = Instant::now(); }\nfn g() { let u = Instant::now(); }\n";
        assert!(lint_source("crates/obs/src/clock.rs", src).is_empty());
        assert_eq!(suppressed_count("crates/obs/src/clock.rs", src), 2);
    }

    #[test]
    fn interprocedural_findings_flow_through_analyze() {
        let report = analyze(&[(
            "crates/serve/src/service.rs",
            "impl FleetService { pub fn tick(&mut self) { helper(); } }\nfn helper() { None::<u8>.unwrap(); }\n",
        )]);
        let reach: Vec<&Finding> =
            report.findings.iter().filter(|f| f.rule == "reachable-panic").collect();
        assert_eq!(reach.len(), 1);
        assert_eq!(reach[0].line, 2);
        assert_eq!(reach[0].chain.len(), 3, "tick -> helper -> site");
        assert!(report.fns_analyzed >= 2 && report.call_edges >= 1);
    }

    #[test]
    fn inter_findings_suppressible_at_source_via_alias() {
        let report = analyze(&[(
            "crates/serve/src/service.rs",
            "impl FleetService { pub fn tick(&mut self) { helper(); } }\nfn helper() { None::<u8>.unwrap(); } // alba-lint: allow(no-panic-in-fallible) reason=\"demo: cannot be none\"\n",
        )]);
        assert!(
            !report.findings.iter().any(|f| f.rule == "reachable-panic"),
            "{:?}",
            report.findings
        );
        // The alias suppression is a token-rule allow, not an
        // interprocedural one — it cannot go stale here.
        assert!(report.stale_suppressions.is_empty());
    }

    #[test]
    fn inter_findings_suppressible_at_the_root() {
        let report = analyze(&[(
            "crates/serve/src/service.rs",
            "impl FleetService { pub fn tick(&mut self) { helper(); } } // alba-lint: allow(reachable-panic) reason=\"demo: panic is the supervisor contract\"\nfn helper() { None::<u8>.unwrap(); }\n",
        )]);
        assert!(!report.findings.iter().any(|f| f.rule == "reachable-panic"));
        assert!(report.stale_suppressions.is_empty(), "{:?}", report.stale_suppressions);
    }

    #[test]
    fn dead_edge_suppression_goes_stale() {
        // The allow names reachable-panic but nothing reaches the site.
        let report = analyze(&[(
            "crates/serve/src/service.rs",
            "fn dead() { None::<u8>.unwrap(); } // alba-lint: allow(reachable-panic, no-panic-in-fallible) reason=\"demo: was reachable once\"\n",
        )]);
        assert!(!report.findings.iter().any(|f| f.rule == "reachable-panic"));
        assert_eq!(report.stale_suppressions.len(), 1);
        assert_eq!(report.stale_suppressions[0].rule, STALE_SUPPRESSION);
    }

    #[test]
    fn gate_flags_new_findings_and_stale_entries() {
        let report = Report {
            findings: vec![Finding {
                rule: "no-ambient-time".into(),
                path: "crates/serve/src/x.rs".into(),
                line: 3,
                message: String::new(),
                chain: Vec::new(),
            }],
            ..Report::default()
        };
        // Empty baseline: the finding is a violation.
        let g = gate(&report, &Baseline::default());
        assert_eq!(g.violations.len(), 1);
        assert!(g.stale.is_empty());
        // Baseline covering it: absorbed; a dead entry shows up stale.
        let mut counts = report.counts();
        counts.insert(("no-panic-in-fallible".into(), "gone.rs".into()), 2);
        let b = Baseline::from_counts(&counts);
        let g = gate(&report, &b);
        assert!(g.violations.is_empty());
        assert_eq!(g.absorbed, 1);
        assert_eq!(g.stale.len(), 1);
        assert_eq!(g.stale[0].path, "gone.rs");
    }

    #[test]
    fn the_workspace_itself_is_clean() {
        // The real tree must lint clean with an empty baseline — this is
        // the compile-time version of the CI gate.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = lint_workspace(&root).unwrap();
        let msgs: Vec<String> = report
            .findings
            .iter()
            .chain(&report.stale_suppressions)
            .map(|f| format!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message))
            .collect();
        assert!(report.findings.is_empty(), "workspace findings:\n{}", msgs.join("\n"));
        assert!(report.stale_suppressions.is_empty(), "stale:\n{}", msgs.join("\n"));
        assert!(report.files_scanned > 50);
        assert!(report.suppressed > 0, "the justified suppressions must be exercised");
        // The interprocedural engine is actually engaged on the real
        // tree: the graph must be substantial.
        assert!(report.fns_analyzed > 300, "only {} fns", report.fns_analyzed);
        assert!(report.call_edges > 300, "only {} edges", report.call_edges);
    }
}
