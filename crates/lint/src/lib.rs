//! `alba-lint` — workspace determinism & robustness lints.
//!
//! Every subsystem in this workspace leans on one invariant: *no
//! ambient nondeterminism and no panics on fallible paths*, because
//! serve's equal-seed event logs, store's bit-for-bit warm restarts and
//! chaos's replayable fault drills are all byte-identity contracts. The
//! end-to-end tests tell you when that invariant breaks; this crate
//! tells you *where*, before anything runs.
//!
//! The tool is dependency-light by design: a hand-rolled lexer
//! ([`lexer`]) that correctly skips comments, string/char/raw-string
//! literals and lifetimes, a token-pattern rule engine ([`rules`]), a
//! mandatory-reason suppression syntax ([`suppress`]), and a
//! shrink-only baseline ([`baseline`]). Run it as
//! `cargo run -p alba-lint`; `scripts/ci.sh` runs it as a hard gate.

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod suppress;
pub mod walk;

use baseline::{Baseline, Key, StaleEntry, Violation};
use rules::FileContext;
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::Path;

/// One reportable finding (post-suppression).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Finding {
    /// Rule that fired (or `bad-suppression`).
    pub rule: String,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human explanation.
    pub message: String,
}

/// The outcome of linting a set of files.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Report {
    /// Findings not silenced by a suppression (baseline not yet applied).
    pub findings: Vec<Finding>,
    /// Findings silenced by a reasoned suppression.
    pub suppressed: u64,
    /// Files scanned.
    pub files_scanned: u64,
}

impl Report {
    /// Finding counts per (rule, path) — the shape the baseline compares.
    pub fn counts(&self) -> BTreeMap<Key, u64> {
        let mut m = BTreeMap::new();
        for f in &self.findings {
            *m.entry((f.rule.clone(), f.path.clone())).or_insert(0) += 1;
        }
        m
    }
}

/// Lints one in-memory source file. `path` is the workspace-relative
/// path (forward slashes) the rule scopes match against.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let ctx = FileContext::classify(path, &lexed);
    let sup = suppress::extract(&lexed);
    let mut out = Vec::new();
    // Malformed suppressions are findings themselves, never silenceable.
    for bad in &sup.bad {
        out.push(Finding {
            rule: suppress::BAD_SUPPRESSION.to_string(),
            path: path.to_string(),
            line: bad.line,
            message: bad.detail.clone(),
        });
    }
    // A suppression naming an unknown rule is a typo that would silently
    // not protect anything — reject it loudly.
    for s in &sup.active {
        for r in &s.rules {
            if !rules::is_known_rule(r) {
                out.push(Finding {
                    rule: suppress::BAD_SUPPRESSION.to_string(),
                    path: path.to_string(),
                    line: s.line,
                    message: format!(
                        "allow names unknown rule `{r}` (see --rules for the catalog)"
                    ),
                });
            }
        }
    }
    for raw in rules::check_file(&ctx, &lexed) {
        if !sup.silences(raw.rule, raw.line) {
            out.push(Finding {
                rule: raw.rule.to_string(),
                path: path.to_string(),
                line: raw.line,
                message: raw.message,
            });
        }
    }
    out.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(&b.rule)));
    out
}

/// Number of rule findings a reasoned suppression silenced in `src`.
pub fn suppressed_count(path: &str, src: &str) -> u64 {
    let lexed = lexer::lex(src);
    let ctx = FileContext::classify(path, &lexed);
    let sup = suppress::extract(&lexed);
    rules::check_file(&ctx, &lexed)
        .into_iter()
        .filter(|raw| sup.silences(raw.rule, raw.line))
        .count() as u64
}

/// Lints every workspace source under `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    for abs in walk::workspace_sources(root)? {
        let rel = walk::relative_path(root, &abs);
        let src = std::fs::read_to_string(&abs)?;
        report.files_scanned += 1;
        report.suppressed += suppressed_count(&rel, &src);
        report.findings.extend(lint_source(&rel, &src));
    }
    report
        .findings
        .sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)).then(a.rule.cmp(&b.rule)));
    Ok(report)
}

/// The result of applying a baseline to a report.
#[derive(Clone, Debug, Serialize)]
pub struct Gated {
    /// (rule, path) pairs exceeding their tolerated counts.
    pub violations: Vec<Violation>,
    /// Findings absorbed by baseline entries.
    pub absorbed: u64,
    /// Baseline entries tolerating more than currently fires.
    pub stale: Vec<StaleEntry>,
}

/// Applies `baseline` to `report`.
pub fn gate(report: &Report, baseline: &Baseline) -> Gated {
    let counts = report.counts();
    let (violations, absorbed) = baseline.compare(&counts);
    let stale = baseline.stale(&counts);
    Gated { violations, absorbed, stale }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppressed_findings_are_counted_not_reported() {
        let src = "struct S { m: HashMap<u8, u8> } // alba-lint: allow(no-unordered-iteration) reason=\"lookup only\"\n";
        let path = "crates/serve/src/x.rs";
        assert!(lint_source(path, src).is_empty());
        assert_eq!(suppressed_count(path, src), 1);
    }

    #[test]
    fn reasonless_suppression_is_a_finding_and_does_not_silence() {
        let src = "struct S { m: HashMap<u8, u8> } // alba-lint: allow(no-unordered-iteration)\n";
        let found = lint_source("crates/serve/src/x.rs", src);
        let rules: Vec<&str> = found.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"bad-suppression"));
        assert!(rules.contains(&"no-unordered-iteration"), "unjustified allow must not silence");
    }

    #[test]
    fn unknown_rule_in_allow_is_rejected() {
        let src = "fn f() {} // alba-lint: allow(no-such-rule) reason=\"typo\"\n";
        let found = lint_source("crates/serve/src/x.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "bad-suppression");
        assert!(found[0].message.contains("no-such-rule"));
    }

    #[test]
    fn allow_file_silences_the_whole_file() {
        let src = "// alba-lint: allow-file(no-ambient-time) reason=\"the one sanctioned wall clock\"\nfn f() { let t = Instant::now(); }\nfn g() { let u = Instant::now(); }\n";
        assert!(lint_source("crates/obs/src/clock.rs", src).is_empty());
        assert_eq!(suppressed_count("crates/obs/src/clock.rs", src), 2);
    }

    #[test]
    fn gate_flags_new_findings_and_stale_entries() {
        let report = Report {
            findings: vec![Finding {
                rule: "no-ambient-time".into(),
                path: "crates/serve/src/x.rs".into(),
                line: 3,
                message: String::new(),
            }],
            suppressed: 0,
            files_scanned: 1,
        };
        // Empty baseline: the finding is a violation.
        let g = gate(&report, &Baseline::default());
        assert_eq!(g.violations.len(), 1);
        assert!(g.stale.is_empty());
        // Baseline covering it: absorbed; a dead entry shows up stale.
        let mut counts = report.counts();
        counts.insert(("no-panic-in-fallible".into(), "gone.rs".into()), 2);
        let b = Baseline::from_counts(&counts);
        let g = gate(&report, &b);
        assert!(g.violations.is_empty());
        assert_eq!(g.absorbed, 1);
        assert_eq!(g.stale.len(), 1);
        assert_eq!(g.stale[0].path, "gone.rs");
    }

    #[test]
    fn the_workspace_itself_is_clean() {
        // The real tree must lint clean with an empty baseline — this is
        // the compile-time version of the CI gate.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = lint_workspace(&root).unwrap();
        let msgs: Vec<String> = report
            .findings
            .iter()
            .map(|f| format!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message))
            .collect();
        assert!(report.findings.is_empty(), "workspace findings:\n{}", msgs.join("\n"));
        assert!(report.files_scanned > 50);
        assert!(report.suppressed > 0, "the justified suppressions must be exercised");
    }
}
