//! Golden-file test for the interprocedural passes.
//!
//! `tests/fixtures/corpus/` is a miniature workspace (the paths inside
//! it mirror real crate paths, so the hot-path roots and output sinks
//! resolve) holding one reachable panic behind a three-edge chain, a
//! two-hop ambient-time taint, an AB/BA lock inversion, a suppressed
//! and a stale-suppressed site, and two false-positive traps (dynamic
//! dispatch, `#[cfg(test)]` code). The full report is compared against
//! `tests/fixtures/golden.json`; on drift the test prints the actual
//! JSON so the golden can be reviewed and updated deliberately.

use alba_lint::analyze_sources;
use std::collections::BTreeMap;
use std::path::Path;

fn load_corpus() -> BTreeMap<String, String> {
    let corpus = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/corpus");
    let mut files = BTreeMap::new();
    let mut stack = vec![corpus.clone()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("corpus dir") {
            let path = entry.expect("corpus entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path
                    .strip_prefix(&corpus)
                    .expect("under corpus")
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                files.insert(rel, std::fs::read_to_string(&path).expect("corpus file"));
            }
        }
    }
    files
}

/// The slice of the report the golden file pins down. Serialization
/// order is deterministic (struct field order, findings sorted by the
/// analyzer), so a byte comparison is meaningful.
#[derive(serde::Serialize)]
struct GoldenReport {
    findings: Vec<alba_lint::Finding>,
    stale_suppressions: Vec<alba_lint::Finding>,
    suppressed: u64,
}

#[test]
fn corpus_reproduces_the_golden_findings() {
    let report = analyze_sources(&load_corpus());

    let actual = serde_json::to_string_pretty(&GoldenReport {
        findings: report.findings,
        stale_suppressions: report.stale_suppressions,
        suppressed: report.suppressed,
    })
    .expect("render actual");
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, format!("{actual}\n")).expect("write golden.json");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).expect("golden.json");
    assert_eq!(
        golden.trim_end(),
        actual.trim_end(),
        "fixture report drifted from golden; actual:\n{actual}",
    );
}

#[test]
fn corpus_chains_and_cycles_have_the_advertised_shape() {
    let report = analyze_sources(&load_corpus());

    // The reachable panic is reported through at least three call edges
    // (>= 4 chain steps: root, two intermediates, site).
    let deep = report
        .findings
        .iter()
        .find(|f| f.rule == "reachable-panic")
        .expect("a reachable-panic finding");
    assert!(deep.chain.len() >= 4, "expected >= 3 call edges, got chain {:?}", deep.chain);
    assert_eq!(deep.chain.first().expect("chain root").func, "FleetService::tick");

    // Exactly one lock cycle, and it names both locks.
    let cycles: Vec<_> = report.findings.iter().filter(|f| f.rule == "lock-order-cycle").collect();
    assert_eq!(cycles.len(), 1, "cycles: {cycles:?}");
    assert!(cycles[0].message.contains("Pool::sched") && cycles[0].message.contains("Pool::stats"));

    // The ambient-time taint crossed two call hops into the sink writer.
    let taint =
        report.findings.iter().find(|f| f.rule == "nondet-taint").expect("a nondet-taint finding");
    assert!(taint.chain.len() >= 3, "expected a 2-hop taint chain, got {:?}", taint.chain);

    // Traps stay silent for the interprocedural passes: the panic in
    // `Loud::handle` is only callable through a trait object (token
    // rules still flag the site itself), and the `#[cfg(test)]`
    // look-alike root in service.rs never enters the graph at all.
    let inter: Vec<_> = report.findings.iter().filter(|f| f.rule == "reachable-panic").collect();
    assert!(
        inter.iter().all(|f| !f.path.ends_with("handler.rs")),
        "dynamic dispatch must not create call edges: {inter:?}",
    );
    assert!(
        report.findings.iter().all(|f| !f.path.ends_with("service.rs")),
        "test-module code must stay out of the graph: {:?}",
        report.findings,
    );

    // One suppression silenced its site; the stale one was caught.
    assert!(report.suppressed >= 1, "the tail_lane allow must count as suppressed");
    assert_eq!(report.stale_suppressions.len(), 1, "{:?}", report.stale_suppressions);
    assert_eq!(report.stale_suppressions[0].rule, "stale-suppression");
}
