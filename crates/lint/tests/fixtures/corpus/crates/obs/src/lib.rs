//! Fixture: the journaled-output sink (`Obs::event` is a configured
//! output sink for the nondeterminism-taint pass).

pub struct Obs;

impl Obs {
    pub fn event(&self, line: &str) {
        let _ = line;
    }
}
