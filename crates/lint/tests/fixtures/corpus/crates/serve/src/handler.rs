//! Fixture: the dynamic-dispatch false-positive trap.

pub trait Handler {
    fn handle(&self);
}

pub struct Loud;

impl Handler for Loud {
    fn handle(&self) {
        panic!("loud handler is never on the hot path");
    }
}

pub struct Quiet;

impl Handler for Quiet {
    fn handle(&self) {}
}
