//! Fixture: the hot-path root and a deep panic chain.
//!
//! `FleetService::tick` is a configured hot-path root; the chain
//! tick -> step_all -> process_batch -> head_lane -> unwrap is three
//! call edges deep and must surface as one `reachable-panic` finding
//! anchored at the unwrap in `shard.rs`.

use crate::clock;
use crate::handler::Handler;
use crate::shard::Shard;
use alba_obs::Obs;

pub struct FleetService {
    shards: Vec<Shard>,
}

impl FleetService {
    /// Hot-path root: one scheduler tick.
    pub fn tick(&mut self) {
        self.step_all();
    }

    fn step_all(&mut self) {
        for s in &mut self.shards {
            s.process_batch();
        }
    }

    /// Writes the journal AND (two hops away) reads the wall clock:
    /// a `nondet-taint` finding with the chain emit -> stamp_ms -> now.
    pub fn emit(&self, obs: &Obs) {
        let ts = clock::stamp_ms();
        let _ = ts;
        obs.event("tick");
    }

    /// Trap: dynamic dispatch. Two workspace types implement `handle`,
    /// so the call is ambiguous and must create NO edge — the panic in
    /// `Loud::handle` stays unreported.
    pub fn dispatch(&mut self, h: &dyn Handler) {
        self.step_all();
        h.handle();
    }
}

#[cfg(test)]
mod tests {
    /// Trap: same type/method name as the hot-path root, but test code
    /// never enters the call graph — the unwrap below must not fire.
    pub struct FleetService;

    impl FleetService {
        pub fn tick(&self) {
            let v: Vec<u32> = Vec::new();
            let _ = v.first().unwrap();
        }
    }
}
