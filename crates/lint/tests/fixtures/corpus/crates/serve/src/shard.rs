//! Fixture: panic sites at the end of the hot-path chain, one bare
//! (a finding), one suppressed at source, and one stale suppression.

pub struct Shard {
    lanes: Vec<u64>,
}

impl Shard {
    pub fn process_batch(&mut self) {
        let head = self.head_lane();
        let tail = self.tail_lane();
        let _ = (head, tail);
    }

    /// The bare site: reachable from `FleetService::tick` through
    /// three call edges.
    fn head_lane(&self) -> u64 {
        *self.lanes.first().unwrap()
    }

    /// Suppressed at source — counts as suppressed, not a finding, and
    /// the suppression is live (not stale).
    fn tail_lane(&self) -> u64 {
        // alba-lint: allow(reachable-panic) reason="lanes is non-empty by construction"
        *self.lanes.last().unwrap()
    }

    /// Stale: this allow names an interprocedural rule but silences
    /// nothing — `--check-stale` must flag it.
    fn lane_count(&self) -> usize {
        // alba-lint: allow(lock-order-cycle) reason="grandfathered from the v1 sweep"
        self.lanes.len()
    }
}
