//! Fixture: an ambient-time source one call away from the sink writer.

/// Reads the wall clock — a nondeterminism source when its caller
/// also writes journaled output.
pub fn stamp_ms() -> u64 {
    let t = std::time::Instant::now();
    let _ = t;
    0
}
