//! Fixture: an AB/BA lock-order inversion.
//!
//! `reschedule` holds `sched` while `bump_stats` takes `stats`;
//! `report` takes them in the opposite order. The lock-acquisition
//! graph has the cycle Pool::sched -> Pool::stats -> Pool::sched.

use std::sync::Mutex;

pub struct Pool {
    sched: Mutex<u32>,
    stats: Mutex<u32>,
}

impl Pool {
    pub fn reschedule(&self) {
        let _guard = self.sched.lock();
        self.bump_stats();
    }

    fn bump_stats(&self) {
        let _s = self.stats.lock();
    }

    pub fn report(&self) {
        let _s = self.stats.lock();
        let _g = self.sched.lock();
    }
}
