//! Per-run telemetry generation.
//!
//! [`generate_run`] turns a [`RunConfig`] into one [`NodeTelemetry`] per
//! allocated node: a 1 Hz multivariate time series over the system's metric
//! catalog, shaped by the application signature, optional anomaly injection
//! on the first node, run/node-level variability, sensor noise, dropped
//! samples and init/termination transients — the effects the paper's
//! preprocessing pipeline (Sec. IV-E.1) exists to handle.

use alba_data::{MetricKind, MultiSeries, SampleMeta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::anomaly::Injection;
use crate::apps::Application;
use crate::metrics::{MetricCatalog, MetricGroup};
use crate::signature::{build_signature, SignatureConfig};

/// Class label used for non-anomalous samples.
pub const HEALTHY_LABEL: &str = "healthy";

/// Configuration of one application run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunConfig {
    /// The application being executed.
    pub app: Application,
    /// Input deck index (0-based).
    pub input_deck: usize,
    /// Number of allocated compute nodes.
    pub node_count: usize,
    /// Steady-state duration in seconds (samples at 1 Hz).
    pub duration_s: usize,
    /// Anomaly injected on the first allocated node, if any.
    pub injection: Option<Injection>,
    /// Campaign-unique run identifier.
    pub run_id: usize,
    /// RNG seed for this run's stochastic components.
    pub seed: u64,
}

/// Telemetry collected on one node during one run, plus its ground truth.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NodeTelemetry {
    /// The collected multivariate time series.
    pub series: MultiSeries,
    /// Sample provenance.
    pub meta: SampleMeta,
    /// Ground-truth label: [`HEALTHY_LABEL`] or an anomaly label.
    pub label: String,
}

/// Stochastic knobs of the generator.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Std-dev of the run-level multiplicative factor applied to every
    /// latent group (run-to-run variability; higher on production systems).
    pub run_sigma: f64,
    /// Std-dev of the node-level multiplicative factor.
    pub node_sigma: f64,
    /// Multiplier on each metric's own per-sample noise floor.
    pub sample_noise: f64,
    /// Probability that a metric sample is lost (reported as NaN).
    pub missing_prob: f64,
    /// Fraction of the run spent in each of the init and termination
    /// transients (trimmed again by preprocessing).
    pub transient_frac: f64,
    /// Expected number of benign OS-jitter bursts per 600 s of runtime.
    pub jitter_rate: f64,
}

impl NoiseConfig {
    /// Testbed-grade variability (Volta).
    pub fn testbed() -> Self {
        Self {
            run_sigma: 0.05,
            node_sigma: 0.02,
            sample_noise: 1.0,
            missing_prob: 0.004,
            transient_frac: 0.08,
            jitter_rate: 1.0,
        }
    }

    /// Production-grade variability (Eclipse): heavier run-to-run variation
    /// from shared networks/filesystems and co-located tenants, which is why
    /// the Eclipse diagnosis task starts from a much lower F1 (0.72 vs 0.86).
    pub fn production() -> Self {
        Self {
            run_sigma: 0.13,
            node_sigma: 0.05,
            sample_noise: 1.6,
            missing_prob: 0.008,
            transient_frac: 0.08,
            jitter_rate: 3.0,
        }
    }
}

/// Standard normal via Box–Muller.
fn randn<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Smooth 0→1 ramp used for transients.
fn smoothstep(x: f64) -> f64 {
    let x = x.clamp(0.0, 1.0);
    x * x * (3.0 - 2.0 * x)
}

/// Generates the telemetry for every node of one run.
///
/// Deterministic for a given `(config, catalog, signature config, noise)`:
/// all randomness derives from `config.seed`.
pub fn generate_run(
    config: &RunConfig,
    catalog: &MetricCatalog,
    sig_cfg: &SignatureConfig,
    noise: &NoiseConfig,
) -> Vec<NodeTelemetry> {
    assert!(config.node_count >= 1, "a run needs at least one node");
    assert!(config.duration_s >= 10, "runs shorter than 10 s are not meaningful");
    let signature = build_signature(&config.app, config.input_deck, config.node_count, sig_cfg);
    let mut rng = StdRng::seed_from_u64(config.seed);

    let n_groups = MetricGroup::ALL.len();
    // Run-level factors shared by every node (same job, same inputs).
    let run_factor: Vec<f64> =
        (0..n_groups).map(|_| (1.0 + noise.run_sigma * randn(&mut rng)).max(0.05)).collect();

    let transient = ((config.duration_s as f64 * noise.transient_frac) as usize).max(2);
    let total = config.duration_s + 2 * transient;
    let duration = config.duration_s as f64;

    // Benign OS jitter bursts (shared schedule noise, node-specific draws).
    let expected_bursts = noise.jitter_rate * total as f64 / 600.0;

    let mut out = Vec::with_capacity(config.node_count);
    for node in 0..config.node_count {
        let mut node_rng = StdRng::seed_from_u64(config.seed ^ (0x9E37 + node as u64 * 0x51_7CC1));
        let node_factor: Vec<f64> = (0..n_groups)
            .map(|_| (1.0 + noise.node_sigma * randn(&mut node_rng)).max(0.05))
            .collect();

        // Jitter burst windows for this node.
        let n_bursts = {
            let mut n = expected_bursts.floor() as usize;
            if node_rng.gen::<f64>() < expected_bursts.fract() {
                n += 1;
            }
            n
        };
        let bursts: Vec<(usize, usize)> = (0..n_bursts)
            .map(|_| {
                let start = node_rng.gen_range(0..total.max(1));
                let len = node_rng.gen_range(2..8);
                (start, (start + len).min(total))
            })
            .collect();

        let mut series = MultiSeries::new(catalog.defs());
        // Cumulative counter state per metric.
        let mut counters = vec![0.0f64; catalog.len()];
        let mut row = vec![0.0f64; catalog.len()];

        for t in 0..total {
            let ts = t as f64;
            // Steady-state time coordinate for the signature (transients map
            // to the boundary of the steady window).
            let steady_t = (ts - transient as f64).clamp(0.0, duration);
            let mut groups = signature.eval(steady_t);

            // Init/termination envelope on activity groups; memory fills in,
            // the filesystem bursts at start (input read) and end (output).
            let env = if t < transient {
                smoothstep(ts / transient as f64)
            } else if t >= total - transient {
                1.0 - smoothstep((ts - (total - transient) as f64) / transient as f64)
            } else {
                1.0
            };
            for g in [
                MetricGroup::CpuUser,
                MetricGroup::CacheMiss,
                MetricGroup::CacheRef,
                MetricGroup::MemBandwidth,
                MetricGroup::NetTx,
                MetricGroup::NetRx,
                MetricGroup::WriteBack,
            ] {
                groups[g.index()] *= env;
            }
            if t < transient {
                groups[MetricGroup::FsRead.index()] += 25.0 * (1.0 - env);
                groups[MetricGroup::MemUsed.index()] *= 0.3 + 0.7 * env;
            } else if t >= total - transient {
                groups[MetricGroup::FsWrite.index()] += 30.0 * (1.0 - env);
            }

            // Benign jitter: kernel housekeeping bursts.
            if bursts.iter().any(|&(s, e)| t >= s && t < e) {
                groups[MetricGroup::CpuSystem.index()] += 0.15;
                groups[MetricGroup::PageFaults.index()] += 4.0;
            }

            // Run/node-level variability.
            for (gi, v) in groups.iter_mut().enumerate() {
                *v *= run_factor[gi] * node_factor[gi];
            }

            // Anomaly on the first allocated node only, during steady state.
            if node == 0 {
                if let Some(inj) = &config.injection {
                    if t >= transient && t < total - transient {
                        inj.apply(&mut groups, steady_t, duration);
                    }
                }
            }

            // Map latent groups to concrete metrics.
            for (mi, m) in catalog.metrics.iter().enumerate() {
                let latent = groups[m.group.index()].max(0.0);
                let noisy = latent
                    * (1.0 + m.noise_rel * noise.sample_noise * randn(&mut node_rng))
                    + m.offset;
                let value = (m.gain * noisy).max(0.0);
                row[mi] = match m.def.kind {
                    MetricKind::Gauge => value,
                    MetricKind::Counter => {
                        counters[mi] += value;
                        counters[mi]
                    }
                };
                if node_rng.gen::<f64>() < noise.missing_prob {
                    row[mi] = f64::NAN;
                }
            }
            series.push_sample(&row);
        }

        let (label, intensity) = match (&config.injection, node) {
            (Some(inj), 0) => (inj.kind.label().to_string(), inj.intensity_pct),
            _ => (HEALTHY_LABEL.to_string(), 0),
        };
        out.push(NodeTelemetry {
            series,
            meta: SampleMeta {
                app: config.app.name.clone(),
                input_deck: config.input_deck,
                run_id: config.run_id,
                node,
                node_count: config.node_count,
                intensity_pct: intensity,
            },
            label,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::AnomalyKind;
    use crate::apps::find_application;
    use crate::system::SystemSpec;

    fn run_cfg(injection: Option<Injection>, seed: u64) -> RunConfig {
        RunConfig {
            app: find_application("BT").unwrap(),
            input_deck: 0,
            node_count: 4,
            duration_s: 120,
            injection,
            run_id: 1,
            seed,
        }
    }

    fn catalog() -> MetricCatalog {
        MetricCatalog::build(&SystemSpec::volta(), 3)
    }

    /// Bitwise series equality (NaN-aware: dropped samples are NaN).
    fn series_eq(a: &[Vec<f64>], b: &[Vec<f64>]) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| {
                x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
            })
    }

    #[test]
    fn generates_one_series_per_node() {
        let out = generate_run(
            &run_cfg(None, 42),
            &catalog(),
            &SignatureConfig::default(),
            &NoiseConfig::testbed(),
        );
        assert_eq!(out.len(), 4);
        for (i, n) in out.iter().enumerate() {
            assert_eq!(n.meta.node, i);
            assert_eq!(n.label, HEALTHY_LABEL);
            n.series.validate().unwrap();
            assert!(n.series.len() > 120, "includes transients");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_run(
            &run_cfg(None, 7),
            &catalog(),
            &SignatureConfig::default(),
            &NoiseConfig::testbed(),
        );
        let b = generate_run(
            &run_cfg(None, 7),
            &catalog(),
            &SignatureConfig::default(),
            &NoiseConfig::testbed(),
        );
        assert!(series_eq(&a[2].series.values, &b[2].series.values));
    }

    #[test]
    fn seeds_change_the_data() {
        let a = generate_run(
            &run_cfg(None, 7),
            &catalog(),
            &SignatureConfig::default(),
            &NoiseConfig::testbed(),
        );
        let b = generate_run(
            &run_cfg(None, 8),
            &catalog(),
            &SignatureConfig::default(),
            &NoiseConfig::testbed(),
        );
        assert!(!series_eq(&a[0].series.values, &b[0].series.values));
    }

    #[test]
    fn anomaly_labels_only_first_node() {
        let inj = Injection::new(AnomalyKind::MemLeak, 100);
        let out = generate_run(
            &run_cfg(Some(inj), 42),
            &catalog(),
            &SignatureConfig::default(),
            &NoiseConfig::testbed(),
        );
        assert_eq!(out[0].label, "memleak");
        assert_eq!(out[0].meta.intensity_pct, 100);
        for n in &out[1..] {
            assert_eq!(n.label, HEALTHY_LABEL);
            assert_eq!(n.meta.intensity_pct, 0);
        }
    }

    #[test]
    fn counters_are_monotone_where_present() {
        let cat = catalog();
        let out = generate_run(
            &run_cfg(None, 11),
            &cat,
            &SignatureConfig::default(),
            &NoiseConfig::testbed(),
        );
        for (mi, m) in cat.metrics.iter().enumerate() {
            if m.def.kind != MetricKind::Counter {
                continue;
            }
            let series = out[0].series.metric(mi);
            let mut last = f64::NEG_INFINITY;
            for &v in series {
                if v.is_nan() {
                    continue;
                }
                assert!(v >= last, "{} decreased", m.def.name);
                last = v;
            }
        }
    }

    #[test]
    fn missing_values_appear_at_configured_rate() {
        let mut noise = NoiseConfig::testbed();
        noise.missing_prob = 0.05;
        let out = generate_run(&run_cfg(None, 5), &catalog(), &SignatureConfig::default(), &noise);
        let total: usize = out[0].series.values.iter().map(Vec::len).sum();
        let nans: usize =
            out[0].series.values.iter().map(|s| s.iter().filter(|v| v.is_nan()).count()).sum();
        let rate = nans as f64 / total as f64;
        assert!((0.02..0.09).contains(&rate), "nan rate {rate}");
    }

    #[test]
    fn memleak_run_shows_memory_ramp_on_injected_node() {
        let cat = catalog();
        let inj = Injection::new(AnomalyKind::MemLeak, 100);
        let out = generate_run(
            &run_cfg(Some(inj), 9),
            &cat,
            &SignatureConfig::default(),
            &NoiseConfig::testbed(),
        );
        // Find a MemUsed gauge.
        let mi = cat
            .metrics
            .iter()
            .position(|m| m.group == MetricGroup::MemUsed && m.def.kind == MetricKind::Gauge)
            .expect("MemUsed gauge in catalog");
        let anomalous = out[0].series.metric(mi);
        let healthy = out[1].series.metric(mi);
        let last_q = |s: &[f64]| {
            let n = s.len();
            s[3 * n / 4..].iter().filter(|v| v.is_finite()).sum::<f64>()
                / s[3 * n / 4..].iter().filter(|v| v.is_finite()).count() as f64
        };
        assert!(
            last_q(anomalous) > 1.5 * last_q(healthy),
            "leak node must end with far more used memory"
        );
    }
}
