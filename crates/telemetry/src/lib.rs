//! # alba-telemetry
//!
//! Synthetic HPC telemetry substrate for the ALBADross reproduction.
//!
//! The paper collects LDMS telemetry on two Sandia systems while running
//! real applications and injecting HPAS anomalies; neither the systems nor
//! the data are available, so this crate simulates the whole data-collection
//! stack at configurable scale:
//!
//! * [`system`] — the Volta and Eclipse machine specs,
//! * [`apps`] — the application catalogs of Tables I and II,
//! * [`metrics`] — an LDMS-like metric catalog driven by latent
//!   utilisation groups,
//! * [`signature`] — per-(application, input deck, allocation) healthy
//!   resource-usage signatures,
//! * [`anomaly`] — HPAS-style anomaly effect models (Table III),
//! * [`generator`] — 1 Hz multivariate time series per node per run,
//! * [`campaign`] — whole-campaign dataset assembly with the paper's
//!   10 % anomaly ratio.

#![warn(missing_docs)]

pub mod anomaly;
pub mod apps;
pub mod campaign;
pub mod generator;
pub mod metrics;
pub mod signature;
pub mod system;

pub use anomaly::{eclipse_intensities, AnomalyKind, Injection, VOLTA_INTENSITIES};
pub use apps::{eclipse_catalog, find_application, volta_catalog, AppClass, Application};
pub use campaign::{class_names, enforce_anomaly_ratio, CampaignConfig, RunShape, Scale};
pub use generator::{generate_run, NodeTelemetry, NoiseConfig, RunConfig, HEALTHY_LABEL};
pub use metrics::{MetricCatalog, MetricGroup, SimMetric};
pub use signature::{build_signature, GroupPattern, Signature, SignatureConfig};
pub use system::SystemSpec;
