//! HPAS-style synthetic performance anomalies (paper Table III + Sec. IV-C).
//!
//! The open-source HPC Performance Anomaly Suite (HPAS) replicates the most
//! common performance anomalies by running a stressor process next to the
//! application. We model each stressor's *effect* on the latent metric-group
//! signals of the node it runs on:
//!
//! * `cpuoccupy` — an arithmetic-heavy orphan process steals CPU cycles.
//! * `cachecopy` — repeated cache-sized read/write sweeps evict the
//!   application's working set.
//! * `membw` — uncached (non-temporal) memory writes saturate memory
//!   bandwidth.
//! * `memleak` — a process increasingly allocates and fills memory.
//! * `dial` — reduces effective CPU frequency, slowing every core.
//!
//! As in the paper's experiments, anomalies run on the *first allocated
//! node* of a multi-node job, at one of several intensities (2–100 % on
//! Volta; a 2–3 setting subset on Eclipse).

use crate::metrics::MetricGroup;
use serde::{Deserialize, Serialize};

/// The five HPAS anomaly types used in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnomalyKind {
    /// CPU-intensive orphan process (arithmetic operations).
    CpuOccupy,
    /// Cache contention (cache read & write sweeps).
    CacheCopy,
    /// Memory bandwidth contention (uncached memory writes).
    MemBw,
    /// Memory leakage (increasingly allocate & fill memory).
    MemLeak,
    /// CPU frequency dialing.
    Dial,
}

impl AnomalyKind {
    /// All anomaly kinds in stable order (class ids follow this order,
    /// offset by one for the `healthy` class).
    pub const ALL: [AnomalyKind; 5] = [
        AnomalyKind::CpuOccupy,
        AnomalyKind::CacheCopy,
        AnomalyKind::MemBw,
        AnomalyKind::MemLeak,
        AnomalyKind::Dial,
    ];

    /// HPAS stressor name, used as the class label string.
    pub fn label(self) -> &'static str {
        match self {
            AnomalyKind::CpuOccupy => "cpuoccupy",
            AnomalyKind::CacheCopy => "cachecopy",
            AnomalyKind::MemBw => "membw",
            AnomalyKind::MemLeak => "memleak",
            AnomalyKind::Dial => "dial",
        }
    }

    /// Behaviour description (Table III).
    pub fn behavior(self) -> &'static str {
        match self {
            AnomalyKind::CpuOccupy => "Arithmetic operations",
            AnomalyKind::CacheCopy => "Cache read & write",
            AnomalyKind::MemBw => "Uncached memory write",
            AnomalyKind::MemLeak => "Increasingly allocate & fill memory",
            AnomalyKind::Dial => "Reduce effective CPU frequency",
        }
    }

    /// Parses a label back into a kind.
    pub fn from_label(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.label() == label)
    }
}

/// An anomaly injection: kind plus intensity in percent (2–100).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Injection {
    /// Which stressor runs.
    pub kind: AnomalyKind,
    /// Stressor intensity in percent of the HPAS maximum setting.
    pub intensity_pct: u32,
}

impl Injection {
    /// Creates an injection, validating the intensity.
    ///
    /// # Panics
    /// Panics when `intensity_pct` is 0 or greater than 100.
    pub fn new(kind: AnomalyKind, intensity_pct: u32) -> Self {
        assert!(
            (1..=100).contains(&intensity_pct),
            "intensity must be within 1..=100, got {intensity_pct}"
        );
        Self { kind, intensity_pct }
    }

    /// Intensity as a fraction in (0, 1].
    pub fn intensity(&self) -> f64 {
        f64::from(self.intensity_pct) / 100.0
    }

    /// Effective effect magnitude in (0, 1].
    ///
    /// HPAS intensity knobs control stressor *configuration* (buffer sizes,
    /// duty cycles), whose interference impact is strongly sublinear: even
    /// the 2 % setting perturbs shared resources noticeably. We model the
    /// response as `intensity^0.33` (2 % → 0.27, 20 % → 0.59, 100 % → 1.0),
    /// which reproduces the paper's observation that most anomalous samples
    /// are diagnosable while the lowest settings remain the hardest.
    pub fn effect(&self) -> f64 {
        self.intensity().powf(0.33)
    }

    /// Applies the anomaly's effect to the latent group vector `groups` at
    /// time `t` out of a total run length `duration` (both seconds).
    ///
    /// `groups` holds healthy latent values in [`MetricGroup::ALL`] order.
    pub fn apply(&self, groups: &mut [f64; MetricGroup::ALL.len()], t: f64, duration: f64) {
        let i = self.effect();
        let g = |g: MetricGroup| g.index();
        match self.kind {
            AnomalyKind::CpuOccupy => {
                // The stressor's spinning threads occupy an `i` fraction of
                // the node's cores outright: user time saturates toward 1
                // regardless of the application (an app-agnostic signature),
                // kernel time rises from scheduler churn, and the
                // application's throughput-driven signals shrink because it
                // lost cores.
                let user = groups[g(MetricGroup::CpuUser)];
                groups[g(MetricGroup::CpuUser)] = (user + 0.95 * i * (1.0 - user)).min(0.995);
                groups[g(MetricGroup::CpuIdle)] =
                    (groups[g(MetricGroup::CpuIdle)] * (1.0 - 0.95 * i)).max(0.002);
                groups[g(MetricGroup::CpuSystem)] += 0.18 * i;
                groups[g(MetricGroup::PageFaults)] += 15.0 * i;
                groups[g(MetricGroup::Power)] += 55.0 * i;
                let slow = 1.0 - 0.35 * i;
                for tg in [
                    MetricGroup::NetTx,
                    MetricGroup::NetRx,
                    MetricGroup::FsRead,
                    MetricGroup::FsWrite,
                    MetricGroup::CacheRef,
                ] {
                    groups[g(tg)] *= slow;
                }
            }
            AnomalyKind::CacheCopy => {
                // Cache sweeps evict the application's working set: misses
                // and references climb far beyond any healthy level at full
                // intensity, and evicted lines travel to memory.
                groups[g(MetricGroup::CacheMiss)] += 170.0 * i;
                groups[g(MetricGroup::CacheRef)] += 70.0 * i;
                groups[g(MetricGroup::MemBandwidth)] += 10.0 * i;
                groups[g(MetricGroup::CpuUser)] =
                    (groups[g(MetricGroup::CpuUser)] + 0.05 * i).min(0.995);
                groups[g(MetricGroup::Power)] += 20.0 * i;
                let slow = 1.0 - 0.22 * i;
                for tg in [MetricGroup::NetTx, MetricGroup::NetRx, MetricGroup::FsWrite] {
                    groups[g(tg)] *= slow;
                }
            }
            AnomalyKind::MemBw => {
                // Non-temporal store streams saturate the memory controller
                // and the write-back path.
                groups[g(MetricGroup::MemBandwidth)] += 45.0 * i;
                groups[g(MetricGroup::WriteBack)] += 95.0 * i;
                groups[g(MetricGroup::CacheMiss)] += 25.0 * i;
                groups[g(MetricGroup::Power)] += 30.0 * i;
                let slow = 1.0 - 0.30 * i;
                for tg in [
                    MetricGroup::NetTx,
                    MetricGroup::NetRx,
                    MetricGroup::CacheRef,
                    MetricGroup::FsWrite,
                ] {
                    groups[g(tg)] *= slow;
                }
            }
            AnomalyKind::MemLeak => {
                // Monotone allocation: used memory ramps over the run, free
                // memory collapses, and reclaim pressure shows up as page
                // faults late in the run.
                let progress = (t / duration.max(1.0)).clamp(0.0, 1.0);
                let leaked = 30.0 * i * progress;
                groups[g(MetricGroup::MemUsed)] += leaked;
                groups[g(MetricGroup::MemFree)] =
                    (groups[g(MetricGroup::MemFree)] - leaked).max(0.5);
                if progress > 0.6 {
                    groups[g(MetricGroup::PageFaults)] += 25.0 * i * (progress - 0.6) / 0.4;
                }
            }
            AnomalyKind::Dial => {
                // Frequency capping: utilisation stays high (the work just
                // takes longer), so the visible effects are confined to the
                // frequency/power counters and a throughput slowdown — the
                // subtlest of the five signatures, which is why `dial` is
                // the most-queried anomaly in Fig. 4.
                // Frequency dips are partially masked by healthy turbo
                // variation (the signature gives Frequency a ±6 % spread),
                // which is what keeps `dial` the hardest anomaly to diagnose
                // on Volta, exactly as the paper observes.
                groups[g(MetricGroup::Frequency)] *= 1.0 - 0.42 * i;
                groups[g(MetricGroup::Power)] =
                    (groups[g(MetricGroup::Power)] - 60.0 * i).max(80.0);
                let slow = 1.0 - 0.35 * i;
                for tg in [
                    MetricGroup::NetTx,
                    MetricGroup::NetRx,
                    MetricGroup::FsRead,
                    MetricGroup::FsWrite,
                    MetricGroup::CacheRef,
                    MetricGroup::CacheMiss,
                    MetricGroup::MemBandwidth,
                    MetricGroup::WriteBack,
                ] {
                    groups[g(tg)] *= slow;
                }
            }
        }
    }
}

/// The Volta campaign's six anomaly intensities (Sec. IV-C).
pub const VOLTA_INTENSITIES: [u32; 6] = [2, 5, 10, 20, 50, 100];

/// The Eclipse campaign's per-kind intensity settings (2–3 each, Sec. IV-C).
pub fn eclipse_intensities(kind: AnomalyKind) -> &'static [u32] {
    match kind {
        AnomalyKind::CpuOccupy => &[20, 50, 100],
        AnomalyKind::CacheCopy => &[50, 100],
        AnomalyKind::MemBw => &[20, 50, 100],
        AnomalyKind::MemLeak => &[50, 100],
        AnomalyKind::Dial => &[20, 50, 100],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::find_application;
    use crate::signature::{build_signature, SignatureConfig};

    fn healthy_groups(t: f64) -> [f64; MetricGroup::ALL.len()] {
        let sig =
            build_signature(&find_application("BT").unwrap(), 0, 4, &SignatureConfig::default());
        sig.eval(t)
    }

    #[test]
    fn labels_round_trip() {
        for k in AnomalyKind::ALL {
            assert_eq!(AnomalyKind::from_label(k.label()), Some(k));
        }
        assert_eq!(AnomalyKind::from_label("healthy"), None);
    }

    #[test]
    #[should_panic(expected = "intensity must be within")]
    fn zero_intensity_rejected() {
        let _ = Injection::new(AnomalyKind::Dial, 0);
    }

    #[test]
    fn cpuoccupy_steals_idle_cycles() {
        let mut g = healthy_groups(100.0);
        let before_user = g[MetricGroup::CpuUser.index()];
        let before_idle = g[MetricGroup::CpuIdle.index()];
        Injection::new(AnomalyKind::CpuOccupy, 100).apply(&mut g, 100.0, 600.0);
        assert!(g[MetricGroup::CpuUser.index()] > before_user);
        assert!(g[MetricGroup::CpuIdle.index()] < before_idle);
        assert!(g[MetricGroup::CpuUser.index()] <= 1.0);
    }

    #[test]
    fn cachecopy_inflates_misses() {
        let mut g = healthy_groups(50.0);
        let before = g[MetricGroup::CacheMiss.index()];
        Injection::new(AnomalyKind::CacheCopy, 50).apply(&mut g, 50.0, 600.0);
        assert!(g[MetricGroup::CacheMiss.index()] > before + 20.0);
    }

    #[test]
    fn membw_saturates_bandwidth_and_writeback() {
        let mut g = healthy_groups(50.0);
        let bw = g[MetricGroup::MemBandwidth.index()];
        let wb = g[MetricGroup::WriteBack.index()];
        Injection::new(AnomalyKind::MemBw, 100).apply(&mut g, 50.0, 600.0);
        assert!(g[MetricGroup::MemBandwidth.index()] > bw + 20.0);
        assert!(g[MetricGroup::WriteBack.index()] > wb + 40.0);
    }

    #[test]
    fn memleak_ramps_with_progress() {
        let mut early = healthy_groups(60.0);
        let mut late = healthy_groups(540.0);
        let inj = Injection::new(AnomalyKind::MemLeak, 100);
        inj.apply(&mut early, 60.0, 600.0);
        inj.apply(&mut late, 540.0, 600.0);
        let used = MetricGroup::MemUsed.index();
        assert!(late[used] > early[used] + 15.0, "leak must grow over the run");
        assert!(late[MetricGroup::MemFree.index()] >= 0.5);
        assert!(late[MetricGroup::PageFaults.index()] > early[MetricGroup::PageFaults.index()]);
    }

    #[test]
    fn dial_is_subtler_at_low_intensity() {
        let base = healthy_groups(100.0);
        let mut low = base;
        let mut high = base;
        Injection::new(AnomalyKind::Dial, 2).apply(&mut low, 100.0, 600.0);
        Injection::new(AnomalyKind::Dial, 100).apply(&mut high, 100.0, 600.0);
        // Low intensity moves every non-frequency/power group by a modest
        // amount (the sublinear effect response keeps 2 % detectable but
        // far weaker than 100 %) — the subtlety that makes `dial` the
        // hardest anomaly to diagnose.
        for (gi, g) in MetricGroup::ALL.iter().enumerate() {
            if matches!(g, MetricGroup::Frequency | MetricGroup::Power) {
                continue;
            }
            let rel_low = (low[gi] - base[gi]).abs() / base[gi].max(1e-9);
            let rel_high = (high[gi] - base[gi]).abs() / base[gi].max(1e-9);
            assert!(rel_low < 0.15, "{g:?} moved {rel_low} at 2%");
            assert!(rel_low <= rel_high + 1e-12, "{g:?} low {rel_low} > high {rel_high}");
        }
        // The frequency dip at 2% stays within the healthy turbo spread
        // (±6 %) plus a small margin, so it cannot act as a perfect tell.
        let f = MetricGroup::Frequency.index();
        assert!(low[f] > 0.88 * base[f], "2% dial frequency {} vs {}", low[f], base[f]);
    }

    #[test]
    fn dial_slows_throughput_at_full_intensity() {
        let base = healthy_groups(100.0);
        let mut dialed = base;
        Injection::new(AnomalyKind::Dial, 100).apply(&mut dialed, 100.0, 600.0);
        assert!(
            dialed[MetricGroup::Frequency.index()] < 0.7 * base[MetricGroup::Frequency.index()]
        );
        assert!(dialed[MetricGroup::NetTx.index()] < 0.75 * base[MetricGroup::NetTx.index()]);
    }

    #[test]
    fn effect_response_is_sublinear() {
        let low = Injection::new(AnomalyKind::CacheCopy, 2);
        let high = Injection::new(AnomalyKind::CacheCopy, 100);
        assert!(low.effect() > 5.0 * low.intensity(), "2% must stay noticeable");
        assert!((high.effect() - 1.0).abs() < 1e-12);
        assert!(low.effect() < high.effect());
    }

    #[test]
    fn eclipse_intensity_lists_match_paper_cardinality() {
        for k in AnomalyKind::ALL {
            let n = eclipse_intensities(k).len();
            assert!((2..=3).contains(&n), "{k:?} must have 2 or 3 settings, has {n}");
        }
    }
}
