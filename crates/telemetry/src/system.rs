//! HPC system descriptions mirroring the paper's two machines.

use serde::{Deserialize, Serialize};

/// Static description of a monitored HPC system (Sec. IV-A).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    /// System name (`"volta"` or `"eclipse"`).
    pub name: String,
    /// Total compute nodes.
    pub nodes: usize,
    /// CPU sockets per node.
    pub sockets: usize,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Memory per node in GiB.
    pub mem_gib: usize,
    /// Telemetry sampling period in seconds (LDMS runs at 1 Hz).
    pub sample_period_s: f64,
    /// Number of distinct metrics collected in the paper's deployment
    /// (721 on Volta, 806 on Eclipse). The simulated catalog is scaled
    /// relative to this (see [`crate::metrics`]).
    pub paper_metric_count: usize,
}

impl SystemSpec {
    /// Volta: Sandia Cray XC30m testbed — 52 nodes, 2x Intel Xeon E5-2695 v2
    /// (12 cores each), 64 GiB per node.
    pub fn volta() -> Self {
        Self {
            name: "volta".into(),
            nodes: 52,
            sockets: 2,
            cores_per_socket: 12,
            mem_gib: 64,
            sample_period_s: 1.0,
            paper_metric_count: 721,
        }
    }

    /// Eclipse: Sandia production system — 1488 nodes, 2x Intel Xeon E5-2695
    /// v4 (18 cores each), 128 GiB per node, 1.8 PF peak.
    pub fn eclipse() -> Self {
        Self {
            name: "eclipse".into(),
            nodes: 1488,
            sockets: 2,
            cores_per_socket: 18,
            mem_gib: 128,
            sample_period_s: 1.0,
            paper_metric_count: 806,
        }
    }

    /// Total physical cores per node.
    pub fn cores_per_node(&self) -> usize {
        self.sockets * self.cores_per_socket
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volta_matches_paper() {
        let v = SystemSpec::volta();
        assert_eq!(v.nodes, 52);
        assert_eq!(v.cores_per_node(), 24);
        assert_eq!(v.mem_gib, 64);
        assert_eq!(v.paper_metric_count, 721);
    }

    #[test]
    fn eclipse_matches_paper() {
        let e = SystemSpec::eclipse();
        assert_eq!(e.nodes, 1488);
        assert_eq!(e.cores_per_node(), 36);
        assert_eq!(e.mem_gib, 128);
        assert_eq!(e.paper_metric_count, 806);
    }
}
