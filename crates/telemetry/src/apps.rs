//! Application catalogs (paper Tables I and II).

use serde::{Deserialize, Serialize};

/// Broad computational dwarf an application belongs to; drives the shape of
/// its resource-usage signature.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppClass {
    /// Structured-grid implicit solvers (BT, LU, SP, sw4, sw4lite).
    Solver,
    /// Sparse linear algebra, memory-latency bound (CG).
    SparseIterative,
    /// Spectral all-to-all codes (FT, SWFFT, part of HACC).
    SpectralFft,
    /// Multigrid hierarchy traversal (MG).
    Multigrid,
    /// Molecular dynamics (MiniMD, CoMD, ExaMiniMD, LAMMPS).
    MolecularDynamics,
    /// Halo-exchange stencil PDE (MiniGhost).
    Stencil,
    /// Adaptive mesh refinement (MiniAMR).
    Amr,
    /// Particle transport sweeps (Kripke).
    Transport,
    /// N-body cosmology with FFT phases (HACC).
    Cosmology,
}

/// One application in the catalog.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Application {
    /// Canonical name as used in the paper.
    pub name: String,
    /// Benchmark suite or origin ("NAS", "Mantevo", "ECP Proxy", "Real", "Other").
    pub suite: String,
    /// One-line description (Tables I / II).
    pub description: String,
    /// Computational dwarf.
    pub class: AppClass,
}

impl Application {
    fn new(name: &str, suite: &str, description: &str, class: AppClass) -> Self {
        Self { name: name.into(), suite: suite.into(), description: description.into(), class }
    }
}

/// The eleven applications run on Volta (Table I).
pub fn volta_catalog() -> Vec<Application> {
    vec![
        Application::new("BT", "NAS", "Block tri-diagonal solver", AppClass::Solver),
        Application::new("CG", "NAS", "Conjugate gradient", AppClass::SparseIterative),
        Application::new("FT", "NAS", "3D Fast Fourier Transform", AppClass::SpectralFft),
        Application::new("LU", "NAS", "Gauss-Seidel solver", AppClass::Solver),
        Application::new("MG", "NAS", "Multi-grid on meshes", AppClass::Multigrid),
        Application::new("SP", "NAS", "Scalar penta-diagonal solver", AppClass::Solver),
        Application::new("MiniMD", "Mantevo", "Molecular dynamics", AppClass::MolecularDynamics),
        Application::new("CoMD", "Mantevo", "Molecular dynamics", AppClass::MolecularDynamics),
        Application::new(
            "MiniGhost",
            "Mantevo",
            "Partial differential equations",
            AppClass::Stencil,
        ),
        Application::new("MiniAMR", "Mantevo", "Stencil calculation", AppClass::Amr),
        Application::new("Kripke", "Other", "Particle transport", AppClass::Transport),
    ]
}

/// The six applications run on Eclipse (Table II).
pub fn eclipse_catalog() -> Vec<Application> {
    vec![
        Application::new("LAMMPS", "Real", "Molecular dynamics", AppClass::MolecularDynamics),
        Application::new("HACC", "Real", "Cosmological simulation", AppClass::Cosmology),
        Application::new("sw4", "Real", "Seismic modeling", AppClass::Solver),
        Application::new(
            "ExaMiniMD",
            "ECP Proxy",
            "Molecular dynamics",
            AppClass::MolecularDynamics,
        ),
        Application::new("SWFFT", "ECP Proxy", "3D Fast Fourier Transform", AppClass::SpectralFft),
        Application::new(
            "sw4lite",
            "ECP Proxy",
            "Numerical kernel optimizations",
            AppClass::Solver,
        ),
    ]
}

/// Looks up an application by name in either catalog.
pub fn find_application(name: &str) -> Option<Application> {
    volta_catalog().into_iter().chain(eclipse_catalog()).find(|a| a.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volta_has_eleven_apps() {
        let cat = volta_catalog();
        assert_eq!(cat.len(), 11);
        assert!(cat.iter().any(|a| a.name == "Kripke"));
        assert_eq!(cat.iter().filter(|a| a.suite == "NAS").count(), 6);
        assert_eq!(cat.iter().filter(|a| a.suite == "Mantevo").count(), 4);
    }

    #[test]
    fn eclipse_has_six_apps_three_real() {
        let cat = eclipse_catalog();
        assert_eq!(cat.len(), 6);
        assert_eq!(cat.iter().filter(|a| a.suite == "Real").count(), 3);
        assert_eq!(cat.iter().filter(|a| a.suite == "ECP Proxy").count(), 3);
    }

    #[test]
    fn names_are_unique_within_catalogs() {
        for cat in [volta_catalog(), eclipse_catalog()] {
            let mut names: Vec<_> = cat.iter().map(|a| &a.name).collect();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), cat.len());
        }
    }

    #[test]
    fn find_application_is_case_insensitive() {
        assert_eq!(find_application("kripke").unwrap().name, "Kripke");
        assert_eq!(find_application("LAMMPS").unwrap().class, AppClass::MolecularDynamics);
        assert!(find_application("nonexistent").is_none());
    }
}
