//! LDMS-like metric catalog.
//!
//! LDMS collects hundreds of metrics per node (721 on Volta, 806 on
//! Eclipse) across the memory, CPU, network, shared-filesystem and Cray
//! performance-counter subsystems. Within a subsystem, most metrics are
//! strongly correlated transforms of a smaller number of latent utilisation
//! signals — e.g. every per-core `user` tick follows the node's aggregate
//! CPU-user load. The simulator exploits this: application signatures and
//! anomaly models operate on *latent metric groups*, and the catalog maps
//! every concrete metric to a group via a per-metric gain, offset and noise
//! floor, plus a gauge/counter kind.

use alba_data::{MetricDef, MetricKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::system::SystemSpec;

/// Latent utilisation signals the simulator synthesises per node.
///
/// Application signatures and anomaly effect models are both expressed in
/// this space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricGroup {
    /// Aggregate user-mode CPU utilisation (0..1 per core average).
    CpuUser,
    /// Aggregate kernel-mode CPU utilisation.
    CpuSystem,
    /// Idle CPU fraction.
    CpuIdle,
    /// Last-level cache miss rate.
    CacheMiss,
    /// Cache reference rate.
    CacheRef,
    /// Memory bandwidth consumption (GB/s scale).
    MemBandwidth,
    /// Resident/used memory (GiB scale).
    MemUsed,
    /// Free memory (GiB scale).
    MemFree,
    /// Minor+major page fault rate.
    PageFaults,
    /// Network transmit volume.
    NetTx,
    /// Network receive volume.
    NetRx,
    /// Shared filesystem read ops.
    FsRead,
    /// Shared filesystem write ops.
    FsWrite,
    /// Shared filesystem metadata ops (open/close/stat).
    FsMeta,
    /// Node power draw (Cray `cray_aries` counters).
    Power,
    /// Effective core frequency.
    Frequency,
    /// Write-back counter activity (Cray performance counters).
    WriteBack,
}

impl MetricGroup {
    /// All groups, in a stable order.
    pub const ALL: [MetricGroup; 17] = [
        MetricGroup::CpuUser,
        MetricGroup::CpuSystem,
        MetricGroup::CpuIdle,
        MetricGroup::CacheMiss,
        MetricGroup::CacheRef,
        MetricGroup::MemBandwidth,
        MetricGroup::MemUsed,
        MetricGroup::MemFree,
        MetricGroup::PageFaults,
        MetricGroup::NetTx,
        MetricGroup::NetRx,
        MetricGroup::FsRead,
        MetricGroup::FsWrite,
        MetricGroup::FsMeta,
        MetricGroup::Power,
        MetricGroup::Frequency,
        MetricGroup::WriteBack,
    ];

    /// Stable index of this group in [`MetricGroup::ALL`].
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&g| g == self).expect("group present in ALL")
    }

    /// Subsystem name used in metric definitions, mirroring the LDMS
    /// sampler plugins listed in Sec. IV-B.
    pub fn subsystem(self) -> &'static str {
        match self {
            MetricGroup::CpuUser | MetricGroup::CpuSystem | MetricGroup::CpuIdle => "procstat",
            MetricGroup::CacheMiss | MetricGroup::CacheRef => "perfevent",
            MetricGroup::MemBandwidth
            | MetricGroup::MemUsed
            | MetricGroup::MemFree
            | MetricGroup::PageFaults => "meminfo",
            MetricGroup::NetTx | MetricGroup::NetRx => "procnetdev",
            MetricGroup::FsRead | MetricGroup::FsWrite | MetricGroup::FsMeta => "lustre",
            MetricGroup::Power | MetricGroup::Frequency | MetricGroup::WriteBack => "cray_aries",
        }
    }

    /// Base LDMS-style metric name stem for this group.
    fn stem(self) -> &'static str {
        match self {
            MetricGroup::CpuUser => "per_core_user",
            MetricGroup::CpuSystem => "per_core_sys",
            MetricGroup::CpuIdle => "per_core_idle",
            MetricGroup::CacheMiss => "llc_misses",
            MetricGroup::CacheRef => "llc_references",
            MetricGroup::MemBandwidth => "mem_bw",
            MetricGroup::MemUsed => "Active",
            MetricGroup::MemFree => "MemFree",
            MetricGroup::PageFaults => "pgfault",
            MetricGroup::NetTx => "tx_bytes",
            MetricGroup::NetRx => "rx_bytes",
            MetricGroup::FsRead => "read_bytes",
            MetricGroup::FsWrite => "write_bytes",
            MetricGroup::FsMeta => "open_close_stat",
            MetricGroup::Power => "power",
            MetricGroup::Frequency => "cpu_freq",
            MetricGroup::WriteBack => "wb_counter",
        }
    }

    /// Whether metrics in this group report cumulative counters by default.
    pub fn default_kind(self) -> MetricKind {
        match self {
            MetricGroup::CpuUser
            | MetricGroup::CpuSystem
            | MetricGroup::CpuIdle
            | MetricGroup::CacheMiss
            | MetricGroup::CacheRef
            | MetricGroup::PageFaults
            | MetricGroup::NetTx
            | MetricGroup::NetRx
            | MetricGroup::FsRead
            | MetricGroup::FsWrite
            | MetricGroup::FsMeta
            | MetricGroup::WriteBack => MetricKind::Counter,
            MetricGroup::MemBandwidth
            | MetricGroup::MemUsed
            | MetricGroup::MemFree
            | MetricGroup::Power
            | MetricGroup::Frequency => MetricKind::Gauge,
        }
    }

    /// Typical magnitude of the latent signal, used to scale noise.
    pub fn typical_scale(self) -> f64 {
        match self {
            MetricGroup::CpuUser | MetricGroup::CpuSystem | MetricGroup::CpuIdle => 1.0,
            MetricGroup::CacheMiss | MetricGroup::CacheRef => 50.0,
            MetricGroup::MemBandwidth => 20.0,
            MetricGroup::MemUsed | MetricGroup::MemFree => 32.0,
            MetricGroup::PageFaults => 10.0,
            MetricGroup::NetTx | MetricGroup::NetRx => 100.0,
            MetricGroup::FsRead | MetricGroup::FsWrite => 40.0,
            MetricGroup::FsMeta => 5.0,
            MetricGroup::Power => 300.0,
            MetricGroup::Frequency => 2.4,
            MetricGroup::WriteBack => 30.0,
        }
    }
}

/// One simulated metric: LDMS definition plus the affine map from its latent
/// group signal to the reported value.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimMetric {
    /// The metric definition exposed to the downstream pipeline.
    pub def: MetricDef,
    /// Latent group driving this metric.
    pub group: MetricGroup,
    /// Multiplicative gain applied to the group signal.
    pub gain: f64,
    /// Additive offset.
    pub offset: f64,
    /// Standard deviation of per-sample measurement noise (relative to the
    /// group's typical scale).
    pub noise_rel: f64,
}

/// Metric catalog for one system.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MetricCatalog {
    /// All simulated metrics in collection order.
    pub metrics: Vec<SimMetric>,
}

impl MetricCatalog {
    /// Builds a catalog with `per_group` metrics for each latent group.
    ///
    /// The catalog is deterministic given the system spec and `per_group`:
    /// per-metric gains/offsets/noise are derived from a seeded RNG so that
    /// repeated constructions agree (datasets must be reproducible).
    ///
    /// `per_group = 4` yields a 68-metric catalog (the default "reduced
    /// scale"); `per_group = 42` approaches the 721-metric Volta deployment.
    pub fn build(spec: &SystemSpec, per_group: usize) -> Self {
        assert!(per_group >= 1, "need at least one metric per group");
        let seed = spec.name.bytes().map(u64::from).sum::<u64>() * 7919 + per_group as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut metrics = Vec::with_capacity(MetricGroup::ALL.len() * per_group);
        for &group in &MetricGroup::ALL {
            for i in 0..per_group {
                let gain = 0.5 + rng.gen::<f64>() * 1.5;
                let offset = rng.gen::<f64>() * 0.2 * group.typical_scale();
                let noise_rel = 0.01 + rng.gen::<f64>() * 0.04;
                // A minority of metrics within counter groups are exported
                // as gauges (rates) by some samplers; mirror that variety.
                let kind = if group.default_kind() == MetricKind::Counter && i % 5 == 4 {
                    MetricKind::Gauge
                } else {
                    group.default_kind()
                };
                metrics.push(SimMetric {
                    def: MetricDef {
                        name: format!("{}.{}.{}", group.subsystem(), group.stem(), i),
                        subsystem: group.subsystem().to_string(),
                        kind,
                    },
                    group,
                    gain,
                    offset,
                    noise_rel,
                });
            }
        }
        Self { metrics }
    }

    /// Number of metrics in the catalog.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The metric definitions in collection order.
    pub fn defs(&self) -> Vec<MetricDef> {
        self.metrics.iter().map(|m| m.def.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_index_is_consistent() {
        for (i, g) in MetricGroup::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
    }

    #[test]
    fn catalog_is_deterministic() {
        let spec = SystemSpec::volta();
        let a = MetricCatalog::build(&spec, 4);
        let b = MetricCatalog::build(&spec, 4);
        assert_eq!(a.len(), 17 * 4);
        for (x, y) in a.metrics.iter().zip(&b.metrics) {
            assert_eq!(x.def, y.def);
            assert_eq!(x.gain, y.gain);
        }
    }

    #[test]
    fn catalogs_differ_across_systems() {
        let a = MetricCatalog::build(&SystemSpec::volta(), 4);
        let b = MetricCatalog::build(&SystemSpec::eclipse(), 4);
        assert!(
            a.metrics.iter().zip(&b.metrics).any(|(x, y)| x.gain != y.gain),
            "Volta and Eclipse deployments must not be byte-identical"
        );
    }

    #[test]
    fn counter_groups_mix_in_gauges() {
        let cat = MetricCatalog::build(&SystemSpec::volta(), 5);
        let net_tx: Vec<_> = cat.metrics.iter().filter(|m| m.group == MetricGroup::NetTx).collect();
        assert!(net_tx.iter().any(|m| m.def.kind == MetricKind::Counter));
        assert!(net_tx.iter().any(|m| m.def.kind == MetricKind::Gauge));
    }

    #[test]
    fn metric_names_carry_subsystem() {
        let cat = MetricCatalog::build(&SystemSpec::eclipse(), 2);
        for m in &cat.metrics {
            assert!(m.def.name.starts_with(&m.def.subsystem));
        }
    }
}
