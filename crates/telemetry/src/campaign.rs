//! Data-collection campaigns: the full sets of application runs the paper
//! executed on Volta and Eclipse (Sec. IV-A/IV-C/IV-E.1).
//!
//! A campaign enumerates `(application, input deck, node count)`
//! configurations, schedules healthy and anomaly-injected runs over them,
//! generates telemetry for every node of every run (in parallel), and
//! finally enforces the paper's 10 % anomalous-sample ratio by downsampling
//! healthy node samples.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::anomaly::{eclipse_intensities, AnomalyKind, Injection, VOLTA_INTENSITIES};
use crate::apps::{eclipse_catalog, volta_catalog, Application};
use crate::generator::{generate_run, NodeTelemetry, NoiseConfig, RunConfig, HEALTHY_LABEL};
use crate::metrics::MetricCatalog;
use crate::signature::SignatureConfig;
use crate::system::SystemSpec;

/// Ordered class names: `healthy` first, then the five anomalies.
/// Experiments rely on `healthy` being class 0.
pub fn class_names() -> Vec<String> {
    let mut names = vec![HEALTHY_LABEL.to_string()];
    names.extend(AnomalyKind::ALL.iter().map(|k| k.label().to_string()));
    names
}

/// How big a campaign to generate.
///
/// `Full` approaches the paper's data volume (hours of runs, hundreds of
/// metrics); `Default` reproduces every qualitative result in minutes on a
/// laptop; `Smoke` is for unit tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// Tiny configuration for tests (seconds).
    Smoke,
    /// Reduced-scale reproduction (default; minutes).
    Default,
    /// Paper-scale sweep (hours).
    Full,
}

/// One `(input deck, node count)` execution configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunShape {
    /// Input deck index.
    pub input_deck: usize,
    /// Allocation size in nodes.
    pub node_count: usize,
}

/// Full description of a data-collection campaign.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// The system the campaign runs on.
    pub system: SystemSpec,
    /// Applications to run.
    pub apps: Vec<Application>,
    /// Execution configurations per application.
    pub shapes: Vec<RunShape>,
    /// Runs per `(application, shape)` combination.
    pub runs_per_shape: usize,
    /// Fraction of runs that receive an anomaly injection.
    pub anomalous_run_fraction: f64,
    /// Steady-state run duration range in seconds (inclusive).
    pub duration_range_s: (usize, usize),
    /// `(kind, intensity)` settings cycled over anomalous runs.
    pub injections: Vec<Injection>,
    /// Metrics simulated per latent group (4 ≈ 68 metrics; 42 ≈ paper's 721).
    pub metrics_per_group: usize,
    /// Stochastic knobs.
    pub noise: NoiseConfig,
    /// Signature-shaping knobs.
    pub signature: SignatureConfig,
    /// If set, healthy node samples are randomly dropped after generation
    /// until anomalous samples make up this fraction (the paper caps the
    /// pool at a 10 % anomaly ratio).
    pub target_anomaly_ratio: Option<f64>,
    /// Master seed; every run derives its own seed from it.
    pub seed: u64,
}

impl CampaignConfig {
    /// The Volta campaign: 11 applications x 3 input decks, 4-node runs of
    /// 10–15 min, six anomaly intensities (reduced by `scale`).
    pub fn volta(scale: Scale, seed: u64) -> Self {
        let (runs, dur, mpg) = match scale {
            Scale::Smoke => (4, (60, 80), 2),
            Scale::Default => (24, (150, 210), 4),
            Scale::Full => (48, (600, 900), 42),
        };
        // Kind-minor interleaving: any window of >= 5 consecutive injections
        // covers every anomaly kind, so even small campaigns expose each
        // application to each anomaly.
        let injections = VOLTA_INTENSITIES
            .iter()
            .flat_map(|&i| AnomalyKind::ALL.iter().map(move |&k| Injection::new(k, i)))
            .collect();
        Self {
            system: SystemSpec::volta(),
            apps: volta_catalog(),
            shapes: (0..3).map(|d| RunShape { input_deck: d, node_count: 4 }).collect(),
            runs_per_shape: runs,
            anomalous_run_fraction: 0.4,
            duration_range_s: dur,
            injections,
            metrics_per_group: mpg,
            noise: NoiseConfig::testbed(),
            signature: SignatureConfig::default(),
            target_anomaly_ratio: Some(0.10),
            seed,
        }
    }

    /// The Eclipse campaign: 6 applications on 4/8/16 nodes (one input deck
    /// per node count), 20–45 min runs, 2–3 intensities per anomaly kind.
    pub fn eclipse(scale: Scale, seed: u64) -> Self {
        let (runs, dur, mpg) = match scale {
            Scale::Smoke => (4, (60, 80), 2),
            Scale::Default => (24, (200, 280), 4),
            Scale::Full => (60, (1200, 2700), 47),
        };
        // Kind-minor interleaving, as in the Volta campaign.
        let max_settings =
            AnomalyKind::ALL.iter().map(|&k| eclipse_intensities(k).len()).max().unwrap_or(0);
        let injections = (0..max_settings)
            .flat_map(|i| {
                AnomalyKind::ALL.iter().filter_map(move |&k| {
                    eclipse_intensities(k).get(i).map(|&pct| Injection::new(k, pct))
                })
            })
            .collect();
        Self {
            system: SystemSpec::eclipse(),
            apps: eclipse_catalog(),
            shapes: vec![
                RunShape { input_deck: 0, node_count: 4 },
                RunShape { input_deck: 1, node_count: 8 },
                RunShape { input_deck: 2, node_count: 16 },
            ],
            runs_per_shape: runs,
            anomalous_run_fraction: 0.5,
            duration_range_s: dur,
            injections,
            metrics_per_group: mpg,
            noise: NoiseConfig::production(),
            signature: SignatureConfig::default(),
            target_anomaly_ratio: Some(0.10),
            seed,
        }
    }

    /// The metric catalog this campaign collects.
    pub fn catalog(&self) -> MetricCatalog {
        MetricCatalog::build(&self.system, self.metrics_per_group)
    }

    /// Enumerates the run configurations of the whole campaign.
    ///
    /// Within every `(app, shape)` cell the first
    /// `round(runs_per_shape * anomalous_run_fraction)` runs carry
    /// injections, cycled through the injection list with a cell-specific
    /// offset so all kinds and intensities are covered for every
    /// application.
    pub fn run_configs(&self) -> Vec<RunConfig> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n_anom = (self.runs_per_shape as f64 * self.anomalous_run_fraction).round() as usize;
        let mut out = Vec::new();
        let mut run_id = 0usize;
        for (ai, app) in self.apps.iter().enumerate() {
            for (si, shape) in self.shapes.iter().enumerate() {
                let cell_offset = ai * self.shapes.len() + si;
                for r in 0..self.runs_per_shape {
                    let injection = if r < n_anom && !self.injections.is_empty() {
                        let idx = (cell_offset * n_anom + r) % self.injections.len();
                        Some(self.injections[idx])
                    } else {
                        None
                    };
                    let duration_s =
                        rng.gen_range(self.duration_range_s.0..=self.duration_range_s.1);
                    out.push(RunConfig {
                        app: app.clone(),
                        input_deck: shape.input_deck,
                        node_count: shape.node_count,
                        duration_s,
                        injection,
                        run_id,
                        seed: self.seed ^ (run_id as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
                    });
                    run_id += 1;
                }
            }
        }
        out
    }

    /// Generates the full campaign: telemetry for every node of every run,
    /// in parallel, then (optionally) downsampled to the target anomaly
    /// ratio. Output order is deterministic.
    pub fn generate(&self) -> Vec<NodeTelemetry> {
        let catalog = self.catalog();
        let configs = self.run_configs();
        let mut samples: Vec<NodeTelemetry> = configs
            .par_iter()
            .flat_map_iter(|cfg| generate_run(cfg, &catalog, &self.signature, &self.noise))
            .collect();
        if let Some(ratio) = self.target_anomaly_ratio {
            samples = enforce_anomaly_ratio(samples, ratio, self.seed ^ 0xA5A5);
        }
        samples
    }
}

/// Downsamples healthy node samples until anomalous samples make up
/// `ratio` of the pool (no-op when they already do). Deterministic for a
/// given seed; preserves the relative order of retained samples.
pub fn enforce_anomaly_ratio(
    samples: Vec<NodeTelemetry>,
    ratio: f64,
    seed: u64,
) -> Vec<NodeTelemetry> {
    assert!((0.0..1.0).contains(&ratio), "ratio must be in [0,1), got {ratio}");
    let n_anom = samples.iter().filter(|s| s.label != HEALTHY_LABEL).count();
    if n_anom == 0 || ratio == 0.0 {
        return samples;
    }
    let healthy_target = ((n_anom as f64) * (1.0 - ratio) / ratio).round() as usize;
    let n_healthy = samples.len() - n_anom;
    if n_healthy <= healthy_target {
        return samples;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut healthy_idx: Vec<usize> = samples
        .iter()
        .enumerate()
        .filter(|(_, s)| s.label == HEALTHY_LABEL)
        .map(|(i, _)| i)
        .collect();
    healthy_idx.shuffle(&mut rng);
    healthy_idx.truncate(healthy_target);
    let keep: std::collections::HashSet<usize> = healthy_idx.into_iter().collect();
    samples
        .into_iter()
        .enumerate()
        .filter(|(i, s)| s.label != HEALTHY_LABEL || keep.contains(i))
        .map(|(_, s)| s)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_names_start_with_healthy() {
        let names = class_names();
        assert_eq!(names.len(), 6);
        assert_eq!(names[0], "healthy");
        assert!(names.contains(&"dial".to_string()));
    }

    #[test]
    fn volta_config_matches_paper_structure() {
        let c = CampaignConfig::volta(Scale::Default, 1);
        assert_eq!(c.apps.len(), 11);
        assert_eq!(c.shapes.len(), 3);
        assert!(c.shapes.iter().all(|s| s.node_count == 4));
        assert_eq!(c.injections.len(), 5 * 6);
    }

    #[test]
    fn eclipse_config_matches_paper_structure() {
        let c = CampaignConfig::eclipse(Scale::Default, 1);
        assert_eq!(c.apps.len(), 6);
        let nodes: Vec<usize> = c.shapes.iter().map(|s| s.node_count).collect();
        assert_eq!(nodes, vec![4, 8, 16]);
        // One input deck per node count.
        let decks: Vec<usize> = c.shapes.iter().map(|s| s.input_deck).collect();
        assert_eq!(decks, vec![0, 1, 2]);
        // 2-3 intensities per kind.
        assert_eq!(c.injections.len(), 13);
    }

    #[test]
    fn every_app_sees_every_anomaly_kind() {
        let c = CampaignConfig::volta(Scale::Default, 3);
        let configs = c.run_configs();
        for app in &c.apps {
            for kind in AnomalyKind::ALL {
                assert!(
                    configs.iter().any(
                        |r| r.app.name == app.name && r.injection.map(|i| i.kind) == Some(kind)
                    ),
                    "{} never received {kind:?}",
                    app.name
                );
            }
        }
    }

    #[test]
    fn smoke_campaign_generates_and_hits_anomaly_ratio() {
        let c = CampaignConfig::volta(Scale::Smoke, 17);
        let samples = c.generate();
        assert!(!samples.is_empty());
        let anom = samples.iter().filter(|s| s.label != HEALTHY_LABEL).count();
        let ratio = anom as f64 / samples.len() as f64;
        assert!((0.08..=0.13).contains(&ratio), "anomaly ratio {ratio} should approximate 0.10");
        // Determinism.
        let again = c.generate();
        assert_eq!(samples.len(), again.len());
        for (x, y) in samples[0].series.values.iter().zip(&again[0].series.values) {
            assert_eq!(x.len(), y.len());
            for (p, q) in x.iter().zip(y) {
                assert_eq!(p.to_bits(), q.to_bits());
            }
        }
    }

    #[test]
    fn enforce_ratio_downsamples_only_healthy() {
        let c = CampaignConfig::volta(Scale::Smoke, 23);
        let mut cfg = c;
        cfg.target_anomaly_ratio = None;
        let raw = cfg.generate();
        let anom_before = raw.iter().filter(|s| s.label != HEALTHY_LABEL).count();
        let balanced = enforce_anomaly_ratio(raw, 0.2, 99);
        let anom_after = balanced.iter().filter(|s| s.label != HEALTHY_LABEL).count();
        assert_eq!(anom_before, anom_after, "anomalous samples must all be kept");
        let ratio = anom_after as f64 / balanced.len() as f64;
        assert!((0.18..=0.22).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn run_ids_are_unique() {
        let c = CampaignConfig::eclipse(Scale::Smoke, 2);
        let configs = c.run_configs();
        let mut ids: Vec<usize> = configs.iter().map(|r| r.run_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), configs.len());
    }
}
