//! Application resource-usage signatures.
//!
//! Every application, input deck and allocation size maps to a
//! [`Signature`]: for each latent [`MetricGroup`], the baseline level,
//! oscillation structure and burst behaviour of that signal while the
//! application runs healthy. The anomaly models in [`crate::anomaly`]
//! perturb these latent signals; the generator then maps them to concrete
//! LDMS-style metrics.
//!
//! Signatures are what make the learning problem realistic: applications of
//! the same dwarf (e.g. the three MD codes) have *similar but not equal*
//! signatures, input decks rescale group levels substantially (which is why
//! unseen decks crater the initial F1-score in Fig. 8), and production runs
//! carry larger run-to-run variability than testbed runs (why Eclipse starts
//! at a lower F1 than Volta).

use crate::apps::{AppClass, Application};
use crate::metrics::MetricGroup;
use serde::{Deserialize, Serialize};

/// Latent-signal pattern of one metric group for one configured run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GroupPattern {
    /// Baseline level, in group units (e.g. CPU fraction, GB/s, GiB).
    pub level: f64,
    /// Relative amplitude of the main periodic component (0 = flat).
    pub amp: f64,
    /// Period of the main component in seconds.
    pub period_s: f64,
    /// Relative amplitude of a faster secondary component.
    pub amp2: f64,
    /// Period of the secondary component in seconds.
    pub period2_s: f64,
    /// Linear drift of the level per 1000 s of runtime (fraction of level).
    pub drift: f64,
}

impl GroupPattern {
    /// A flat pattern at `level`.
    pub fn flat(level: f64) -> Self {
        Self { level, amp: 0.0, period_s: 60.0, amp2: 0.0, period2_s: 7.0, drift: 0.0 }
    }

    /// Evaluates the healthy latent signal at time `t` (seconds), without
    /// noise.
    pub fn eval(&self, t: f64) -> f64 {
        let tau = std::f64::consts::TAU;
        let main = 1.0 + self.amp * (tau * t / self.period_s).sin();
        let fast = 1.0 + self.amp2 * (tau * t / self.period2_s).sin();
        let drift = 1.0 + self.drift * t / 1000.0;
        (self.level * main * fast * drift).max(0.0)
    }
}

/// Full signature: one pattern per latent metric group.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Signature {
    patterns: Vec<GroupPattern>,
}

impl Signature {
    /// Pattern of a given group.
    pub fn pattern(&self, g: MetricGroup) -> &GroupPattern {
        &self.patterns[g.index()]
    }

    /// Mutable pattern accessor (used by tests and the anomaly suite).
    pub fn pattern_mut(&mut self, g: MetricGroup) -> &mut GroupPattern {
        &mut self.patterns[g.index()]
    }

    /// Evaluates the healthy latent group vector at time `t`.
    pub fn eval(&self, t: f64) -> [f64; MetricGroup::ALL.len()] {
        let mut out = [0.0; MetricGroup::ALL.len()];
        for (i, p) in self.patterns.iter().enumerate() {
            out[i] = p.eval(t);
        }
        out
    }
}

/// Deterministic pseudo-random stream derived from strings/integers, used to
/// give every (app, deck, group) combination stable idiosyncrasies without
/// threading an RNG through signature construction.
fn mix(seed: u64, salt: u64) -> u64 {
    // splitmix64 finaliser.
    let mut z = seed.wrapping_add(salt).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` from a hash.
fn unit(seed: u64, salt: u64) -> f64 {
    (mix(seed, salt) >> 11) as f64 / (1u64 << 53) as f64
}

fn str_seed(s: &str) -> u64 {
    s.bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3))
}

/// Base per-class group levels; columns follow [`MetricGroup::ALL`] order:
/// CpuUser, CpuSystem, CpuIdle, CacheMiss, CacheRef, MemBandwidth, MemUsed,
/// MemFree, PageFaults, NetTx, NetRx, FsRead, FsWrite, FsMeta, Power,
/// Frequency, WriteBack.
fn class_levels(class: AppClass) -> [f64; 17] {
    match class {
        AppClass::Solver => [
            0.82, 0.05, 0.13, 22.0, 70.0, 11.0, 14.0, 46.0, 3.0, 38.0, 38.0, 4.0, 7.0, 1.0, 290.0,
            2.4, 13.0,
        ],
        AppClass::SparseIterative => [
            0.55, 0.04, 0.41, 62.0, 88.0, 17.0, 10.0, 52.0, 2.0, 30.0, 30.0, 2.0, 3.0, 0.6, 255.0,
            2.4, 19.0,
        ],
        AppClass::SpectralFft => [
            0.60, 0.09, 0.31, 34.0, 64.0, 19.0, 18.0, 42.0, 4.0, 95.0, 95.0, 3.0, 5.0, 0.8, 270.0,
            2.4, 21.0,
        ],
        AppClass::Multigrid => [
            0.66, 0.06, 0.28, 44.0, 76.0, 15.0, 12.0, 50.0, 5.0, 52.0, 52.0, 2.0, 4.0, 0.7, 265.0,
            2.4, 16.0,
        ],
        AppClass::MolecularDynamics => [
            0.92, 0.03, 0.05, 16.0, 82.0, 8.0, 7.0, 55.0, 1.5, 17.0, 17.0, 1.0, 2.0, 0.4, 305.0,
            2.4, 9.0,
        ],
        AppClass::Stencil => [
            0.71, 0.06, 0.23, 30.0, 68.0, 13.0, 11.0, 51.0, 2.5, 58.0, 58.0, 2.0, 4.0, 0.6, 275.0,
            2.4, 14.0,
        ],
        AppClass::Amr => [
            0.63, 0.08, 0.29, 36.0, 63.0, 12.0, 16.0, 44.0, 7.0, 44.0, 44.0, 5.0, 9.0, 2.2, 260.0,
            2.4, 15.0,
        ],
        AppClass::Transport => [
            0.69, 0.07, 0.24, 33.0, 69.0, 14.0, 12.0, 49.0, 3.5, 49.0, 49.0, 3.0, 5.0, 1.0, 272.0,
            2.4, 15.5,
        ],
        AppClass::Cosmology => [
            0.74, 0.07, 0.19, 28.0, 72.0, 16.0, 20.0, 40.0, 4.5, 70.0, 70.0, 6.0, 8.0, 1.2, 285.0,
            2.4, 17.0,
        ],
    }
}

/// Per-class oscillation parameters `(amp, period_s, amp2, period2_s)`.
fn class_rhythm(class: AppClass) -> (f64, f64, f64, f64) {
    match class {
        AppClass::Solver => (0.10, 45.0, 0.04, 6.0),
        AppClass::SparseIterative => (0.06, 30.0, 0.08, 4.0),
        AppClass::SpectralFft => (0.22, 24.0, 0.05, 5.0),
        AppClass::Multigrid => (0.17, 38.0, 0.09, 8.0),
        AppClass::MolecularDynamics => (0.05, 80.0, 0.03, 10.0),
        AppClass::Stencil => (0.12, 33.0, 0.05, 6.0),
        AppClass::Amr => (0.20, 90.0, 0.10, 12.0),
        AppClass::Transport => (0.14, 28.0, 0.06, 7.0),
        AppClass::Cosmology => (0.18, 70.0, 0.07, 9.0),
    }
}

/// Controls how strongly input decks, allocation sizes and application
/// idiosyncrasies reshape the base class signature.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SignatureConfig {
    /// Half-width of the per-application multiplicative jitter around the
    /// class baseline (e.g. 0.15 → levels in ±15 %).
    pub app_jitter: f64,
    /// Half-width of the per-(app, deck, group) level rescaling. The paper's
    /// unseen-input experiment (Fig. 8) needs decks to shift signatures
    /// enough that a single-deck model generalises poorly.
    pub deck_spread: f64,
    /// Half-width of the per-(app, node-count) rescaling; only nonzero for
    /// Eclipse where every node count uses a different input.
    pub nodes_spread: f64,
}

impl Default for SignatureConfig {
    fn default() -> Self {
        Self { app_jitter: 0.12, deck_spread: 0.28, nodes_spread: 0.15 }
    }
}

/// Builds the healthy signature for `(app, input deck, node count)`.
///
/// Deterministic: the same inputs always produce the same signature.
pub fn build_signature(
    app: &Application,
    input_deck: usize,
    node_count: usize,
    cfg: &SignatureConfig,
) -> Signature {
    let levels = class_levels(app.class);
    let (amp, period, amp2, period2) = class_rhythm(app.class);
    let app_seed = str_seed(&app.name);
    let deck_seed = mix(app_seed, 1000 + input_deck as u64);
    let nodes_seed = mix(app_seed, 2000 + node_count as u64);

    let patterns = MetricGroup::ALL
        .iter()
        .enumerate()
        .map(|(gi, &g)| {
            let salt = gi as u64;
            // Application idiosyncrasy: stable per (app, group).
            let app_f = 1.0 + cfg.app_jitter * (2.0 * unit(app_seed, salt) - 1.0);
            // Input-deck rescaling: stable per (app, deck, group).
            let deck_f = 1.0 + cfg.deck_spread * (2.0 * unit(deck_seed, salt) - 1.0);
            // Allocation-size rescaling (Eclipse inputs differ per node count),
            // plus a mild physical scaling of communication with node count.
            let nodes_f = 1.0 + cfg.nodes_spread * (2.0 * unit(nodes_seed, salt) - 1.0);
            let comm_f = match g {
                MetricGroup::NetTx | MetricGroup::NetRx => {
                    1.0 + 0.12 * ((node_count as f64 / 4.0).log2().max(0.0))
                }
                _ => 1.0,
            };
            let mut level = levels[gi] * app_f * deck_f * nodes_f * comm_f;
            // Physical coupling: free memory responds inversely to used memory
            // so the two groups stay anticorrelated like real meminfo data.
            if g == MetricGroup::MemFree {
                let used = levels[MetricGroup::MemUsed.index()] * app_f * deck_f * nodes_f;
                level = (64.0 - used).max(2.0);
            }
            // CPU fractions must stay in [0, 1].
            if matches!(g, MetricGroup::CpuUser | MetricGroup::CpuSystem | MetricGroup::CpuIdle) {
                level = level.clamp(0.005, 0.99);
            }
            // Healthy frequency carries a ±6 % turbo spread per (app, deck)
            // — enough to mask small `dial` reductions (the paper finds dial
            // the most confusing anomaly).
            if g == MetricGroup::Frequency {
                level = levels[gi] * (1.0 + 0.06 * (2.0 * unit(deck_seed, 77 + salt) - 1.0));
            }
            let periodic_groups =
                !matches!(g, MetricGroup::MemUsed | MetricGroup::MemFree | MetricGroup::Frequency);
            let (a, a2) = if periodic_groups {
                // Stable per-(app, group) modulation of the class rhythm.
                (
                    amp * (0.6 + 0.8 * unit(app_seed, 31 + salt)),
                    amp2 * (0.6 + 0.8 * unit(app_seed, 63 + salt)),
                )
            } else {
                (0.0, 0.0)
            };
            GroupPattern {
                level,
                amp: a,
                period_s: period * (0.8 + 0.4 * unit(app_seed, 17 + salt)),
                amp2: a2,
                period2_s: period2 * (0.8 + 0.4 * unit(app_seed, 43 + salt)),
                drift: if g == MetricGroup::MemUsed { 0.02 } else { 0.0 },
            }
        })
        .collect();
    Signature { patterns }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{find_application, volta_catalog};

    fn sig(app: &str, deck: usize, nodes: usize) -> Signature {
        build_signature(&find_application(app).unwrap(), deck, nodes, &SignatureConfig::default())
    }

    #[test]
    fn signatures_are_deterministic() {
        assert_eq!(sig("BT", 0, 4), sig("BT", 0, 4));
    }

    #[test]
    fn decks_rescale_levels() {
        let a = sig("BT", 0, 4);
        let b = sig("BT", 1, 4);
        let g = MetricGroup::MemBandwidth;
        assert_ne!(a.pattern(g).level, b.pattern(g).level);
    }

    #[test]
    fn md_codes_are_similar_but_distinct() {
        let a = sig("MiniMD", 0, 4);
        let b = sig("CoMD", 0, 4);
        let cu = MetricGroup::CpuUser;
        // Same dwarf: both strongly CPU-bound...
        assert!(a.pattern(cu).level > 0.7 && b.pattern(cu).level > 0.7);
        // ...but not identical.
        assert_ne!(a.pattern(cu).level, b.pattern(cu).level);
    }

    #[test]
    fn fft_codes_are_network_heavy() {
        let ft = sig("FT", 0, 4);
        let md = sig("MiniMD", 0, 4);
        assert!(ft.pattern(MetricGroup::NetTx).level > 2.0 * md.pattern(MetricGroup::NetTx).level);
    }

    #[test]
    fn network_level_grows_with_allocation() {
        let small = sig("SWFFT", 0, 4);
        let large = sig("SWFFT", 0, 16);
        assert!(large.pattern(MetricGroup::NetTx).level > small.pattern(MetricGroup::NetTx).level);
    }

    #[test]
    fn cpu_fractions_stay_in_unit_range() {
        for app in volta_catalog() {
            for deck in 0..3 {
                let s = build_signature(&app, deck, 4, &SignatureConfig::default());
                for g in [MetricGroup::CpuUser, MetricGroup::CpuSystem, MetricGroup::CpuIdle] {
                    let l = s.pattern(g).level;
                    assert!((0.0..=1.0).contains(&l), "{} {g:?} level {l}", app.name);
                }
            }
        }
    }

    #[test]
    fn eval_is_nonnegative_and_mean_tracks_level() {
        let s = sig("Kripke", 0, 4);
        let p = s.pattern(MetricGroup::NetTx);
        let mut sum = 0.0;
        for t in 0..600 {
            let v = p.eval(t as f64);
            assert!(v >= 0.0);
            sum += v;
        }
        let mean = sum / 600.0;
        assert!((mean - p.level).abs() / p.level < 0.1, "mean {mean} vs level {}", p.level);
    }

    #[test]
    fn memused_drifts_upward_slowly() {
        let s = sig("MiniAMR", 0, 4);
        let p = s.pattern(MetricGroup::MemUsed);
        assert!(p.eval(900.0) > p.eval(0.0));
    }
}
