//! Integration tests pinning the grid's determinism contracts:
//! figure-mode equivalence with the monolithic `run_curves` driver,
//! worker-count invariance, cross-spec memoisation, and byte-identical
//! resume after a mid-sweep crash.

use alba_chaos::Failpoints;
use alba_grid::{run_grid, GridSpec, RunOptions};
use alba_store::TelemetryStore;
use albadross::experiments::{run_curves, CurvesConfig};
use albadross::{RunScale, System};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("alba_grid_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const FIG_SMOKE: &str = r#"{
    "name": "fig3",
    "mode": "figure",
    "system": "volta",
    "scale": "smoke",
    "seed": 5
}"#;

const SWEEP: &str = r#"{
    "name": "sweep",
    "mode": "sweep",
    "system": "volta",
    "campaign": "smoke",
    "extractors": ["mvts"],
    "strategies": ["uncertainty", "margin", "random"],
    "models": ["rf"],
    "budgets": [5],
    "seeds": [21, 22],
    "top_k_features": 120
}"#;

/// The partial spec shares seed 21's cells with SWEEP — a grid of a
/// different name and shape, hitting the same content-addressed memo.
const SWEEP_PARTIAL: &str = r#"{
    "name": "partial",
    "mode": "sweep",
    "system": "volta",
    "campaign": "smoke",
    "extractors": ["mvts"],
    "strategies": ["uncertainty", "margin", "random"],
    "models": ["rf"],
    "budgets": [5],
    "seeds": [21],
    "top_k_features": 120
}"#;

/// Figure mode replays `run_curves` exactly: same sessions, same
/// curves, byte-identical JSON for the part the figure files persist.
#[test]
fn figure_grid_matches_monolithic_run_curves() {
    let spec = GridSpec::parse(FIG_SMOKE, None).expect("parse");
    let out = run_grid(&spec, &RunOptions::default()).expect("grid");
    let grid_curves = out.curves.expect("figure mode yields curves");

    let reference = run_curves(&CurvesConfig {
        system: System::Volta,
        method: None,
        scale: RunScale::smoke(5),
        include_proctor: true,
    });

    let a = serde_json::to_string(&grid_curves.curves).expect("ser");
    let b = serde_json::to_string(&reference.curves).expect("ser");
    assert_eq!(a, b, "grid figure curves must be byte-identical to run_curves");
    let a = serde_json::to_string(&grid_curves.sessions).expect("ser");
    let b = serde_json::to_string(&reference.sessions).expect("ser");
    assert_eq!(a, b, "raw sessions must match too");
    assert_eq!(grid_curves.mean_seed_count, reference.mean_seed_count);
    assert_eq!(grid_curves.class_names, reference.class_names);
    assert_eq!(grid_curves.method, reference.method);
}

/// Same spec at 1, 2, and 4 workers: byte-identical reports and
/// leaderboards — assignment is positional, the merge is ordered.
#[test]
fn worker_count_invariance() {
    let spec = GridSpec::parse(SWEEP, None).expect("parse");
    let base = run_grid(&spec, &RunOptions::default()).expect("1 worker");
    for workers in [2, 4] {
        let out = run_grid(&spec, &RunOptions { workers, ..RunOptions::default() }).expect("grid");
        assert_eq!(out.json, base.json, "{workers}-worker report diverged");
        assert_eq!(out.leaderboard_md, base.leaderboard_md);
    }
}

/// A sweep killed after N cell writes resumes to a byte-identical
/// report, recomputing only what was never persisted.
#[test]
fn kill_mid_sweep_then_resume_is_byte_identical() {
    let spec = GridSpec::parse(SWEEP, None).expect("parse");
    let total = spec.expand().len();
    assert_eq!(total, 6);

    // Uninterrupted reference, no store.
    let reference = run_grid(&spec, &RunOptions::default()).expect("reference");

    // Crash run: the 4th cell write fails (3 survive). Workers = 1 so
    // "cells persisted before the crash" is exactly the first 3.
    let dir = tmp_dir("kill");
    let fp = Failpoints::new();
    fp.arm_after("cell.write", 3, 1);
    let mut store = TelemetryStore::open(&dir).expect("open");
    store.set_fault_hook(std::sync::Arc::new(fp.io_hook("grid")));
    let crashed = run_grid(&spec, &RunOptions { store: Some(store), ..RunOptions::default() });
    assert!(crashed.is_err(), "armed failpoint must abort the sweep");
    let persisted = std::fs::read_dir(dir.join("cells")).expect("cells dir").count();
    assert_eq!(persisted, 3, "exactly the pre-crash cells are on disk");

    // Resume against the same store, with a clean hook and more workers.
    let store = TelemetryStore::open(&dir).expect("reopen");
    let resumed =
        run_grid(&spec, &RunOptions { workers: 2, store: Some(store), ..RunOptions::default() })
            .expect("resume");
    assert_eq!(resumed.stats.memo_hits, 3, "resume must reuse every persisted cell");
    assert_eq!(resumed.stats.computed, total - 3);
    assert_eq!(
        resumed.json, reference.json,
        "killed-and-resumed sweep must be byte-identical to an uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cells are content-addressed, not grid-addressed: a differently-named
/// partial sweep warms the memo for the full sweep.
#[test]
fn memoisation_is_shared_across_specs() {
    let dir = tmp_dir("xspec");
    let partial = GridSpec::parse(SWEEP_PARTIAL, None).expect("parse");
    let opts = || RunOptions {
        store: Some(TelemetryStore::open(&dir).expect("open")),
        ..RunOptions::default()
    };
    let first = run_grid(&partial, &opts()).expect("partial");
    assert_eq!(first.stats.computed, 3);

    let full = GridSpec::parse(SWEEP, None).expect("parse");
    let second = run_grid(&full, &opts()).expect("full");
    assert_eq!(second.stats.memo_hits, 3, "seed-21 cells come from the partial run");
    assert_eq!(second.stats.computed, 3, "only seed-22 cells are new");

    // And the memoised result matches a from-scratch run byte-for-byte.
    let fresh = run_grid(&full, &RunOptions::default()).expect("fresh");
    assert_eq!(second.json, fresh.json);
    let _ = std::fs::remove_dir_all(&dir);
}
