//! Declarative grid specs: JSON in, content-addressed cells out.
//!
//! Two modes share one file format (discriminated by `"mode"`):
//!
//! * **figure** — replays a paper figure (Fig. 3 / Fig. 5) through the
//!   grid runner. Expansion mirrors `run_curves` *exactly*: same job
//!   order, same seed derivations, so the merged sessions are
//!   byte-identical to the monolithic driver's.
//! * **sweep** — a cross-product over pipelines (extractor × model ×
//!   strategy × budget) and seeds, optionally with pool-label
//!   contamination; feeds the paired-statistics leaderboard.
//!
//! Parsing is hand-rolled over the [`serde::Value`] tree because the
//! vendored derive has no optional-field or default support; unknown
//! keys are rejected so typos fail loudly instead of silently running
//! the default grid.

use crate::cell::{CellSpec, CellTask, CELL_REV};
use crate::error::GridError;
use alba_active::Strategy;
use alba_ml::{ModelFamily, ModelSpec};
use alba_telemetry::Scale;
use albadross::{FeatureMethod, RunScale, SplitConfig, System};
use serde::Value;

/// Sweep-mode noise-seed derivation constant (any fixed odd-ish value;
/// only has to differ from the other per-seed derivations).
const NOISE_SEED_SALT: u64 = 0x5EED_D1CE;

/// One expanded cell with its grid-level labels. `pipeline` and
/// `pair_id` are deliberately *not* part of [`CellSpec`] (and thus not
/// hashed): two grids labelling the same cell differently still share
/// one memo entry.
#[derive(Clone, Debug)]
pub struct GridCell {
    /// Position in expansion order (merge order).
    pub idx: usize,
    /// Leaderboard grouping key (e.g. `MVTS+RF+margin+b12`).
    pub pipeline: String,
    /// Pairing key for the paired tests: cells of different pipelines
    /// with equal `pair_id` share a split and are compared head-to-head.
    pub pair_id: u64,
    /// The content-addressed cell.
    pub spec: CellSpec,
}

/// Figure-mode parameters.
#[derive(Clone, Debug)]
pub struct FigureSpec {
    /// System to evaluate.
    pub system: System,
    /// Feature method (`None` = the system's Table V best).
    pub method: Option<FeatureMethod>,
    /// Whether to run the Proctor baseline.
    pub include_proctor: bool,
    /// Sizing (from the spec file or a CLI override).
    pub scale: RunScale,
}

/// Sweep-mode parameters.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// System to evaluate.
    pub system: System,
    /// Campaign size.
    pub campaign: Scale,
    /// Feature extractors to cross.
    pub extractors: Vec<FeatureMethod>,
    /// Query strategies to cross.
    pub strategies: Vec<Strategy>,
    /// Model families to cross (each resolved via `ModelSpec::tuned`).
    pub models: Vec<ModelFamily>,
    /// Label budgets to cross.
    pub budgets: Vec<usize>,
    /// Master seeds; each seed is one paired replicate.
    pub seeds: Vec<u64>,
    /// Train fraction of each split.
    pub train_fraction: f64,
    /// Chi-square-selected feature count.
    pub top_k_features: usize,
    /// Labels per re-train.
    pub batch: usize,
    /// Percent of pool labels flipped (label-noise robustness axis).
    pub contamination_pct: f64,
}

/// Which of the two grid modes a spec uses.
#[derive(Clone, Debug)]
pub enum GridMode {
    /// Paper-figure replay.
    Figure(FigureSpec),
    /// Pipeline cross-product.
    Sweep(SweepSpec),
}

/// A parsed grid spec.
#[derive(Clone, Debug)]
pub struct GridSpec {
    /// Grid name; output lands in `results/grid_<name>.json`.
    pub name: String,
    /// Mode payload.
    pub mode: GridMode,
}

// ---------------------------------------------------------------- parsing

fn spec_err(msg: impl std::fmt::Display) -> GridError {
    GridError::Spec(msg.to_string())
}

/// Object-field reader that tracks which keys were consumed, so the
/// parser can reject unknown keys at the end.
struct Fields<'a> {
    entries: &'a [(String, Value)],
    seen: Vec<bool>,
}

impl<'a> Fields<'a> {
    fn new(v: &'a Value) -> Result<Self, GridError> {
        let entries = v
            .as_object()
            .ok_or_else(|| spec_err(format!("expected a JSON object, got {}", v.kind())))?;
        Ok(Fields { entries, seen: vec![false; entries.len()] })
    }

    fn get(&mut self, key: &str) -> Option<&'a Value> {
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if k == key {
                self.seen[i] = true;
                return Some(v);
            }
        }
        None
    }

    fn require(&mut self, key: &str) -> Result<&'a Value, GridError> {
        self.get(key).ok_or_else(|| spec_err(format!("missing required field `{key}`")))
    }

    fn finish(&self) -> Result<(), GridError> {
        let unknown: Vec<&str> = self
            .entries
            .iter()
            .zip(&self.seen)
            .filter(|(_, &seen)| !seen)
            .map(|((k, _), _)| k.as_str())
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(spec_err(format!("unknown field(s): {}", unknown.join(", "))))
        }
    }
}

fn as_u64(v: &Value, key: &str) -> Result<u64, GridError> {
    match v {
        Value::Num(serde::Number::U(n)) => Ok(*n),
        Value::Num(serde::Number::I(n)) if *n >= 0 => Ok(*n as u64),
        _ => Err(spec_err(format!("field `{key}` must be a non-negative integer"))),
    }
}

fn as_usize(v: &Value, key: &str) -> Result<usize, GridError> {
    Ok(as_u64(v, key)? as usize)
}

fn as_f64(v: &Value, key: &str) -> Result<f64, GridError> {
    match v {
        Value::Num(serde::Number::U(n)) => Ok(*n as f64),
        Value::Num(serde::Number::I(n)) => Ok(*n as f64),
        Value::Num(serde::Number::F(x)) => Ok(*x),
        _ => Err(spec_err(format!("field `{key}` must be a number"))),
    }
}

fn as_bool(v: &Value, key: &str) -> Result<bool, GridError> {
    match v {
        Value::Bool(b) => Ok(*b),
        _ => Err(spec_err(format!("field `{key}` must be a boolean"))),
    }
}

fn as_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, GridError> {
    v.as_str().ok_or_else(|| spec_err(format!("field `{key}` must be a string")))
}

fn parse_system(s: &str) -> Result<System, GridError> {
    match s.to_ascii_lowercase().as_str() {
        "volta" => Ok(System::Volta),
        "eclipse" => Ok(System::Eclipse),
        _ => Err(spec_err(format!("unknown system `{s}` (volta|eclipse)"))),
    }
}

fn parse_method(s: &str) -> Result<FeatureMethod, GridError> {
    match s.to_ascii_lowercase().as_str() {
        "mvts" => Ok(FeatureMethod::Mvts),
        "tsfresh" => Ok(FeatureMethod::TsFresh),
        _ => Err(spec_err(format!("unknown feature method `{s}` (mvts|tsfresh)"))),
    }
}

fn parse_strategy(s: &str) -> Result<Strategy, GridError> {
    Strategy::ALL.iter().copied().find(|st| st.name() == s.to_ascii_lowercase()).ok_or_else(|| {
        spec_err(format!("unknown strategy `{s}` (uncertainty|margin|entropy|random|equal_app)"))
    })
}

fn parse_family(s: &str) -> Result<ModelFamily, GridError> {
    match s.to_ascii_lowercase().as_str() {
        "lr" => Ok(ModelFamily::Lr),
        "rf" => Ok(ModelFamily::Rf),
        "lgbm" => Ok(ModelFamily::Lgbm),
        "mlp" => Ok(ModelFamily::Mlp),
        _ => Err(spec_err(format!("unknown model family `{s}` (lr|rf|lgbm|mlp)"))),
    }
}

fn parse_campaign(s: &str) -> Result<Scale, GridError> {
    match s.to_ascii_lowercase().as_str() {
        "smoke" => Ok(Scale::Smoke),
        "default" => Ok(Scale::Default),
        "full" => Ok(Scale::Full),
        _ => Err(spec_err(format!("unknown campaign `{s}` (smoke|default|full)"))),
    }
}

fn str_list<'a>(v: &'a Value, key: &str) -> Result<Vec<&'a str>, GridError> {
    let items = v.as_array().ok_or_else(|| spec_err(format!("field `{key}` must be an array")))?;
    if items.is_empty() {
        return Err(spec_err(format!("field `{key}` must be non-empty")));
    }
    items.iter().map(|it| as_str(it, key)).collect()
}

fn num_list<T>(
    v: &Value,
    key: &str,
    conv: impl Fn(&Value, &str) -> Result<T, GridError>,
) -> Result<Vec<T>, GridError> {
    let items = v.as_array().ok_or_else(|| spec_err(format!("field `{key}` must be an array")))?;
    if items.is_empty() {
        return Err(spec_err(format!("field `{key}` must be non-empty")));
    }
    items.iter().map(|it| conv(it, key)).collect()
}

impl GridSpec {
    /// Parses a grid spec from JSON source. `scale_override` (figure
    /// mode only) substitutes the spec file's sizing — this is how the
    /// CLI's `--scale`/`--seed` flags reach a committed spec file.
    pub fn parse(src: &str, scale_override: Option<&RunScale>) -> Result<GridSpec, GridError> {
        let root =
            serde_json::parse_value(src).map_err(|e| spec_err(format!("invalid JSON: {e}")))?;
        let mut f = Fields::new(&root)?;
        let name = as_str(f.require("name")?, "name")?.to_string();
        if name.is_empty()
            || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(spec_err(format!(
                "grid name `{name}` must be non-empty [A-Za-z0-9_-] (it names the output file)"
            )));
        }
        let mode = as_str(f.require("mode")?, "mode")?.to_string();
        let spec = match mode.as_str() {
            "figure" => Self::parse_figure(name, &mut f, scale_override)?,
            "sweep" => Self::parse_sweep(name, &mut f)?,
            other => return Err(spec_err(format!("unknown mode `{other}` (figure|sweep)"))),
        };
        f.finish()?;
        Ok(spec)
    }

    fn parse_figure(
        name: String,
        f: &mut Fields<'_>,
        scale_override: Option<&RunScale>,
    ) -> Result<GridSpec, GridError> {
        let system = parse_system(as_str(f.require("system")?, "system")?)?;
        let method = match f.get("method") {
            Some(v) => Some(parse_method(as_str(v, "method")?)?),
            None => None,
        };
        let include_proctor = match f.get("include_proctor") {
            Some(v) => as_bool(v, "include_proctor")?,
            None => true,
        };
        // The spec file's sizing; a CLI override wins wholesale (both
        // scale name and seed).
        let json_scale = f.get("scale").map(|v| as_str(v, "scale")).transpose()?;
        let json_seed = f.get("seed").map(|v| as_u64(v, "seed")).transpose()?;
        let scale = match scale_override {
            Some(s) => s.clone(),
            None => {
                let scale_name = json_scale
                    .ok_or_else(|| spec_err("figure spec needs `scale` (or a CLI override)"))?;
                let seed = json_seed
                    .ok_or_else(|| spec_err("figure spec needs `seed` (or a CLI override)"))?;
                RunScale::parse(scale_name, seed)
                    .ok_or_else(|| spec_err(format!("unknown scale `{scale_name}`")))?
            }
        };
        Ok(GridSpec {
            name,
            mode: GridMode::Figure(FigureSpec { system, method, include_proctor, scale }),
        })
    }

    fn parse_sweep(name: String, f: &mut Fields<'_>) -> Result<GridSpec, GridError> {
        let system = parse_system(as_str(f.require("system")?, "system")?)?;
        let campaign = match f.get("campaign") {
            Some(v) => parse_campaign(as_str(v, "campaign")?)?,
            None => Scale::Smoke,
        };
        let extractors = match f.get("extractors") {
            Some(v) => str_list(v, "extractors")?
                .into_iter()
                .map(parse_method)
                .collect::<Result<Vec<_>, _>>()?,
            None => vec![system.best_feature_method()],
        };
        let strategies = str_list(f.require("strategies")?, "strategies")?
            .into_iter()
            .map(parse_strategy)
            .collect::<Result<Vec<_>, _>>()?;
        let models = match f.get("models") {
            Some(v) => str_list(v, "models")?
                .into_iter()
                .map(parse_family)
                .collect::<Result<Vec<_>, _>>()?,
            None => vec![ModelFamily::Rf],
        };
        let budgets = num_list(f.require("budgets")?, "budgets", as_usize)?;
        if budgets.contains(&0) {
            return Err(spec_err("budgets must be positive"));
        }
        let seeds = num_list(f.require("seeds")?, "seeds", as_u64)?;
        let train_fraction = match f.get("train_fraction") {
            Some(v) => as_f64(v, "train_fraction")?,
            None => 0.5,
        };
        if !(0.05..=0.95).contains(&train_fraction) {
            return Err(spec_err(format!("train_fraction {train_fraction} out of (0.05, 0.95)")));
        }
        let top_k_features = match f.get("top_k_features") {
            Some(v) => as_usize(v, "top_k_features")?,
            None => 150,
        };
        let batch = match f.get("batch") {
            Some(v) => as_usize(v, "batch")?.max(1),
            None => 1,
        };
        let contamination_pct = match f.get("contamination_pct") {
            Some(v) => as_f64(v, "contamination_pct")?,
            None => 0.0,
        };
        if !(0.0..=100.0).contains(&contamination_pct) {
            return Err(spec_err(format!("contamination_pct {contamination_pct} out of [0, 100]")));
        }
        Ok(GridSpec {
            name,
            mode: GridMode::Sweep(SweepSpec {
                system,
                campaign,
                extractors,
                strategies,
                models,
                budgets,
                seeds,
                train_fraction,
                top_k_features,
                batch,
                contamination_pct,
            }),
        })
    }

    /// Short mode name for reports.
    pub fn mode_name(&self) -> &'static str {
        match self.mode {
            GridMode::Figure(_) => "figure",
            GridMode::Sweep(_) => "sweep",
        }
    }

    /// Expands the spec into its cells, in canonical (merge) order.
    pub fn expand(&self) -> Vec<GridCell> {
        match &self.mode {
            GridMode::Figure(fig) => expand_figure(fig),
            GridMode::Sweep(sw) => expand_sweep(sw),
        }
    }
}

/// Figure expansion. Job order and every seed derivation mirror
/// `run_curves` — the merged sessions must be byte-identical to the
/// monolithic driver, which is what `tests/determinism.rs` pins.
fn expand_figure(fig: &FigureSpec) -> Vec<GridCell> {
    let scale = &fig.scale;
    let method = fig.method.unwrap_or_else(|| fig.system.best_feature_method());
    let model = scale.model(fig.system == System::Volta);
    let base = |rep: u64, session_seed: u64, task: CellTask| CellSpec {
        rev: CELL_REV,
        system: fig.system,
        method,
        campaign: scale.campaign,
        data_seed: scale.seed,
        split: scale.split,
        split_seed: scale.seed ^ ((rep + 1) * 0x9E37_79B9),
        pool_seed: scale.seed ^ (rep + 101),
        session_seed,
        contamination_pct: 0.0,
        noise_seed: 0,
        task,
    };
    let mut cells = Vec::new();
    for rep in 0..scale.n_splits as u64 {
        for s in Strategy::ALL {
            let repeats = if s.is_informative() { 1 } else { scale.baseline_repeats };
            for r in 0..repeats as u64 {
                let session_seed = scale.seed ^ (rep << 16) ^ (r << 32) ^ 0xF00D;
                let task = CellTask::Al {
                    strategy: s,
                    model: model.clone(),
                    budget: scale.budget,
                    batch: 1,
                };
                cells.push(GridCell {
                    idx: cells.len(),
                    pipeline: s.name().to_string(),
                    pair_id: rep,
                    spec: base(rep, session_seed, task),
                });
            }
        }
        if fig.include_proctor {
            let session_seed = scale.seed ^ (rep << 16) ^ 0xF00D;
            let task = CellTask::Proctor { config: scale.proctor(session_seed) };
            cells.push(GridCell {
                idx: cells.len(),
                pipeline: "proctor".to_string(),
                pair_id: rep,
                spec: base(rep, session_seed, task),
            });
        }
    }
    cells
}

/// Sweep expansion: seed-major cross-product, so one seed's cells (one
/// paired replicate across every pipeline) are contiguous and share the
/// split cache.
fn expand_sweep(sw: &SweepSpec) -> Vec<GridCell> {
    let split =
        SplitConfig { train_fraction: sw.train_fraction, top_k_features: sw.top_k_features };
    let mut cells = Vec::new();
    for &seed in &sw.seeds {
        for &ext in &sw.extractors {
            for &fam in &sw.models {
                let model = ModelSpec::tuned(fam, sw.system == System::Volta);
                for &strat in &sw.strategies {
                    for &budget in &sw.budgets {
                        let mut pipeline =
                            format!("{}+{}+{}+b{}", ext.name(), fam.name(), strat.name(), budget);
                        if sw.contamination_pct > 0.0 {
                            pipeline.push_str(&format!("+n{}", sw.contamination_pct));
                        }
                        let spec = CellSpec {
                            rev: CELL_REV,
                            system: sw.system,
                            method: ext,
                            campaign: sw.campaign,
                            data_seed: seed,
                            split,
                            split_seed: seed ^ 0x9E37_79B9,
                            pool_seed: seed ^ 101,
                            session_seed: seed ^ 0xF00D,
                            contamination_pct: sw.contamination_pct,
                            noise_seed: seed ^ NOISE_SEED_SALT,
                            task: CellTask::Al {
                                strategy: strat,
                                model: model.clone(),
                                budget,
                                batch: sw.batch,
                            },
                        };
                        cells.push(GridCell { idx: cells.len(), pipeline, pair_id: seed, spec });
                    }
                }
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG: &str = r#"{
        "name": "fig3",
        "mode": "figure",
        "system": "volta",
        "scale": "smoke",
        "seed": 3
    }"#;

    const SWEEP: &str = r#"{
        "name": "mini",
        "mode": "sweep",
        "system": "eclipse",
        "strategies": ["uncertainty", "random"],
        "models": ["rf", "lr"],
        "budgets": [4, 8],
        "seeds": [1, 2, 3]
    }"#;

    #[test]
    fn figure_expansion_mirrors_run_curves_job_order() {
        let spec = GridSpec::parse(FIG, None).unwrap();
        assert_eq!(spec.name, "fig3");
        assert_eq!(spec.mode_name(), "figure");
        let cells = spec.expand();
        // smoke: 2 splits × (5 strategies × 1 repeat + proctor) = 12.
        assert_eq!(cells.len(), 12);
        assert_eq!(cells[0].pipeline, "uncertainty");
        assert_eq!(cells[5].pipeline, "proctor");
        assert_eq!(cells[6].pipeline, "uncertainty");
        assert!(cells.iter().enumerate().all(|(i, c)| c.idx == i));
        // Seed formulas match run_curves' prepare_splits / session seeds.
        let scale = RunScale::smoke(3);
        assert_eq!(cells[0].spec.split_seed, scale.seed ^ 0x9E37_79B9);
        assert_eq!(cells[6].spec.split_seed, scale.seed ^ (2 * 0x9E37_79B9));
        assert_eq!(cells[0].spec.pool_seed, scale.seed ^ 101);
        assert_eq!(cells[0].spec.session_seed, scale.seed ^ 0xF00D);
        assert_eq!(cells[6].spec.session_seed, scale.seed ^ (1u64 << 16) ^ 0xF00D);
    }

    #[test]
    fn figure_scale_override_wins() {
        let over = RunScale::smoke(99);
        let spec = GridSpec::parse(FIG, Some(&over)).unwrap();
        let cells = spec.expand();
        assert_eq!(cells[0].spec.data_seed, 99);
    }

    #[test]
    fn sweep_expansion_is_seed_major_cross_product() {
        let spec = GridSpec::parse(SWEEP, None).unwrap();
        let cells = spec.expand();
        // 3 seeds × 1 extractor × 2 models × 2 strategies × 2 budgets.
        assert_eq!(cells.len(), 24);
        assert_eq!(cells[0].pair_id, 1);
        assert_eq!(cells[8].pair_id, 2);
        // Eclipse's best extractor (MVTS) is the default.
        assert_eq!(cells[0].pipeline, "MVTS+RF+uncertainty+b4");
        assert_eq!(cells[1].pipeline, "MVTS+RF+uncertainty+b8");
        // Distinct cells hash to distinct keys.
        let mut keys: Vec<String> = cells.iter().map(|c| c.spec.key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 24);
    }

    #[test]
    fn unknown_fields_and_bad_values_are_rejected() {
        let bad = FIG.replace("\"seed\": 3", "\"seed\": 3, \"sede\": 4");
        let err = GridSpec::parse(&bad, None).unwrap_err();
        assert!(err.to_string().contains("sede"), "{err}");
        let bad = SWEEP.replace("\"rf\"", "\"resnet\"");
        assert!(GridSpec::parse(&bad, None).is_err());
        let bad = SWEEP.replace("[4, 8]", "[]");
        assert!(GridSpec::parse(&bad, None).is_err());
        assert!(GridSpec::parse("{\"mode\": \"figure\"}", None).is_err(), "name required");
    }

    #[test]
    fn contamination_reaches_cells_and_pipeline_names() {
        let src =
            SWEEP.replace("\"seeds\": [1, 2, 3]", "\"seeds\": [1], \"contamination_pct\": 10.0");
        let spec = GridSpec::parse(&src, None).unwrap();
        let cells = spec.expand();
        assert!(cells.iter().all(|c| c.spec.contamination_pct == 10.0));
        assert!(cells[0].pipeline.ends_with("+n10"));
    }
}
