//! Pipeline leaderboard: paired statistical comparison across seeds.
//!
//! Cells are grouped by pipeline label; within a pipeline, cells sharing
//! a `pair_id` (= one split/seed replicate) are averaged into one pair
//! mean. Pipelines are then ranked by mean final F1, and every pipeline
//! is compared against the leader with a paired t-test and a Wilcoxon
//! signed-rank test over the pair means of the `pair_id`s both share —
//! paired, because replicates share splits, which removes the dominant
//! split-to-split variance component from the comparison.

use crate::cell::CellResult;
use crate::spec::GridCell;
use crate::stats::{mean, paired_t_test, sample_std, wilcoxon_signed_rank};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One ranked pipeline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LeaderboardEntry {
    /// Pipeline label (grouping key).
    pub pipeline: String,
    /// Cells merged into this entry.
    pub cells: usize,
    /// Distinct paired replicates.
    pub pairs: usize,
    /// Mean final F1 over pair means (the ranking key).
    pub mean_final_f1: f64,
    /// Sample std-dev of the pair means (0 when `pairs < 2`).
    pub std_final_f1: f64,
    /// Mean seed-model F1 (before any queries).
    pub mean_initial_f1: f64,
    /// Mean final false-alarm rate.
    pub mean_false_alarm: f64,
    /// Mean final anomaly-miss rate.
    pub mean_miss_rate: f64,
    /// Paired-t statistic vs the leader (`None` for the leader itself or
    /// when the test degenerates).
    pub t_stat: Option<f64>,
    /// Paired-t two-sided p-value vs the leader.
    pub t_p: Option<f64>,
    /// Wilcoxon signed-rank W+ statistic vs the leader.
    pub wilcoxon_w: Option<f64>,
    /// Wilcoxon two-sided p-value vs the leader.
    pub wilcoxon_p: Option<f64>,
}

/// Accumulated per-pipeline evidence before ranking.
struct Group {
    pipeline: String,
    cells: usize,
    /// pair_id → final-F1 observations (repeats of one replicate).
    pairs: BTreeMap<u64, Vec<f64>>,
    initial_f1: Vec<f64>,
    false_alarm: Vec<f64>,
    miss_rate: Vec<f64>,
}

impl Group {
    /// Per-replicate means, keyed by pair id (sorted by construction).
    fn pair_means(&self) -> BTreeMap<u64, f64> {
        self.pairs.iter().map(|(&id, obs)| (id, mean(obs))).collect()
    }
}

/// Builds the ranked leaderboard from merged cells. `cells` and
/// `results` are parallel slices in expansion order; ordering is fully
/// deterministic (ties broken by pipeline name).
pub fn build_leaderboard(cells: &[GridCell], results: &[CellResult]) -> Vec<LeaderboardEntry> {
    let mut order: Vec<String> = Vec::new();
    let mut groups: BTreeMap<String, Group> = BTreeMap::new();
    for (cell, result) in cells.iter().zip(results) {
        let group = groups.entry(cell.pipeline.clone()).or_insert_with(|| {
            order.push(cell.pipeline.clone());
            Group {
                pipeline: cell.pipeline.clone(),
                cells: 0,
                pairs: BTreeMap::new(),
                initial_f1: Vec::new(),
                false_alarm: Vec::new(),
                miss_rate: Vec::new(),
            }
        });
        group.cells += 1;
        group.pairs.entry(cell.pair_id).or_default().push(result.final_f1());
        group.initial_f1.push(result.session.initial_scores.f1);
        group.false_alarm.push(result.final_false_alarm());
        group.miss_rate.push(result.final_miss_rate());
    }

    // Rank by mean final F1 (desc), pipeline name breaking ties.
    let mut ranked: Vec<(&Group, BTreeMap<u64, f64>)> = order
        .iter()
        .filter_map(|name| groups.get(name))
        .map(|g| {
            let means = g.pair_means();
            (g, means)
        })
        .collect();
    ranked.sort_by(|(ga, ma), (gb, mb)| {
        let fa = mean(&ma.values().copied().collect::<Vec<f64>>());
        let fb = mean(&mb.values().copied().collect::<Vec<f64>>());
        fb.total_cmp(&fa).then_with(|| ga.pipeline.cmp(&gb.pipeline))
    });

    let top_means: Option<BTreeMap<u64, f64>> = ranked.first().map(|(_, m)| m.clone());
    ranked
        .iter()
        .enumerate()
        .map(|(rank, (g, means))| {
            let pair_means: Vec<f64> = means.values().copied().collect();
            let (mut t_stat, mut t_p, mut w_stat, mut w_p) = (None, None, None, None);
            if rank > 0 {
                if let Some(top) = &top_means {
                    // Shared replicates only, in sorted pair-id order.
                    let mut a = Vec::new();
                    let mut b = Vec::new();
                    for (id, m) in means {
                        if let Some(t) = top.get(id) {
                            a.push(*t);
                            b.push(*m);
                        }
                    }
                    if let Some(t) = paired_t_test(&a, &b) {
                        t_stat = Some(t.statistic);
                        t_p = Some(t.p_value);
                    }
                    if let Some(w) = wilcoxon_signed_rank(&a, &b) {
                        w_stat = Some(w.statistic);
                        w_p = Some(w.p_value);
                    }
                }
            }
            LeaderboardEntry {
                pipeline: g.pipeline.clone(),
                cells: g.cells,
                pairs: means.len(),
                mean_final_f1: mean(&pair_means),
                std_final_f1: if pair_means.len() < 2 { 0.0 } else { sample_std(&pair_means) },
                mean_initial_f1: mean(&g.initial_f1),
                mean_false_alarm: mean(&g.false_alarm),
                mean_miss_rate: mean(&g.miss_rate),
                t_stat,
                t_p,
                wilcoxon_w: w_stat,
                wilcoxon_p: w_p,
            }
        })
        .collect()
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.4}"),
        None => "—".to_string(),
    }
}

/// Renders the leaderboard as a GitHub-flavoured markdown table.
pub fn render_markdown(entries: &[LeaderboardEntry]) -> String {
    let mut out = String::from(
        "| # | pipeline | pairs | final F1 | ±σ | initial F1 | FAR | miss | t vs top | p (t) | p (Wilcoxon) |\n\
         |---|----------|-------|----------|----|------------|-----|------|----------|-------|--------------|\n",
    );
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "| {} | {} | {} | {:.4} | {:.4} | {:.4} | {:.4} | {:.4} | {} | {} | {} |\n",
            i + 1,
            e.pipeline,
            e.pairs,
            e.mean_final_f1,
            e.std_final_f1,
            e.mean_initial_f1,
            e.mean_false_alarm,
            e.mean_miss_rate,
            fmt_opt(e.t_stat),
            fmt_opt(e.t_p),
            fmt_opt(e.wilcoxon_p),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellSpec, CellTask, CELL_REV};
    use alba_active::{QueryRecord, SessionResult, Strategy};
    use alba_ml::{ModelFamily, ModelSpec, Scores};
    use alba_telemetry::Scale;
    use albadross::{FeatureMethod, SplitConfig, System};

    fn scores(f1: f64) -> Scores {
        Scores { f1, false_alarm_rate: 0.1, anomaly_miss_rate: 0.2 }
    }

    fn fake(pipeline: &str, pair_id: u64, idx: usize, final_f1: f64) -> (GridCell, CellResult) {
        let spec = CellSpec {
            rev: CELL_REV,
            system: System::Volta,
            method: FeatureMethod::Mvts,
            campaign: Scale::Smoke,
            data_seed: pair_id,
            split: SplitConfig { train_fraction: 0.5, top_k_features: 10 },
            split_seed: pair_id,
            pool_seed: pair_id,
            session_seed: idx as u64,
            contamination_pct: 0.0,
            noise_seed: 0,
            task: CellTask::Al {
                strategy: Strategy::Uncertainty,
                model: ModelSpec::tuned(ModelFamily::Rf, true),
                budget: 1,
                batch: 1,
            },
        };
        let session = SessionResult {
            strategy: Strategy::Uncertainty,
            initial_scores: scores(0.5),
            records: vec![QueryRecord {
                pool_index: 0,
                true_label: 0,
                app: "lammps".into(),
                scores: scores(final_f1),
            }],
        };
        let result = CellResult {
            key: spec.key(),
            spec: spec.clone(),
            seed_count: 10,
            pool_len: 100,
            labels_flipped: 0,
            class_names: vec!["healthy".into()],
            session,
        };
        (GridCell { idx, pipeline: pipeline.to_string(), pair_id, spec }, result)
    }

    fn board(rows: &[(&str, u64, f64)]) -> Vec<LeaderboardEntry> {
        let both: Vec<(GridCell, CellResult)> =
            rows.iter().enumerate().map(|(i, &(p, id, f1))| fake(p, id, i, f1)).collect();
        let cells: Vec<GridCell> = both.iter().map(|(c, _)| c.clone()).collect();
        let results: Vec<CellResult> = both.iter().map(|(_, r)| r.clone()).collect();
        build_leaderboard(&cells, &results)
    }

    #[test]
    fn ranks_by_mean_final_f1_with_paired_tests_vs_top() {
        let entries = board(&[
            ("a", 1, 0.9),
            ("a", 2, 0.8),
            ("a", 3, 0.85),
            ("b", 1, 0.6),
            ("b", 2, 0.5),
            ("b", 3, 0.55),
        ]);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].pipeline, "a");
        assert!(entries[0].t_stat.is_none(), "leader is its own reference");
        assert_eq!(entries[1].pairs, 3);
        let t = entries[1].t_stat.expect("paired t runs on 3 shared pairs");
        assert!(t > 0.0, "top beats b on every pair → positive t, got {t}");
        assert!(entries[1].t_p.unwrap() < 0.05, "consistent 0.3 gap is significant");
    }

    #[test]
    fn repeats_collapse_to_pair_means_before_testing() {
        let entries = board(&[
            ("a", 1, 0.9),
            ("a", 1, 0.7), // same pair: averaged to 0.8, not two samples
            ("b", 1, 0.6),
        ]);
        let a = entries.iter().find(|e| e.pipeline == "a").unwrap();
        assert_eq!(a.cells, 2);
        assert_eq!(a.pairs, 1);
        assert!((a.mean_final_f1 - 0.8).abs() < 1e-12);
        // One shared pair → tests degenerate to None, not a panic.
        let b = entries.iter().find(|e| e.pipeline == "b").unwrap();
        assert!(b.t_stat.is_none() && b.wilcoxon_p.is_none());
    }

    #[test]
    fn markdown_renders_every_pipeline_and_dashes_for_none() {
        let entries = board(&[("a", 1, 0.9), ("b", 1, 0.6)]);
        let md = render_markdown(&entries);
        assert!(md.contains("| a |") && md.contains("| b |"));
        assert!(md.contains("—"), "degenerate tests render as dashes:\n{md}");
        assert_eq!(md.lines().count(), 2 + entries.len());
    }

    #[test]
    fn deterministic_tie_break_is_by_name() {
        let entries = board(&[("zeta", 1, 0.7), ("alpha", 1, 0.7)]);
        assert_eq!(entries[0].pipeline, "alpha");
        assert_eq!(entries[1].pipeline, "zeta");
    }
}
