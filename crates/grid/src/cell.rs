//! Content-addressed grid cells: the canonical cell spec, its store
//! key, and the pure `run_cell` evaluator.
//!
//! A [`CellSpec`] is *self-contained*: every seed the evaluation
//! consumes (split, seed-pool, session, noise) is stored explicitly, so
//! `run_cell` is a pure function of the spec alone — no grid-level
//! context leaks in. That is what makes memoisation safe across specs:
//! a cell computed for a partial sweep is byte-for-byte the cell the
//! full sweep would compute, so its store entry ([`CellSpec::key`],
//! FNV over the canonical JSON plus [`CELL_REV`]) is a legitimate hit
//! for any spec that expands to it.
//!
//! Bump [`CELL_REV`] whenever the evaluation semantics change — old
//! store entries then miss instead of silently serving stale results.

use alba_active::{flip_labels, run_batched_session, SessionConfig, SessionResult, Strategy};
use alba_ml::ModelSpec;
use alba_telemetry::Scale;
use albadross::{
    prepare_split, run_proctor_session, seed_and_pool, FeatureMethod, ProctorConfig, SeedPool,
    SplitConfig, System, SystemData,
};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Version stamp hashed into every cell key. Bump on any change to the
/// evaluation semantics of [`run_cell`].
pub const CELL_REV: u32 = 1;

/// What one cell evaluates: an active-learning session or a Proctor
/// baseline session.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum CellTask {
    /// One pool-based AL session.
    Al {
        /// Query strategy.
        strategy: Strategy,
        /// Fully resolved supervised model.
        model: ModelSpec,
        /// Label budget.
        budget: usize,
        /// Labels per re-train (1 = the paper's protocol).
        batch: usize,
    },
    /// One Proctor semi-supervised session.
    Proctor {
        /// Full Proctor configuration (autoencoder, head, budget, seed).
        config: ProctorConfig,
    },
}

/// The canonical, content-addressed description of one grid cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellSpec {
    /// Evaluation-semantics version ([`CELL_REV`]).
    pub rev: u32,
    /// System whose campaign feeds the cell.
    pub system: System,
    /// Feature-extraction method.
    pub method: FeatureMethod,
    /// Campaign scale.
    pub campaign: Scale,
    /// Campaign/feature generation seed.
    pub data_seed: u64,
    /// Split / feature-selection configuration.
    pub split: SplitConfig,
    /// Stratified-split seed.
    pub split_seed: u64,
    /// Seed-set/pool decomposition seed.
    pub pool_seed: u64,
    /// Session seed (strategy tie-breaks + model).
    pub session_seed: u64,
    /// Fraction (percent) of pool labels flipped before the session.
    pub contamination_pct: f64,
    /// Label-flip seed.
    pub noise_seed: u64,
    /// The session the cell runs.
    pub task: CellTask,
}

impl CellSpec {
    /// The cell's content-addressed store key (16 hex chars).
    pub fn key(&self) -> String {
        alba_store::key_of("grid-cell", self)
    }
}

/// The result of one evaluated cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellResult {
    /// The spec's content key (for audit; recomputed on load).
    pub key: String,
    /// The spec that produced this result.
    pub spec: CellSpec,
    /// Seed-set size of the cell's split.
    pub seed_count: usize,
    /// Unlabeled-pool size of the cell's split.
    pub pool_len: usize,
    /// How many pool labels the contamination axis flipped.
    pub labels_flipped: usize,
    /// Class names of the dataset (for drill-downs).
    pub class_names: Vec<String>,
    /// Full session history.
    pub session: SessionResult,
}

impl CellResult {
    /// Final F1 of the session (last query, or the seed model).
    pub fn final_f1(&self) -> f64 {
        self.session.records.last().map(|r| r.scores.f1).unwrap_or(self.session.initial_scores.f1)
    }

    /// Final false-alarm rate.
    pub fn final_false_alarm(&self) -> f64 {
        self.session
            .records
            .last()
            .map(|r| r.scores.false_alarm_rate)
            .unwrap_or(self.session.initial_scores.false_alarm_rate)
    }

    /// Final anomaly-miss rate.
    pub fn final_miss_rate(&self) -> f64 {
        self.session
            .records
            .last()
            .map(|r| r.scores.anomaly_miss_rate)
            .unwrap_or(self.session.initial_scores.anomaly_miss_rate)
    }
}

/// The split-level slice of a cell spec: everything that determines the
/// prepared split + seed/pool (+ contamination), and nothing session
/// specific — cells sharing these fields share one cached split.
#[derive(Serialize)]
struct SplitIdentity {
    system: System,
    method: FeatureMethod,
    campaign: Scale,
    data_seed: u64,
    split: SplitConfig,
    split_seed: u64,
    pool_seed: u64,
    contamination_pct: f64,
    noise_seed: u64,
}

/// One prepared split with its (possibly contaminated) decomposition.
struct SplitInstance {
    test: alba_data::Dataset,
    seed_pool: SeedPool,
    labels_flipped: usize,
}

/// Process-level split cache: figure grids re-use one split across the
/// ~6 methods evaluated on it, so recomputing the (expensive) chi-square
/// selection per cell would multiply wall time for no result change.
/// Lookups and inserts only — never iterated — and bounded.
static SPLIT_CACHE: Mutex<Option<BTreeMap<String, Arc<SplitInstance>>>> = Mutex::new(None);

/// Distinct splits kept in memory; a sweep touching more recycles.
const SPLIT_CACHE_CAP: usize = 8;

fn cached_split(spec: &CellSpec, data: &SystemData) -> Arc<SplitInstance> {
    let ident = SplitIdentity {
        system: spec.system,
        method: spec.method,
        campaign: spec.campaign,
        data_seed: spec.data_seed,
        split: spec.split,
        split_seed: spec.split_seed,
        pool_seed: spec.pool_seed,
        contamination_pct: spec.contamination_pct,
        noise_seed: spec.noise_seed,
    };
    let key = alba_store::key_of("grid-split", &ident);
    if let Some(hit) = SPLIT_CACHE.lock().as_ref().and_then(|m| m.get(&key).cloned()) {
        return hit;
    }
    let split = prepare_split(&data.dataset, &spec.split, spec.split_seed);
    let mut seed_pool = seed_and_pool(&split.train, None, spec.pool_seed);
    let n_classes = seed_pool.pool.n_classes();
    let labels_flipped =
        flip_labels(&mut seed_pool.pool.y, n_classes, spec.contamination_pct, spec.noise_seed);
    let inst = Arc::new(SplitInstance { test: split.test, seed_pool, labels_flipped });
    let mut guard = SPLIT_CACHE.lock();
    let map = guard.get_or_insert_with(BTreeMap::new);
    if map.len() >= SPLIT_CACHE_CAP {
        map.clear();
    }
    map.insert(key, inst.clone());
    inst
}

/// Evaluates one cell. Pure in the spec: equal specs produce
/// bit-identical results regardless of worker, process, or which grid
/// asked.
pub fn run_cell(spec: &CellSpec) -> CellResult {
    let data = SystemData::generate(spec.system, spec.method, spec.campaign, spec.data_seed);
    let inst = cached_split(spec, &data);
    let session = match &spec.task {
        CellTask::Al { strategy, model, budget, batch } => run_batched_session(
            model,
            &inst.seed_pool.seed_set,
            &inst.seed_pool.pool,
            &inst.test,
            &SessionConfig {
                strategy: *strategy,
                budget: *budget,
                target_f1: None,
                seed: spec.session_seed,
            },
            (*batch).max(1),
        ),
        CellTask::Proctor { config } => {
            run_proctor_session(&inst.seed_pool.seed_set, &inst.seed_pool.pool, &inst.test, config)
        }
    };
    CellResult {
        key: spec.key(),
        spec: spec.clone(),
        seed_count: inst.seed_pool.seed_set.len(),
        pool_len: inst.seed_pool.pool.len(),
        labels_flipped: inst.labels_flipped,
        class_names: data.dataset.encoder.names().to_vec(),
        session,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use albadross::RunScale;

    fn smoke_spec(session_seed: u64) -> CellSpec {
        let scale = RunScale::smoke(3);
        CellSpec {
            rev: CELL_REV,
            system: System::Volta,
            method: FeatureMethod::Mvts,
            campaign: Scale::Smoke,
            data_seed: 3,
            split: scale.split,
            split_seed: 3 ^ 0x9E37_79B9,
            pool_seed: 3 ^ 101,
            session_seed,
            contamination_pct: 0.0,
            noise_seed: 0,
            task: CellTask::Al {
                strategy: Strategy::Uncertainty,
                model: scale.model(true),
                budget: 4,
                batch: 1,
            },
        }
    }

    #[test]
    fn keys_are_stable_and_spec_sensitive() {
        let a = smoke_spec(7);
        assert_eq!(a.key(), a.key(), "key is a pure function");
        let mut b = smoke_spec(7);
        b.session_seed = 8;
        assert_ne!(a.key(), b.key(), "different seeds, different cells");
        let mut c = smoke_spec(7);
        c.rev = CELL_REV + 1;
        assert_ne!(a.key(), c.key(), "rev bump invalidates old entries");
    }

    #[test]
    fn run_cell_is_deterministic_and_round_trips_json() {
        let spec = smoke_spec(7);
        let r1 = run_cell(&spec);
        let r2 = run_cell(&spec);
        let j1 = serde_json::to_string(&r1).unwrap();
        let j2 = serde_json::to_string(&r2).unwrap();
        assert_eq!(j1, j2, "equal specs → byte-identical results");
        assert_eq!(r1.session.records.len(), 4, "budget honoured");
        assert!(r1.seed_count > 0 && r1.pool_len > 0);

        // Serialise → parse → re-serialise is byte-stable (the memo
        // path's normalisation invariant).
        let parsed: CellResult = serde_json::from_str(&j1).unwrap();
        let j3 = serde_json::to_string(&parsed).unwrap();
        assert_eq!(j1, j3, "JSON round-trip must be bit-exact");
    }

    #[test]
    fn contamination_changes_the_session_and_is_counted() {
        let clean = smoke_spec(7);
        let mut dirty = smoke_spec(7);
        dirty.contamination_pct = 25.0;
        dirty.noise_seed = 99;
        let rc = run_cell(&clean);
        let rd = run_cell(&dirty);
        assert_eq!(rc.labels_flipped, 0);
        assert!(rd.labels_flipped > 0, "contaminated cell flips pool labels");
        assert_ne!(clean.key(), dirty.key());
    }
}
