//! The grid runner: memo pre-scan, deterministic fan-out, ordered merge.
//!
//! ## Determinism contract
//!
//! The merged output is a pure function of the spec:
//!
//! * cells are assigned to workers by *position in the miss list modulo
//!   worker count* — a fixed function of the expansion, never of timing;
//! * each worker's results carry their expansion index, and the merge
//!   places them by index — arrival order is irrelevant;
//! * every result is normalised through one serialise → parse cycle, so
//!   a memo hit (parsed from the store) and a fresh computation yield
//!   byte-identical JSON.
//!
//! Consequently `run_grid` produces byte-identical reports at 1, 2, or
//! 32 workers, with a cold or warm store — which is what the
//! worker-invariance and kill-and-resume integration tests pin.
//!
//! ## Resumability
//!
//! When a store is attached, each completed cell is persisted *before*
//! the merge. A sweep killed mid-flight therefore re-runs only the
//! cells that had not yet been persisted; the pre-scan turns the rest
//! into memo hits. A store write failure aborts the whole run (better a
//! loud crash than a sweep that silently cannot resume).

use crate::cell::{run_cell, CellResult};
use crate::error::GridError;
use crate::leaderboard::{build_leaderboard, render_markdown, LeaderboardEntry};
use crate::spec::{GridCell, GridMode, GridSpec};
use alba_active::{MethodCurves, SessionResult, Strategy};
use alba_obs::{Obs, Value};
use alba_store::TelemetryStore;
use alba_trace::{Lane, Tracer};
use albadross::experiments::CurvesResult;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How a grid run executes.
pub struct RunOptions {
    /// Worker threads (clamped to ≥ 1). Any value yields byte-identical
    /// output; more workers only change wall time.
    pub workers: usize,
    /// Memo store; `None` disables memoisation and resume.
    pub store: Option<TelemetryStore>,
    /// Observability registry for counters/spans.
    pub obs: Obs,
    /// Causal tracer; cells hop on `Lane::Shard(worker)`, the merge on
    /// `Lane::Service`.
    pub tracer: Tracer,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self { workers: 1, store: None, obs: Obs::disabled(), tracer: Tracer::disabled() }
    }
}

/// Counters of one grid run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GridStats {
    /// Total cells in the expansion.
    pub cells: usize,
    /// Cells served from the memo store.
    pub memo_hits: usize,
    /// Cells computed this run.
    pub computed: usize,
}

/// The machine-readable grid report (`results/grid_<name>.json`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GridReport {
    /// Grid name.
    pub name: String,
    /// `figure` or `sweep`.
    pub mode: String,
    /// Merged cell results in expansion order.
    pub cells: Vec<CellResult>,
    /// Ranked pipelines with paired statistics.
    pub leaderboard: Vec<LeaderboardEntry>,
}

/// Everything a grid run produces.
pub struct GridOutcome {
    /// Grid name.
    pub name: String,
    /// Pretty-printed [`GridReport`] JSON (byte-stable).
    pub json: String,
    /// Markdown rendering of the leaderboard.
    pub leaderboard_md: String,
    /// Run counters.
    pub stats: GridStats,
    /// Figure mode only: the reconstructed `CurvesResult`, byte-identical
    /// to what the monolithic `run_curves` driver returns for the same
    /// sizing.
    pub curves: Option<CurvesResult>,
}

/// Runs a grid to completion. See the module docs for the determinism
/// and resumability contracts.
pub fn run_grid(spec: &GridSpec, opts: &RunOptions) -> Result<GridOutcome, GridError> {
    let cells = spec.expand();
    if cells.is_empty() {
        return Err(GridError::Spec("grid expands to zero cells".to_string()));
    }
    let workers = opts.workers.max(1);
    let obs = &opts.obs;
    let tracer = &opts.tracer;

    // Memo pre-scan, in expansion order. A stored blob that fails to
    // parse (schema drift, truncation past the CRC) is a miss, not an
    // error — the cell is simply recomputed and rewritten.
    let mut merged: Vec<Option<CellResult>> = vec![None; cells.len()];
    let mut memo_hits = 0usize;
    if let Some(store) = &opts.store {
        for cell in &cells {
            let key = cell.spec.key();
            if let Some(bytes) = store.lookup_cell(&key) {
                if let Ok(text) = String::from_utf8(bytes) {
                    if let Ok(result) = serde_json::from_str::<CellResult>(&text) {
                        // alba-lint: allow(reachable-panic) reason="cell.idx was assigned from this grid's expansion"
                        merged[cell.idx] = Some(result);
                        memo_hits += 1;
                        continue;
                    }
                }
                obs.counter("grid_memo_parse_failures_total", &[]).inc();
            }
        }
    }
    obs.counter("grid_memo_hits_total", &[]).add(memo_hits as u64);

    // Deterministic fan-out: the i-th *miss* goes to worker i % workers.
    // alba-lint: allow(reachable-panic) reason="cell.idx was assigned from this grid's expansion"
    let misses: Vec<&GridCell> = cells.iter().filter(|c| merged[c.idx].is_none()).collect();
    obs.counter("grid_memo_misses_total", &[]).add(misses.len() as u64);
    let mut lanes: Vec<Vec<&GridCell>> = vec![Vec::new(); workers];
    for (i, cell) in misses.iter().enumerate() {
        // alba-lint: allow(reachable-panic) reason="i % workers is always in range"
        lanes[i % workers].push(cell);
    }

    let computed = misses.len();
    let outputs: Vec<Result<Vec<(usize, CellResult)>, GridError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = lanes
            .iter()
            .enumerate()
            .map(|(w, lane)| {
                let store = opts.store.as_ref();
                scope.spawn(move || worker_loop(w, lane, store, obs, tracer))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => Err(GridError::Worker("worker thread panicked".to_string())),
            })
            .collect()
    });
    for out in outputs {
        for (idx, result) in out? {
            // alba-lint: allow(reachable-panic) reason="idx comes from the expanded cell list"
            merged[idx] = Some(result);
        }
    }
    obs.counter("grid_cells_computed_total", &[]).add(computed as u64);

    let mut results: Vec<CellResult> = Vec::with_capacity(merged.len());
    for (i, slot) in merged.into_iter().enumerate() {
        match slot {
            Some(r) => results.push(r),
            None => return Err(GridError::Worker(format!("cell {i} produced no result"))),
        }
    }
    tracer.hop(
        Lane::Service,
        &tracer.service_ctx(cells.len()),
        "grid_merge",
        &[
            ("grid", Value::Str(spec.name.clone())),
            ("cells", (cells.len() as u64).into()),
            ("memo_hits", (memo_hits as u64).into()),
            ("computed", (computed as u64).into()),
        ],
    );

    let leaderboard = build_leaderboard(&cells, &results);
    let leaderboard_md = render_markdown(&leaderboard);
    let curves = match &spec.mode {
        GridMode::Figure(fig) => Some(reconstruct_curves(fig, &cells, &results)),
        GridMode::Sweep(_) => None,
    };
    let report = GridReport {
        name: spec.name.clone(),
        mode: spec.mode_name().to_string(),
        cells: results,
        leaderboard,
    };
    let json = serde_json::to_string_pretty(&report)
        .map_err(|e| GridError::Worker(format!("report serialisation: {e}")))?;
    Ok(GridOutcome {
        name: spec.name.clone(),
        json,
        leaderboard_md,
        stats: GridStats { cells: cells.len(), memo_hits, computed },
        curves,
    })
}

/// One worker: computes its lane's cells in expansion order, persisting
/// each before reporting it. Results are normalised through one
/// serialise → parse cycle so hits and misses merge identically.
fn worker_loop(
    w: usize,
    lane: &[&GridCell],
    store: Option<&TelemetryStore>,
    obs: &Obs,
    tracer: &Tracer,
) -> Result<Vec<(usize, CellResult)>, GridError> {
    let mut out = Vec::with_capacity(lane.len());
    for cell in lane {
        let key = cell.spec.key();
        tracer.hop(
            Lane::Shard(w as u32),
            &tracer.ctx(w, cell.idx),
            "grid_cell",
            &[
                ("key", Value::Str(key.clone())),
                ("pipeline", Value::Str(cell.pipeline.clone())),
                ("pair", cell.pair_id.into()),
            ],
        );
        let span = obs.span("grid_cell_ns", &[("pipeline", cell.pipeline.as_str())]);
        let result = run_cell(&cell.spec);
        span.finish();
        let json = serde_json::to_string(&result)
            .map_err(|e| GridError::Worker(format!("cell {key} serialisation: {e}")))?;
        if let Some(store) = store {
            store.put_cell(&key, json.as_bytes())?;
        }
        let normalised = serde_json::from_str::<CellResult>(&json)
            .map_err(|e| GridError::Worker(format!("cell {key} round-trip: {e}")))?;
        out.push((cell.idx, normalised));
    }
    Ok(out)
}

/// Rebuilds the monolithic driver's `CurvesResult` from figure-mode
/// cells: sessions regroup by pipeline in expansion order (= the job
/// order `run_curves` uses), curves aggregate in its display order.
fn reconstruct_curves(
    fig: &crate::spec::FigureSpec,
    cells: &[GridCell],
    results: &[CellResult],
) -> CurvesResult {
    let mut sessions: BTreeMap<String, Vec<SessionResult>> = BTreeMap::new();
    for (cell, result) in cells.iter().zip(results) {
        sessions.entry(cell.pipeline.clone()).or_default().push(result.session.clone());
    }
    let mut order: Vec<String> = Strategy::ALL.iter().map(|s| s.name().to_string()).collect();
    if fig.include_proctor {
        order.push("proctor".to_string());
    }
    let curves: Vec<MethodCurves> = order
        .iter()
        .filter_map(|name| sessions.get(name).map(|s| MethodCurves::from_sessions(name, s)))
        .collect();

    // One seed-set size per split: the first cell of each pair shares
    // its split with the rest.
    let mut seen: Vec<u64> = Vec::new();
    let mut seed_sum = 0.0f64;
    for (cell, result) in cells.iter().zip(results) {
        if !seen.contains(&cell.pair_id) {
            seen.push(cell.pair_id);
            seed_sum += result.seed_count as f64;
        }
    }
    let mean_seed_count = if seen.is_empty() { 0.0 } else { seed_sum / seen.len() as f64 };
    let class_names = results.first().map(|r| r.class_names.clone()).unwrap_or_default();
    CurvesResult {
        system: fig.system,
        method: fig.method.unwrap_or_else(|| fig.system.best_feature_method()),
        curves,
        sessions,
        mean_seed_count,
        class_names,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GridSpec;

    const SWEEP: &str = r#"{
        "name": "unit",
        "mode": "sweep",
        "system": "volta",
        "strategies": ["uncertainty", "random"],
        "budgets": [3],
        "seeds": [11, 12]
    }"#;

    #[test]
    fn sweep_runs_and_ranks_without_a_store() {
        let spec = GridSpec::parse(SWEEP, None).unwrap();
        let out = run_grid(&spec, &RunOptions::default()).unwrap();
        assert_eq!(out.stats.cells, 4);
        assert_eq!(out.stats.memo_hits, 0);
        assert_eq!(out.stats.computed, 4);
        assert_eq!(out.name, "unit");
        assert!(out.curves.is_none());
        let report: GridReport = serde_json::from_str(&out.json).unwrap();
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.leaderboard.len(), 2);
        assert!(out.leaderboard_md.contains("uncertainty"));
    }

    #[test]
    fn worker_count_does_not_change_output_bytes() {
        let spec = GridSpec::parse(SWEEP, None).unwrap();
        let base = run_grid(&spec, &RunOptions::default()).unwrap();
        for workers in [2, 4, 7] {
            let opts = RunOptions { workers, ..RunOptions::default() };
            let out = run_grid(&spec, &opts).unwrap();
            assert_eq!(out.json, base.json, "{workers} workers diverged");
            assert_eq!(out.leaderboard_md, base.leaderboard_md);
        }
    }

    #[test]
    fn memo_round_trip_hits_and_preserves_bytes() {
        let dir = std::env::temp_dir().join(format!("alba_grid_runner_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = GridSpec::parse(SWEEP, None).unwrap();

        let cold_opts = RunOptions {
            store: Some(TelemetryStore::open(&dir).unwrap()),
            ..RunOptions::default()
        };
        let cold = run_grid(&spec, &cold_opts).unwrap();
        assert_eq!(cold.stats.computed, 4);

        let warm_opts = RunOptions {
            workers: 3,
            store: Some(TelemetryStore::open(&dir).unwrap()),
            ..RunOptions::default()
        };
        let warm = run_grid(&spec, &warm_opts).unwrap();
        assert_eq!(warm.stats.memo_hits, 4, "all cells served from the store");
        assert_eq!(warm.stats.computed, 0);
        assert_eq!(warm.json, cold.json, "memo path must preserve bytes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn figure_mode_reconstructs_curves() {
        let fig = r#"{"name": "f", "mode": "figure", "system": "volta",
                      "method": "mvts", "scale": "smoke", "seed": 3}"#;
        let spec = GridSpec::parse(fig, None).unwrap();
        let out = run_grid(&spec, &RunOptions::default()).unwrap();
        let curves = out.curves.expect("figure mode yields curves");
        assert_eq!(curves.curves.len(), 6, "5 strategies + proctor");
        assert_eq!(out.stats.cells, 12);
    }
}
