//! Hand-rolled paired statistics for leaderboard ranking.
//!
//! ALPBench's central argument is that AL pipeline comparisons are only
//! meaningful *paired*: two pipelines evaluated on the same splits/seeds
//! share the split-difficulty noise, so the paired differences isolate
//! the pipeline effect. The workspace is dependency-light by design, so
//! the two classical paired tests are implemented from first principles:
//!
//! * **Paired t-test** — Student-t CDF via the regularised incomplete
//!   beta function (Lentz's continued fraction, Lanczos `ln Γ`),
//! * **Wilcoxon signed-rank** — average-rank ties, zero-difference
//!   removal, normal approximation with tie correction.
//!
//! Everything is pure `f64` arithmetic — identical inputs produce
//! bit-identical statistics on every run, which the byte-identical
//! leaderboard guarantee rests on.

use serde::{Deserialize, Serialize};

/// A test statistic with its two-sided p-value.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TestResult {
    /// The test statistic (t, or Wilcoxon W).
    pub statistic: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator); 0 below two samples.
pub fn sample_std(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0` (~15 digits).
fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_7e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut ser = 1.000_000_000_190_015;
    let mut denom = x;
    for g in G {
        denom += 1.0;
        ser += g / denom;
    }
    let tmp = x + 5.5;
    (x + 0.5) * tmp.ln() - tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

/// Continued-fraction kernel of the incomplete beta (Lentz's method).
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 200;
    const EPS: f64 = 3.0e-14;
    const FPMIN: f64 = 1.0e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularised incomplete beta `I_x(a, b)`.
fn betai(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let bt = (ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln()).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        bt * betacf(a, b, x) / a
    } else {
        1.0 - bt * betacf(b, a, 1.0 - x) / b
    }
}

/// Two-sided p-value of a Student-t statistic with `df` degrees of
/// freedom: `I_{df/(df+t²)}(df/2, 1/2)`.
fn t_two_sided_p(t: f64, df: f64) -> f64 {
    betai(0.5 * df, 0.5, df / (df + t * t)).clamp(0.0, 1.0)
}

/// Complementary error function (Numerical Recipes rational Chebyshev
/// fit, ~1.2e-7 absolute error — ample for ranking decisions).
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal survival function `P(Z > z)`.
fn normal_sf(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

/// Paired t-test of `a` against `b` (element-wise pairs). `None` when
/// fewer than two pairs exist or every pairwise difference is identical
/// (zero variance makes the statistic undefined).
pub fn paired_t_test(a: &[f64], b: &[f64]) -> Option<TestResult> {
    let n = a.len().min(b.len());
    if n < 2 {
        return None;
    }
    let d: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let md = mean(&d);
    let sd = sample_std(&d);
    if sd <= 0.0 {
        return None;
    }
    let t = md / (sd / (n as f64).sqrt());
    Some(TestResult { statistic: t, p_value: t_two_sided_p(t, (n - 1) as f64) })
}

/// Wilcoxon signed-rank test of `a` against `b` with the normal
/// approximation (tie-corrected). Zero differences are dropped per the
/// standard procedure; `None` when no nonzero differences remain or the
/// variance collapses.
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> Option<TestResult> {
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).filter(|d| *d != 0.0).collect();
    let nr = diffs.len();
    if nr < 2 {
        return None;
    }
    // Rank |d| ascending with average ranks for ties.
    let mut order: Vec<usize> = (0..nr).collect();
    // alba-lint: allow(reachable-panic) reason="order holds indices 0..nr into diffs"
    order.sort_by(|&i, &j| diffs[i].abs().total_cmp(&diffs[j].abs()).then(i.cmp(&j)));
    let mut ranks = vec![0.0f64; nr];
    let mut tie_correction = 0.0f64;
    let mut i = 0;
    while i < nr {
        let mut j = i;
        // alba-lint: allow(reachable-panic) reason="j+1 < nr checked first; order entries index diffs"
        while j + 1 < nr && diffs[order[j + 1]].abs() == diffs[order[i]].abs() {
            j += 1;
        }
        let avg_rank = (i + j + 2) as f64 / 2.0; // ranks are 1-based
                                                 // alba-lint: allow(reachable-panic) reason="i..=j stays within 0..nr by the loop bounds"
        for &k in &order[i..=j] {
            // alba-lint: allow(reachable-panic) reason="k is an index 0..nr drawn from order"
            ranks[k] = avg_rank;
        }
        let t = (j - i + 1) as f64;
        tie_correction += t * t * t - t;
        i = j + 1;
    }
    let w_plus: f64 = diffs.iter().zip(&ranks).filter(|(d, _)| **d > 0.0).map(|(_, r)| r).sum();
    let nf = nr as f64;
    let mu = nf * (nf + 1.0) / 4.0;
    let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_correction / 48.0;
    if var <= 0.0 {
        return None;
    }
    let z = (w_plus - mu) / var.sqrt();
    let p = (2.0 * normal_sf(z.abs())).clamp(0.0, 1.0);
    Some(TestResult { statistic: w_plus, p_value: p })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(sample_std(&[1.0]), 0.0);
        // Known: std of [2,4,4,4,5,5,7,9] with n-1 is ~2.138.
        let s = sample_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.138).abs() < 1e-3, "{s}");
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-10); // Γ(1)=1
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10); // Γ(5)=24
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn t_cdf_matches_reference_points() {
        // t=2.0, df=10 → two-sided p ≈ 0.07339.
        let p = t_two_sided_p(2.0, 10.0);
        assert!((p - 0.07339).abs() < 1e-4, "{p}");
        // t=0 → p = 1.
        assert!((t_two_sided_p(0.0, 5.0) - 1.0).abs() < 1e-12);
        // Huge t → p ~ 0.
        assert!(t_two_sided_p(50.0, 5.0) < 1e-6);
    }

    #[test]
    fn paired_t_detects_a_consistent_shift() {
        let a = [0.90, 0.88, 0.92, 0.91, 0.89];
        let b = [0.80, 0.79, 0.83, 0.81, 0.78];
        let r = paired_t_test(&a, &b).expect("valid test");
        assert!(r.statistic > 5.0, "t = {}", r.statistic);
        assert!(r.p_value < 0.01, "p = {}", r.p_value);
        // Symmetric: swapping sides flips the sign, keeps the p.
        let r2 = paired_t_test(&b, &a).expect("valid test");
        assert!((r2.statistic + r.statistic).abs() < 1e-12);
        assert!((r2.p_value - r.p_value).abs() < 1e-12);
    }

    #[test]
    fn degenerate_pairs_yield_none() {
        assert!(paired_t_test(&[1.0], &[2.0]).is_none(), "one pair");
        assert!(paired_t_test(&[1.0, 2.0], &[0.5, 1.5]).is_none(), "constant diff");
        assert!(wilcoxon_signed_rank(&[1.0, 2.0], &[1.0, 2.0]).is_none(), "all zero diffs");
    }

    #[test]
    fn wilcoxon_matches_hand_computed_example() {
        // Classic example: diffs with known W+ and rough p.
        let a = [125.0, 115.0, 130.0, 140.0, 140.0, 115.0, 140.0, 125.0, 140.0, 135.0];
        let b = [110.0, 122.0, 125.0, 120.0, 140.0, 124.0, 123.0, 137.0, 135.0, 145.0];
        let r = wilcoxon_signed_rank(&a, &b).expect("valid test");
        // One zero diff dropped → 9 pairs; W+ = 27 for this data.
        assert!((r.statistic - 27.0).abs() < 1e-9, "W = {}", r.statistic);
        assert!(r.p_value > 0.2 && r.p_value < 0.8, "p = {}", r.p_value);
    }

    #[test]
    fn statistics_are_bitwise_deterministic() {
        let a: Vec<f64> = (0..32).map(|i| 0.8 + 0.001 * i as f64).collect();
        let b: Vec<f64> = (0..32).map(|i| 0.79 + 0.0011 * i as f64).collect();
        let r1 = paired_t_test(&a, &b).expect("valid");
        let r2 = paired_t_test(&a, &b).expect("valid");
        assert_eq!(r1.statistic.to_bits(), r2.statistic.to_bits());
        assert_eq!(r1.p_value.to_bits(), r2.p_value.to_bits());
        let w1 = wilcoxon_signed_rank(&a, &b).expect("valid");
        let w2 = wilcoxon_signed_rank(&a, &b).expect("valid");
        assert_eq!(w1.p_value.to_bits(), w2.p_value.to_bits());
    }
}
