//! Grid error type.

use std::fmt;

/// Anything that can go wrong expanding or running a grid.
#[derive(Debug)]
pub enum GridError {
    /// The grid spec JSON is malformed or inconsistent.
    Spec(String),
    /// The memo store failed (I/O, corruption past self-heal, fault
    /// injection).
    Store(alba_store::StoreError),
    /// A worker thread died.
    Worker(String),
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::Spec(msg) => write!(f, "grid spec: {msg}"),
            GridError::Store(e) => write!(f, "grid store: {e}"),
            GridError::Worker(msg) => write!(f, "grid worker: {msg}"),
        }
    }
}

impl std::error::Error for GridError {}

impl From<alba_store::StoreError> for GridError {
    fn from(e: alba_store::StoreError) -> Self {
        GridError::Store(e)
    }
}
