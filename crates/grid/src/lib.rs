//! # alba-grid
//!
//! Deterministic, resumable active-learning experiment grid for the
//! ALBADross reproduction.
//!
//! A declarative JSON [`GridSpec`] (figure replay or pipeline sweep)
//! expands into content-addressed [`CellSpec`]s; [`run_grid`] fans them
//! over a fixed worker pool with deterministic assignment and ordered
//! merging, memoises completed cells in `alba-store` (so a killed sweep
//! resumes without recomputation), and ranks pipelines with paired
//! statistics ([`stats`]) into a leaderboard. Equal specs produce
//! byte-identical reports at any worker count, cold or warm store.

#![warn(missing_docs)]

pub mod cell;
pub mod error;
pub mod leaderboard;
pub mod runner;
pub mod spec;
pub mod stats;

pub use cell::{run_cell, CellResult, CellSpec, CellTask, CELL_REV};
pub use error::GridError;
pub use leaderboard::{build_leaderboard, render_markdown, LeaderboardEntry};
pub use runner::{run_grid, GridOutcome, GridReport, GridStats, RunOptions};
pub use spec::{FigureSpec, GridCell, GridMode, GridSpec, SweepSpec};
