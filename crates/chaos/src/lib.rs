//! # alba-chaos
//!
//! Seeded, deterministic fault injection for the ALBADross pipeline —
//! plus the self-healing primitives the injected faults exercise.
//! Production HPC telemetry is full of gaps, stuck sensors and node
//! dropouts (RUAD treats missing production data as the norm), so the
//! reproduction makes failure a first-class, *reproducibly testable*
//! scenario instead of a happy-path afterthought:
//!
//! * [`plan`] — the [`FaultPlan`]: a seeded schedule of [`FaultEvent`]s
//!   across every layer boundary (telemetry, serve, store),
//!   serialisable to JSON so any chaos run can be replayed exactly,
//! * [`inject`] — the [`TelemetryInjector`] applying telemetry-layer
//!   faults (node blackouts, stuck/garbage sensors, clock skew, burst
//!   sample loss, queue storms) to a live sample stream,
//! * [`backoff`] — bounded, monotone, deterministic-per-seed
//!   exponential [`Backoff`] for retrying oracle and store operations,
//! * [`quarantine`] — the [`QuarantineGate`]: hysteresis-guarded
//!   quarantine of nodes emitting sustained garbage,
//! * [`failpoint`] — call-indexed [`Failpoints`] that store and serve
//!   consult to inject I/O failures at exact, replayable call counts,
//! * [`net`] — the [`NetFaultPlan`]: connection-level faults (corrupt
//!   CRCs, partial frames, slowloris pacing, reconnect storms) the
//!   deterministic wire client replays against the gateway.
//!
//! ## Determinism contract
//!
//! Nothing in this crate reads wall-clock time or an ambient RNG. A
//! [`FaultPlan`] is a pure function of `(config, seed, horizon, fleet
//! shape)`; injection decisions are pure functions of the plan and the
//! `(node, tick)` being processed; backoff jitter is a pure function of
//! `(seed, attempt)`. Two runs with equal seeds therefore inject the
//! byte-identical fault sequence — the serve chaos suite asserts
//! bit-identical event logs on top of this.

#![warn(missing_docs)]

pub mod backoff;
pub mod failpoint;
pub mod inject;
pub mod net;
pub mod plan;
pub mod quarantine;

pub use backoff::Backoff;
pub use failpoint::Failpoints;
pub use inject::{InjectAction, InjectStats, TelemetryInjector};
pub use net::{NetChaosConfig, NetFaultEvent, NetFaultKind, NetFaultPlan};
pub use plan::{ChaosConfig, FaultEvent, FaultKind, FaultPlan};
pub use quarantine::{QuarantineConfig, QuarantineGate, Transition};

/// Mixes two words into a uniformly-scrambled one (SplitMix64 finaliser).
/// The deterministic "randomness" behind per-call decisions that must not
/// consume RNG state: garbage values, backoff jitter, loss patterns.
pub(crate) fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
