//! Named, call-counted failpoints for I/O fault injection.
//!
//! The store cannot depend on the chaos crate (it sits below it), so it
//! exposes a plain closure hook; [`Failpoints`] is the shared arsenal
//! the serving layer arms from the [`crate::FaultPlan`] and adapts into
//! that hook. Each named point carries a budget of pending failures:
//! `arm("store.read", 2)` makes the next two checks of `store.read`
//! fail, after which the point goes quiet until re-armed. Checks are
//! counted whether or not they fire, so tests can assert exactly how
//! many I/O calls crossed each boundary.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

#[derive(Clone, Copy, Debug, Default)]
struct Point {
    /// Checks to let pass before pending failures start consuming.
    delay: u64,
    /// Failures still pending at this point.
    pending: u64,
    /// Checks that fired (returned "fail").
    fired: u64,
    /// Total checks, fired or not.
    checks: u64,
}

/// A shared registry of named failpoints. Cheap to clone — clones share
/// state, so the chaos runtime can arm points while store adapters
/// check them.
#[derive(Clone, Debug, Default)]
pub struct Failpoints {
    points: Arc<Mutex<HashMap<String, Point>>>,
}

impl Failpoints {
    /// An empty registry; every check passes until a point is armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules the next `n` checks of `name` to fail (additive with
    /// any failures already pending).
    pub fn arm(&self, name: &str, n: u64) {
        let mut map = self.points.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string()).or_default().pending += n;
    }

    /// Lets the next `skip` checks of `name` pass, then fails the `n`
    /// after that. This is the "crash after N successful writes" shape
    /// the resume tests need; the delay stacks onto whatever delay is
    /// already outstanding, and the failures add to `pending` as with
    /// [`Failpoints::arm`].
    pub fn arm_after(&self, name: &str, skip: u64, n: u64) {
        let mut map = self.points.lock().unwrap_or_else(|e| e.into_inner());
        let p = map.entry(name.to_string()).or_default();
        p.delay += skip;
        p.pending += n;
    }

    /// Clears any pending failures and delay on `name` (counters are
    /// kept).
    pub fn disarm(&self, name: &str) {
        let mut map = self.points.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(p) = map.get_mut(name) {
            p.delay = 0;
            p.pending = 0;
        }
    }

    /// Records one crossing of `name` and reports whether it should
    /// fail. A delayed point first counts down its free passes; after
    /// that, each firing check consumes one pending failure.
    pub fn check(&self, name: &str) -> bool {
        let mut map = self.points.lock().unwrap_or_else(|e| e.into_inner());
        let p = map.entry(name.to_string()).or_default();
        p.checks += 1;
        if p.delay > 0 {
            p.delay -= 1;
            return false;
        }
        if p.pending > 0 {
            p.pending -= 1;
            p.fired += 1;
            true
        } else {
            false
        }
    }

    /// How many checks of `name` fired.
    pub fn fired(&self, name: &str) -> u64 {
        self.points
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map(|p| p.fired)
            .unwrap_or(0)
    }

    /// How many times `name` was checked (fired or not).
    pub fn checks(&self, name: &str) -> u64 {
        self.points
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map(|p| p.checks)
            .unwrap_or(0)
    }

    /// Failures still pending on `name`.
    pub fn pending(&self, name: &str) -> u64 {
        self.points
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map(|p| p.pending)
            .unwrap_or(0)
    }

    /// Total fired failures across every point.
    pub fn total_fired(&self) -> u64 {
        self.points.lock().unwrap_or_else(|e| e.into_inner()).values().map(|p| p.fired).sum()
    }

    /// An I/O-flavoured adapter for `name`: returns a closure that
    /// yields `Some(io::Error)` when the point fires, suitable for the
    /// store's fault-hook seam.
    pub fn io_hook(&self, tag: &str) -> impl Fn(&str) -> Option<std::io::Error> + Send + Sync {
        let fp = self.clone();
        let tag = tag.to_string();
        move |name: &str| {
            if fp.check(name) {
                Some(std::io::Error::other(format!("failpoint {name} ({tag}): injected fault")))
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn armed_points_fire_exactly_n_times() {
        let fp = Failpoints::new();
        fp.arm("store.read", 2);
        assert!(fp.check("store.read"));
        assert!(fp.check("store.read"));
        assert!(!fp.check("store.read"), "budget exhausted");
        assert_eq!(fp.fired("store.read"), 2);
        assert_eq!(fp.checks("store.read"), 3);
    }

    #[test]
    fn unarmed_points_always_pass_but_still_count() {
        let fp = Failpoints::new();
        assert!(!fp.check("journal.append"));
        assert_eq!(fp.checks("journal.append"), 1);
        assert_eq!(fp.fired("journal.append"), 0);
    }

    #[test]
    fn clones_share_state() {
        let fp = Failpoints::new();
        let other = fp.clone();
        other.arm("store.fsync", 1);
        assert!(fp.check("store.fsync"), "armed through the clone");
        assert_eq!(other.fired("store.fsync"), 1);
    }

    #[test]
    fn arming_is_additive_and_disarm_clears() {
        let fp = Failpoints::new();
        fp.arm("x", 1);
        fp.arm("x", 2);
        assert_eq!(fp.pending("x"), 3);
        fp.disarm("x");
        assert_eq!(fp.pending("x"), 0);
        assert!(!fp.check("x"));
    }

    #[test]
    fn arm_after_skips_then_fails() {
        let fp = Failpoints::new();
        fp.arm_after("cell.write", 3, 1);
        for i in 0..3 {
            assert!(!fp.check("cell.write"), "pass {i} is within the delay window");
        }
        assert!(fp.check("cell.write"), "fourth check fires");
        assert!(!fp.check("cell.write"), "budget exhausted after one failure");
        assert_eq!(fp.fired("cell.write"), 1);
        assert_eq!(fp.checks("cell.write"), 5);
    }

    #[test]
    fn arm_after_zero_skip_behaves_like_arm() {
        let fp = Failpoints::new();
        fp.arm_after("y", 0, 2);
        assert!(fp.check("y"));
        assert!(fp.check("y"));
        assert!(!fp.check("y"));
    }

    #[test]
    fn disarm_clears_delay_too() {
        let fp = Failpoints::new();
        fp.arm_after("z", 5, 1);
        fp.disarm("z");
        for _ in 0..8 {
            assert!(!fp.check("z"));
        }
        assert_eq!(fp.fired("z"), 0);
    }

    #[test]
    fn io_hook_translates_fires_into_errors() {
        let fp = Failpoints::new();
        let hook = fp.io_hook("unit");
        fp.arm("store.write", 1);
        let err = hook("store.write").expect("fires once");
        assert!(err.to_string().contains("store.write"));
        assert!(hook("store.write").is_none());
        assert_eq!(fp.total_fired(), 1);
    }

    /// Two pool workers hitting the same failpoint must never both
    /// consume the last pending shot: `check` is one read-modify-write
    /// under the registry lock, so a budget of 1 fires exactly once no
    /// matter the interleaving.
    #[test]
    fn concurrent_checks_never_double_fire() {
        for _ in 0..20 {
            let fp = Failpoints::new();
            fp.arm("shard.process", 1);
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let fp = fp.clone();
                    std::thread::spawn(move || {
                        (0..100).filter(|_| fp.check("shard.process")).count() as u64
                    })
                })
                .collect();
            let fires: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(fires, 1, "a budget of 1 fired {fires} times under contention");
            assert_eq!(fp.fired("shard.process"), 1);
            assert_eq!(fp.total_fired(), 1);
            assert_eq!(fp.checks("shard.process"), 200, "every check was counted");
        }
    }
}
