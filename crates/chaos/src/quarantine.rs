//! Hysteresis-guarded node quarantine.
//!
//! A node spewing garbage telemetry (stuck at ±4.2e12, non-physical
//! spikes) must be fenced off before it pollutes window features and
//! triggers alarm storms — but a single bad sample must *not* bounce a
//! healthy node in and out of quarantine. The [`QuarantineGate`]
//! therefore requires `bad_windows` consecutive garbage observations to
//! enter quarantine and `good_windows` consecutive clean ones to leave:
//! alternating good/bad streams shorter than either threshold produce
//! no transitions at all (no flapping).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Hysteresis thresholds for entering and leaving quarantine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineConfig {
    /// Consecutive garbage observations required to quarantine a node.
    pub bad_windows: u32,
    /// Consecutive clean observations required to release it.
    pub good_windows: u32,
}

impl Default for QuarantineConfig {
    fn default() -> Self {
        Self { bad_windows: 3, good_windows: 5 }
    }
}

/// What one observation did to a node's quarantine state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Transition {
    /// State unchanged.
    None,
    /// The node just crossed the bad-streak threshold and is now fenced.
    Entered,
    /// The node just crossed the good-streak threshold and is readmitted.
    Released,
}

#[derive(Clone, Copy, Debug, Default)]
struct NodeState {
    quarantined: bool,
    bad_streak: u32,
    good_streak: u32,
}

/// Per-node quarantine state machine with hysteresis.
#[derive(Clone, Debug)]
pub struct QuarantineGate {
    cfg: QuarantineConfig,
    nodes: HashMap<usize, NodeState>,
    entered: u64,
    released: u64,
}

impl QuarantineGate {
    /// A gate with the given hysteresis thresholds.
    pub fn new(cfg: QuarantineConfig) -> Self {
        Self { cfg, nodes: HashMap::new(), entered: 0, released: 0 }
    }

    /// Feeds one observation for `node` (`bad` = the sample looked like
    /// garbage) and reports any state transition it caused.
    pub fn observe(&mut self, node: usize, bad: bool) -> Transition {
        let s = self.nodes.entry(node).or_default();
        if bad {
            s.bad_streak += 1;
            s.good_streak = 0;
            if !s.quarantined && s.bad_streak >= self.cfg.bad_windows {
                s.quarantined = true;
                self.entered += 1;
                return Transition::Entered;
            }
        } else {
            s.good_streak += 1;
            s.bad_streak = 0;
            if s.quarantined && s.good_streak >= self.cfg.good_windows {
                s.quarantined = false;
                self.released += 1;
                return Transition::Released;
            }
        }
        Transition::None
    }

    /// True while `node` is fenced off.
    pub fn is_quarantined(&self, node: usize) -> bool {
        self.nodes.get(&node).map(|s| s.quarantined).unwrap_or(false)
    }

    /// Nodes currently quarantined, ascending.
    pub fn quarantined_nodes(&self) -> Vec<usize> {
        let mut v: Vec<usize> =
            self.nodes.iter().filter(|(_, s)| s.quarantined).map(|(n, _)| *n).collect();
        v.sort_unstable();
        v
    }

    /// Lifetime count of quarantine entries.
    pub fn entered(&self) -> u64 {
        self.entered
    }

    /// Lifetime count of quarantine releases.
    pub fn released(&self) -> u64 {
        self.released
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enters_only_after_consecutive_bad_windows() {
        let mut g = QuarantineGate::new(QuarantineConfig { bad_windows: 3, good_windows: 2 });
        assert_eq!(g.observe(0, true), Transition::None);
        assert_eq!(g.observe(0, true), Transition::None);
        assert!(!g.is_quarantined(0));
        assert_eq!(g.observe(0, true), Transition::Entered);
        assert!(g.is_quarantined(0));
        assert_eq!(g.entered(), 1);
    }

    #[test]
    fn a_clean_window_resets_the_bad_streak() {
        let mut g = QuarantineGate::new(QuarantineConfig { bad_windows: 3, good_windows: 2 });
        for _ in 0..10 {
            assert_eq!(g.observe(1, true), Transition::None);
            assert_eq!(g.observe(1, true), Transition::None);
            assert_eq!(g.observe(1, false), Transition::None);
        }
        assert!(!g.is_quarantined(1), "streak never reached 3 consecutively");
        assert_eq!(g.entered(), 0);
    }

    #[test]
    fn releases_only_after_consecutive_good_windows() {
        let mut g = QuarantineGate::new(QuarantineConfig { bad_windows: 2, good_windows: 3 });
        g.observe(2, true);
        assert_eq!(g.observe(2, true), Transition::Entered);
        assert_eq!(g.observe(2, false), Transition::None);
        assert_eq!(g.observe(2, false), Transition::None);
        // Relapse resets the good streak.
        assert_eq!(g.observe(2, true), Transition::None);
        assert!(g.is_quarantined(2));
        assert_eq!(g.observe(2, false), Transition::None);
        assert_eq!(g.observe(2, false), Transition::None);
        assert_eq!(g.observe(2, false), Transition::Released);
        assert!(!g.is_quarantined(2));
        assert_eq!(g.released(), 1);
    }

    #[test]
    fn alternating_observations_never_flap() {
        let mut g = QuarantineGate::new(QuarantineConfig::default());
        for i in 0..1000 {
            assert_eq!(g.observe(3, i % 2 == 0), Transition::None, "flapped at step {i}");
        }
        assert_eq!(g.entered() + g.released(), 0);
    }

    #[test]
    fn nodes_are_independent() {
        let mut g = QuarantineGate::new(QuarantineConfig { bad_windows: 1, good_windows: 1 });
        g.observe(0, true);
        assert!(g.is_quarantined(0));
        assert!(!g.is_quarantined(7));
        assert_eq!(g.quarantined_nodes(), vec![0]);
    }
}
