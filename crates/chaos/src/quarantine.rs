//! Hysteresis-guarded node quarantine.
//!
//! A node spewing garbage telemetry (stuck at ±4.2e12, non-physical
//! spikes) must be fenced off before it pollutes window features and
//! triggers alarm storms — but a single bad sample must *not* bounce a
//! healthy node in and out of quarantine. The [`QuarantineGate`]
//! therefore requires `bad_windows` consecutive garbage observations to
//! enter quarantine and `good_windows` consecutive clean ones to leave:
//! alternating good/bad streams shorter than either threshold produce
//! no transitions at all (no flapping).
//!
//! The gate is shared state behind a mutex — clones observe into the
//! same per-node streaks, and each observation is one atomic
//! read-modify-write, so two worker threads feeding the same node can
//! never both report the same threshold crossing (no double
//! `Entered`/`Released`).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Hysteresis thresholds for entering and leaving quarantine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineConfig {
    /// Consecutive garbage observations required to quarantine a node.
    pub bad_windows: u32,
    /// Consecutive clean observations required to release it.
    pub good_windows: u32,
}

impl Default for QuarantineConfig {
    fn default() -> Self {
        Self { bad_windows: 3, good_windows: 5 }
    }
}

/// What one observation did to a node's quarantine state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Transition {
    /// State unchanged.
    None,
    /// The node just crossed the bad-streak threshold and is now fenced.
    Entered,
    /// The node just crossed the good-streak threshold and is readmitted.
    Released,
}

#[derive(Clone, Copy, Debug, Default)]
struct NodeState {
    quarantined: bool,
    bad_streak: u32,
    good_streak: u32,
}

/// The mutex-guarded gate state every clone shares.
#[derive(Debug, Default)]
struct GateInner {
    nodes: HashMap<usize, NodeState>,
    entered: u64,
    released: u64,
}

/// Per-node quarantine state machine with hysteresis. Cheap to clone —
/// clones share state, so shard workers and the tick thread see one
/// consistent quarantine roster.
#[derive(Clone, Debug)]
pub struct QuarantineGate {
    cfg: QuarantineConfig,
    inner: Arc<Mutex<GateInner>>,
}

impl QuarantineGate {
    /// A gate with the given hysteresis thresholds.
    pub fn new(cfg: QuarantineConfig) -> Self {
        Self { cfg, inner: Arc::new(Mutex::new(GateInner::default())) }
    }

    /// Feeds one observation for `node` (`bad` = the sample looked like
    /// garbage) and reports any state transition it caused. One atomic
    /// read-modify-write under the gate's lock: concurrent observers of
    /// the same node serialise, so each threshold crossing is reported
    /// exactly once.
    pub fn observe(&self, node: usize, bad: bool) -> Transition {
        let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let inner = &mut *guard;
        let s = inner.nodes.entry(node).or_default();
        if bad {
            s.bad_streak += 1;
            s.good_streak = 0;
            if !s.quarantined && s.bad_streak >= self.cfg.bad_windows {
                s.quarantined = true;
                inner.entered += 1;
                return Transition::Entered;
            }
        } else {
            s.good_streak += 1;
            s.bad_streak = 0;
            if s.quarantined && s.good_streak >= self.cfg.good_windows {
                s.quarantined = false;
                inner.released += 1;
                return Transition::Released;
            }
        }
        Transition::None
    }

    /// True while `node` is fenced off.
    pub fn is_quarantined(&self, node: usize) -> bool {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.nodes.get(&node).map(|s| s.quarantined).unwrap_or(false)
    }

    /// Nodes currently quarantined, ascending.
    pub fn quarantined_nodes(&self) -> Vec<usize> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut v: Vec<usize> =
            inner.nodes.iter().filter(|(_, s)| s.quarantined).map(|(n, _)| *n).collect();
        v.sort_unstable();
        v
    }

    /// Lifetime count of quarantine entries.
    pub fn entered(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).entered
    }

    /// Lifetime count of quarantine releases.
    pub fn released(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).released
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enters_only_after_consecutive_bad_windows() {
        let g = QuarantineGate::new(QuarantineConfig { bad_windows: 3, good_windows: 2 });
        assert_eq!(g.observe(0, true), Transition::None);
        assert_eq!(g.observe(0, true), Transition::None);
        assert!(!g.is_quarantined(0));
        assert_eq!(g.observe(0, true), Transition::Entered);
        assert!(g.is_quarantined(0));
        assert_eq!(g.entered(), 1);
    }

    #[test]
    fn a_clean_window_resets_the_bad_streak() {
        let g = QuarantineGate::new(QuarantineConfig { bad_windows: 3, good_windows: 2 });
        for _ in 0..10 {
            assert_eq!(g.observe(1, true), Transition::None);
            assert_eq!(g.observe(1, true), Transition::None);
            assert_eq!(g.observe(1, false), Transition::None);
        }
        assert!(!g.is_quarantined(1), "streak never reached 3 consecutively");
        assert_eq!(g.entered(), 0);
    }

    #[test]
    fn releases_only_after_consecutive_good_windows() {
        let g = QuarantineGate::new(QuarantineConfig { bad_windows: 2, good_windows: 3 });
        g.observe(2, true);
        assert_eq!(g.observe(2, true), Transition::Entered);
        assert_eq!(g.observe(2, false), Transition::None);
        assert_eq!(g.observe(2, false), Transition::None);
        // Relapse resets the good streak.
        assert_eq!(g.observe(2, true), Transition::None);
        assert!(g.is_quarantined(2));
        assert_eq!(g.observe(2, false), Transition::None);
        assert_eq!(g.observe(2, false), Transition::None);
        assert_eq!(g.observe(2, false), Transition::Released);
        assert!(!g.is_quarantined(2));
        assert_eq!(g.released(), 1);
    }

    #[test]
    fn alternating_observations_never_flap() {
        let g = QuarantineGate::new(QuarantineConfig::default());
        for i in 0..1000 {
            assert_eq!(g.observe(3, i % 2 == 0), Transition::None, "flapped at step {i}");
        }
        assert_eq!(g.entered() + g.released(), 0);
    }

    #[test]
    fn nodes_are_independent() {
        let g = QuarantineGate::new(QuarantineConfig { bad_windows: 1, good_windows: 1 });
        g.observe(0, true);
        assert!(g.is_quarantined(0));
        assert!(!g.is_quarantined(7));
        assert_eq!(g.quarantined_nodes(), vec![0]);
    }

    #[test]
    fn clones_share_state() {
        let g = QuarantineGate::new(QuarantineConfig { bad_windows: 2, good_windows: 1 });
        let other = g.clone();
        g.observe(5, true);
        assert_eq!(other.observe(5, true), Transition::Entered, "streak spans clones");
        assert!(g.is_quarantined(5), "entry is visible through every handle");
        assert_eq!(g.entered(), other.entered());
    }

    /// Two workers hammering the same node must produce exactly one
    /// `Entered` per quarantine episode — a torn read-modify-write
    /// would let both cross the threshold and double-count.
    #[test]
    fn concurrent_observers_never_double_fire_a_transition() {
        let g = QuarantineGate::new(QuarantineConfig { bad_windows: 4, good_windows: 3 });
        let episodes = 50;
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let g = g.clone();
                std::thread::spawn(move || {
                    let mut transitions = 0u64;
                    for _ in 0..episodes {
                        // Enough bad observations from each worker to
                        // cross the threshold, then enough good ones to
                        // release — interleaving only shifts *which*
                        // observation crosses, never how many do.
                        for _ in 0..8 {
                            if g.observe(0, true) == Transition::Entered {
                                transitions += 1;
                            }
                        }
                        for _ in 0..6 {
                            if g.observe(0, false) == Transition::Released {
                                transitions += 1;
                            }
                        }
                    }
                    transitions
                })
            })
            .collect();
        let reported: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // Exactly-once accounting: the transitions the workers saw are
        // the transitions the gate counted — a double fire would make
        // `reported` exceed the counters.
        assert_eq!(
            reported,
            g.entered() + g.released(),
            "every transition is reported exactly once, to exactly one observer"
        );
        // Both workers in their bad phase at the start guarantees 4
        // consecutive bad observations, so at least one entry happened.
        assert!(g.entered() >= 1, "the threshold was crossed at least once");
        // Entries and releases strictly alternate per node: a double
        // `Entered` (or `Released`) would break this.
        let (e, r) = (g.entered(), g.released());
        assert!(e == r || e == r + 1, "transitions alternate: entered={e} released={r}");
    }
}
