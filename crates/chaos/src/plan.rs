//! The fault plan: a seeded, serialisable schedule of injected faults.
//!
//! A [`FaultPlan`] is generated once from a [`ChaosConfig`] and a seed,
//! then *consumed read-only* by the injection layers — the plan is the
//! single source of truth for what goes wrong and when, which is what
//! makes a chaos run replayable: persist the plan as JSON
//! ([`FaultPlan::to_json`]), load it back ([`FaultPlan::from_json`]),
//! and the same faults hit the same targets at the same ticks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Every fault class the plan can schedule, spanning the three layer
/// boundaries: telemetry (what the fleet emits), serve (how the service
/// processes), store (what the disk does).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultKind {
    /// A node goes dark: no samples for the event's duration.
    NodeBlackout,
    /// A sensor freezes: one metric stripe repeats its last value.
    StuckSensor,
    /// A node spews garbage: alternating metrics emit non-physical
    /// values (±4.2e12) for the duration.
    GarbageSensor,
    /// A node's clock lags: sample timestamps fall behind fleet time by
    /// `magnitude` ticks.
    ClockSkew,
    /// Bursty sample loss: during the window, a deterministic subset of
    /// the fleet's samples never arrives.
    BurstLoss,
    /// Retransmission storm: each delivered sample arrives `magnitude`
    /// extra times, overflowing bounded ingest queues.
    QueueStorm,
    /// A worker shard panics mid-tick (`target` is the shard index).
    ShardPanic,
    /// The labelling oracle stops answering; the next `magnitude` calls
    /// fail before it recovers.
    OracleOutage,
    /// The store's write path fails for the next `magnitude` calls.
    StoreWriteError,
    /// The store's read path fails for the next `magnitude` calls.
    StoreReadError,
    /// A journal append is torn mid-write (partial flush, then error) —
    /// exercises torn-tail recovery.
    FsyncFailure,
}

impl FaultKind {
    /// Stable lowercase name used in events, counters and reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::NodeBlackout => "node_blackout",
            FaultKind::StuckSensor => "stuck_sensor",
            FaultKind::GarbageSensor => "garbage_sensor",
            FaultKind::ClockSkew => "clock_skew",
            FaultKind::BurstLoss => "burst_loss",
            FaultKind::QueueStorm => "queue_storm",
            FaultKind::ShardPanic => "shard_panic",
            FaultKind::OracleOutage => "oracle_outage",
            FaultKind::StoreWriteError => "store_write_error",
            FaultKind::StoreReadError => "store_read_error",
            FaultKind::FsyncFailure => "fsync_failure",
        }
    }
}

/// One scheduled fault: what, when, for how long, against whom.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Fault class.
    pub kind: FaultKind,
    /// Service tick at which the fault becomes active.
    pub tick: usize,
    /// Ticks the fault stays active (>= 1).
    pub duration: usize,
    /// Target index: fleet node for telemetry faults, shard for
    /// [`FaultKind::ShardPanic`], unused (0) otherwise.
    pub target: usize,
    /// Metric index for sensor faults (stripe origin), unused otherwise.
    pub metric: usize,
    /// Kind-specific magnitude: skew ticks, storm multiplicity, failed
    /// call count, loss modulus.
    pub magnitude: u64,
}

impl FaultEvent {
    /// True while the event is active at `tick`.
    pub fn active_at(&self, tick: usize) -> bool {
        tick >= self.tick && tick < self.tick + self.duration
    }
}

/// How much of each fault class a generated plan schedules. Counts are
/// absolute events per run; `0` disables a class. The default is a
/// "bad week in production": every class represented, nothing so hot
/// the service can't stay live.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Node blackout events.
    pub blackouts: usize,
    /// Stuck-sensor events.
    pub stuck_sensors: usize,
    /// Garbage-sensor events (these drive quarantine).
    pub garbage_sensors: usize,
    /// Clock-skew events.
    pub clock_skews: usize,
    /// Burst-loss windows.
    pub burst_losses: usize,
    /// Queue-storm windows.
    pub queue_storms: usize,
    /// Shard panics.
    pub shard_panics: usize,
    /// Oracle outages.
    pub oracle_outages: usize,
    /// Store write-path failures.
    pub store_write_errors: usize,
    /// Store read-path failures.
    pub store_read_errors: usize,
    /// Torn journal appends.
    pub fsync_failures: usize,
    /// Mean fault duration in ticks (actual durations are seeded draws
    /// in `[mean/2, mean*3/2]`).
    pub mean_duration: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            blackouts: 3,
            stuck_sensors: 2,
            garbage_sensors: 2,
            clock_skews: 2,
            burst_losses: 2,
            queue_storms: 1,
            shard_panics: 2,
            oracle_outages: 2,
            store_write_errors: 2,
            store_read_errors: 1,
            fsync_failures: 1,
            mean_duration: 30,
        }
    }
}

/// The full seeded fault schedule (see the module docs).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed the plan was generated from (recorded for provenance; replay
    /// uses the events, not the seed).
    pub seed: u64,
    /// Tick horizon the plan was generated for.
    pub horizon: usize,
    /// Fleet size the plan targets.
    pub n_nodes: usize,
    /// Shard count the plan targets.
    pub n_shards: usize,
    /// Scheduled faults, sorted by `(tick, kind, target)`.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (nothing injected).
    pub fn empty() -> Self {
        Self { seed: 0, horizon: 0, n_nodes: 0, n_shards: 0, events: Vec::new() }
    }

    /// Generates the schedule: every count in `cfg` becomes that many
    /// events with seeded ticks, targets, durations and magnitudes.
    /// Deterministic — equal arguments yield an identical plan.
    pub fn generate(
        cfg: &ChaosConfig,
        seed: u64,
        horizon: usize,
        n_nodes: usize,
        n_shards: usize,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let horizon = horizon.max(2);
        let n_nodes = n_nodes.max(1);
        let n_shards = n_shards.max(1);
        let mean = cfg.mean_duration.max(2);
        let mut events = Vec::new();
        let classes: [(FaultKind, usize); 11] = [
            (FaultKind::NodeBlackout, cfg.blackouts),
            (FaultKind::StuckSensor, cfg.stuck_sensors),
            (FaultKind::GarbageSensor, cfg.garbage_sensors),
            (FaultKind::ClockSkew, cfg.clock_skews),
            (FaultKind::BurstLoss, cfg.burst_losses),
            (FaultKind::QueueStorm, cfg.queue_storms),
            (FaultKind::ShardPanic, cfg.shard_panics),
            (FaultKind::OracleOutage, cfg.oracle_outages),
            (FaultKind::StoreWriteError, cfg.store_write_errors),
            (FaultKind::StoreReadError, cfg.store_read_errors),
            (FaultKind::FsyncFailure, cfg.fsync_failures),
        ];
        for (kind, count) in classes {
            for _ in 0..count {
                // Leave the final quarter of the horizon fault-free so
                // recovery (quarantine release, queue drain) is visible
                // within the run.
                let start_cap = (horizon * 3 / 4).max(1);
                let tick = rng.gen_range(0..start_cap);
                let duration = rng.gen_range(mean / 2..=mean + mean / 2).max(1);
                let target = match kind {
                    FaultKind::ShardPanic => rng.gen_range(0..n_shards),
                    _ => rng.gen_range(0..n_nodes),
                };
                // Metric stripes resolve modulo the catalog width at
                // injection time; 64 keeps the draw catalog-agnostic.
                let metric = rng.gen_range(0..64usize);
                let magnitude = match kind {
                    FaultKind::ClockSkew => rng.gen_range(1..=5u64),
                    FaultKind::QueueStorm => rng.gen_range(2..=4u64),
                    FaultKind::BurstLoss => rng.gen_range(2..=4u64),
                    FaultKind::OracleOutage => rng.gen_range(1..=4u64),
                    FaultKind::StoreWriteError | FaultKind::StoreReadError => {
                        rng.gen_range(1..=2u64)
                    }
                    _ => 1,
                };
                events.push(FaultEvent { kind, tick, duration, target, metric, magnitude });
            }
        }
        events.sort_by_key(|e| (e.tick, e.kind, e.target, e.metric, e.magnitude, e.duration));
        Self { seed, horizon, n_nodes, n_shards, events }
    }

    /// Total scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events that *become active* exactly at `tick`, in plan order.
    pub fn starting_at(&self, tick: usize) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.tick == tick)
    }

    /// Events of `kind` active at `tick`, in plan order.
    pub fn active(&self, kind: FaultKind, tick: usize) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.kind == kind && e.active_at(tick))
    }

    /// Serialises the plan to pretty JSON for replay.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Loads a plan previously saved with [`FaultPlan::to_json`].
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let cfg = ChaosConfig::default();
        let a = FaultPlan::generate(&cfg, 7, 300, 52, 4);
        let b = FaultPlan::generate(&cfg, 7, 300, 52, 4);
        assert_eq!(a, b, "equal seeds must give identical plans");
        let c = FaultPlan::generate(&cfg, 8, 300, 52, 4);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn every_configured_class_is_scheduled_in_bounds() {
        let cfg = ChaosConfig::default();
        let plan = FaultPlan::generate(&cfg, 42, 300, 52, 4);
        assert_eq!(plan.len(), 20, "default config sums to 20 events");
        for e in &plan.events {
            assert!(e.tick < 300 * 3 / 4, "events start inside the capped horizon");
            assert!(e.duration >= 1);
            match e.kind {
                FaultKind::ShardPanic => assert!(e.target < 4),
                _ => assert!(e.target < 52),
            }
        }
        for kind in [
            FaultKind::NodeBlackout,
            FaultKind::ShardPanic,
            FaultKind::OracleOutage,
            FaultKind::FsyncFailure,
        ] {
            assert!(plan.events.iter().any(|e| e.kind == kind), "missing {kind:?}");
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let plan = FaultPlan::generate(&ChaosConfig::default(), 3, 200, 16, 4);
        let json = plan.to_json().unwrap();
        let back = FaultPlan::from_json(&json).unwrap();
        assert_eq!(plan, back, "a replayed plan must match the original exactly");
    }

    #[test]
    fn active_and_starting_queries_agree_with_event_windows() {
        let e = FaultEvent {
            kind: FaultKind::NodeBlackout,
            tick: 10,
            duration: 5,
            target: 3,
            metric: 0,
            magnitude: 1,
        };
        let plan = FaultPlan { seed: 0, horizon: 100, n_nodes: 8, n_shards: 2, events: vec![e] };
        assert_eq!(plan.starting_at(10).count(), 1);
        assert_eq!(plan.starting_at(11).count(), 0);
        assert!(!e.active_at(9));
        assert!(e.active_at(10));
        assert!(e.active_at(14));
        assert!(!e.active_at(15));
        assert_eq!(plan.active(FaultKind::NodeBlackout, 12).count(), 1);
        assert_eq!(plan.active(FaultKind::StuckSensor, 12).count(), 0);
    }

    #[test]
    fn zeroed_config_schedules_nothing() {
        let cfg = ChaosConfig {
            blackouts: 0,
            stuck_sensors: 0,
            garbage_sensors: 0,
            clock_skews: 0,
            burst_losses: 0,
            queue_storms: 0,
            shard_panics: 0,
            oracle_outages: 0,
            store_write_errors: 0,
            store_read_errors: 0,
            fsync_failures: 0,
            mean_duration: 30,
        };
        assert!(FaultPlan::generate(&cfg, 1, 100, 8, 2).is_empty());
    }
}
