//! Bounded, monotone, deterministic retry backoff.
//!
//! Recovery paths (oracle calls, journal appends, store reads) retry
//! through a [`Backoff`]: exponential growth from a base delay up to a
//! hard cap, with seeded jitter so concurrent retriers de-synchronise
//! without sacrificing replayability. Delays are *simulated* — the
//! serving loop records them against its virtual clock instead of
//! sleeping — so chaos runs stay fast and deterministic.

use crate::mix;
use serde::{Deserialize, Serialize};

/// Deterministic exponential backoff policy.
///
/// The delay for attempt `k` (0-based) is
/// `min(base · 2^k + jitter(seed, k), cap)` where `jitter` is a pure
/// function of `(seed, attempt)` bounded by the un-jittered step, so the
/// schedule is monotone non-decreasing and never exceeds `cap_ns`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Backoff {
    /// First-retry delay in nanoseconds.
    pub base_ns: u64,
    /// Hard ceiling on any single delay.
    pub cap_ns: u64,
    /// Attempts allowed before giving up (`delay_ns` returns `None`).
    pub max_attempts: u32,
    /// Jitter seed; equal seeds give equal schedules.
    pub seed: u64,
}

impl Default for Backoff {
    fn default() -> Self {
        Self { base_ns: 1_000_000, cap_ns: 1_000_000_000, max_attempts: 5, seed: 0 }
    }
}

impl Backoff {
    /// A policy with the given shape, jittered by `seed`.
    pub fn new(base_ns: u64, cap_ns: u64, max_attempts: u32, seed: u64) -> Self {
        Self { base_ns, cap_ns, max_attempts, seed }
    }

    /// Delay before retry number `attempt` (0-based), or `None` once
    /// the attempt budget is exhausted.
    pub fn delay_ns(&self, attempt: u32) -> Option<u64> {
        if attempt >= self.max_attempts {
            return None;
        }
        let raw = self.base_ns.saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        // Jitter grows with the step so the schedule stays monotone:
        // step k's jitter ceiling (raw/2) never bridges the 2x gap to
        // step k+1's un-jittered floor.
        let jitter = if raw == 0 { 0 } else { mix(self.seed, attempt as u64) % (raw / 2 + 1) };
        Some(raw.saturating_add(jitter).min(self.cap_ns))
    }

    /// Total simulated delay if every allowed attempt is consumed.
    pub fn worst_case_total_ns(&self) -> u64 {
        (0..self.max_attempts).filter_map(|a| self.delay_ns(a)).fold(0, u64::saturating_add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_bounded_by_cap_and_budget() {
        let b = Backoff::new(1_000, 50_000, 8, 42);
        for a in 0..8 {
            let d = b.delay_ns(a).expect("within budget");
            assert!(d <= 50_000, "attempt {a} delay {d} exceeds cap");
            assert!(d >= 1_000, "attempt {a} delay {d} below base");
        }
        assert_eq!(b.delay_ns(8), None, "budget exhausted");
        assert_eq!(b.delay_ns(100), None);
    }

    #[test]
    fn schedule_is_monotone_non_decreasing() {
        for seed in 0..20u64 {
            let b = Backoff::new(500, 1_000_000, 12, seed);
            let delays: Vec<u64> = (0..12).filter_map(|a| b.delay_ns(a)).collect();
            for w in delays.windows(2) {
                assert!(w[1] >= w[0], "seed {seed}: schedule dipped {w:?}");
            }
        }
    }

    #[test]
    fn equal_seeds_give_equal_schedules() {
        let a = Backoff::new(1_000, 1 << 30, 10, 7);
        let b = Backoff::new(1_000, 1 << 30, 10, 7);
        let c = Backoff::new(1_000, 1 << 30, 10, 8);
        let sched = |p: &Backoff| (0..10).map(|k| p.delay_ns(k)).collect::<Vec<_>>();
        assert_eq!(sched(&a), sched(&b));
        assert_ne!(sched(&a), sched(&c), "different seed should jitter differently");
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let b = Backoff::new(u64::MAX / 2, u64::MAX, 64, 3);
        for a in 0..64 {
            assert!(b.delay_ns(a).unwrap() >= u64::MAX / 2, "saturating math keeps base floor");
        }
        assert!(b.worst_case_total_ns() == u64::MAX, "saturates, not wraps");
    }
}
