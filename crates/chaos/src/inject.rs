//! Telemetry-layer fault application.
//!
//! The [`TelemetryInjector`] sits between the replay source and the
//! ingest layer: every emitted sample passes through
//! [`TelemetryInjector::apply`], which consults the [`FaultPlan`] for
//! faults active at the current tick and mutates, delays, duplicates or
//! drops the sample accordingly. All decisions are pure functions of
//! the plan and `(node, tick)` — no RNG state is consumed at apply
//! time — so equal plans inject identical fault streams.

use crate::mix;
use crate::plan::{FaultKind, FaultPlan};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Non-physical reading injected by a garbage sensor. Far beyond the
/// detection threshold ([`GARBAGE_DETECT_ABS`]) but finite, so it
/// traverses feature extraction like real corrupt telemetry would.
pub const GARBAGE_VALUE: f64 = 4.2e12;

/// Detection threshold: a reading with magnitude above this is treated
/// as garbage by the serving layer's quarantine detector. Real metrics
/// in the generated campaigns stay orders of magnitude below it.
pub const GARBAGE_DETECT_ABS: f64 = 1.0e9;

/// What the injector decided for one sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectAction {
    /// Deliver the (possibly mutated) sample, plus this many storm
    /// duplicates (0 for a normal delivery).
    Deliver {
        /// Extra retransmitted copies to offer after the original.
        duplicates: usize,
    },
    /// The sample never arrives (blackout or burst loss).
    Drop,
}

/// Injection counters, serialisable into the service's chaos stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct InjectStats {
    /// Samples dropped by node blackouts.
    pub blackout_drops: u64,
    /// Samples dropped by burst loss windows.
    pub burst_drops: u64,
    /// Readings frozen by stuck sensors.
    pub stuck_readings: u64,
    /// Readings replaced with garbage.
    pub garbage_readings: u64,
    /// Samples whose timestamp was skewed backwards.
    pub skewed_samples: u64,
    /// Extra duplicate deliveries scheduled by queue storms.
    pub storm_duplicates: u64,
}

impl InjectStats {
    /// Total injected telemetry faults (sum of every counter).
    pub fn total(&self) -> u64 {
        self.blackout_drops
            + self.burst_drops
            + self.stuck_readings
            + self.garbage_readings
            + self.skewed_samples
            + self.storm_duplicates
    }
}

/// Applies a [`FaultPlan`]'s telemetry faults to a sample stream.
#[derive(Clone, Debug)]
pub struct TelemetryInjector {
    plan: FaultPlan,
    /// Last clean value per (node, metric), captured when a stuck-sensor
    /// event first touches the stripe.
    held: HashMap<(usize, usize), f64>,
    stats: InjectStats,
}

impl TelemetryInjector {
    /// An injector over `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self { plan, held: HashMap::new(), stats: InjectStats::default() }
    }

    /// The plan being applied.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injection counters so far.
    pub fn stats(&self) -> InjectStats {
        self.stats
    }

    /// Applies every telemetry fault active at `tick` to one sample.
    /// `at` is the sample's own timestamp (mutated by clock skew);
    /// `values` is its reading vector (mutated by sensor faults).
    pub fn apply(
        &mut self,
        node: usize,
        tick: usize,
        at: &mut usize,
        values: &mut [f64],
    ) -> InjectAction {
        // Losses first: a blacked-out node emits nothing, so sensor
        // faults on it are moot this tick.
        for e in self.plan.active(FaultKind::NodeBlackout, tick) {
            if e.target == node {
                self.stats.blackout_drops += 1;
                return InjectAction::Drop;
            }
        }
        for e in self.plan.active(FaultKind::BurstLoss, tick) {
            // Fleet-wide deterministic loss pattern: every `magnitude`-th
            // (node, tick) cell in a seeded interleave goes missing.
            let modulus = e.magnitude.max(2);
            if mix(self.plan.seed ^ e.tick as u64, (node + tick) as u64).is_multiple_of(modulus) {
                self.stats.burst_drops += 1;
                return InjectAction::Drop;
            }
        }

        for e in self.plan.active(FaultKind::StuckSensor, tick) {
            if e.target == node && !values.is_empty() {
                let m = e.metric % values.len();
                let held = *self.held.entry((node, m)).or_insert(values[m]);
                values[m] = held;
                self.stats.stuck_readings += 1;
            }
        }
        for e in self.plan.active(FaultKind::GarbageSensor, tick) {
            if e.target == node {
                // Garble alternating metrics starting at the stripe
                // origin — a node spewing garbage, not one flaky sensor.
                let n = values.len();
                for (i, v) in values.iter_mut().enumerate() {
                    if n == 0 || (i + e.metric) % 2 != 0 {
                        continue;
                    }
                    let sign =
                        if mix(e.metric as u64, (i ^ tick) as u64) & 1 == 0 { 1.0 } else { -1.0 };
                    *v = sign * GARBAGE_VALUE;
                    self.stats.garbage_readings += 1;
                }
            }
        }
        for e in self.plan.active(FaultKind::ClockSkew, tick) {
            if e.target == node {
                *at = at.saturating_sub(e.magnitude as usize);
                self.stats.skewed_samples += 1;
            }
        }

        let mut duplicates = 0usize;
        for e in self.plan.active(FaultKind::QueueStorm, tick) {
            duplicates += e.magnitude as usize;
        }
        self.stats.storm_duplicates += duplicates as u64;
        InjectAction::Deliver { duplicates }
    }

    /// True when `values` looks like sustained garbage (≥ 25 % of the
    /// readings beyond [`GARBAGE_DETECT_ABS`]). NaN gaps alone do not
    /// trip the detector — production telemetry legitimately has them.
    pub fn looks_garbage(values: &[f64]) -> bool {
        if values.is_empty() {
            return false;
        }
        let bad = values.iter().filter(|v| v.is_finite() && v.abs() > GARBAGE_DETECT_ABS).count();
        bad * 4 >= values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultEvent;

    fn plan_with(events: Vec<FaultEvent>) -> FaultPlan {
        FaultPlan { seed: 9, horizon: 100, n_nodes: 4, n_shards: 2, events }
    }

    fn ev(kind: FaultKind, tick: usize, duration: usize, target: usize) -> FaultEvent {
        FaultEvent { kind, tick, duration, target, metric: 1, magnitude: 2 }
    }

    #[test]
    fn blackout_drops_only_the_target_during_the_window() {
        let mut inj = TelemetryInjector::new(plan_with(vec![ev(FaultKind::NodeBlackout, 5, 3, 1)]));
        let mut vals = [1.0, 2.0];
        for tick in [5, 6, 7] {
            let mut at = tick;
            assert_eq!(inj.apply(1, tick, &mut at, &mut vals), InjectAction::Drop);
            assert_eq!(
                inj.apply(0, tick, &mut at, &mut vals),
                InjectAction::Deliver { duplicates: 0 },
                "other nodes deliver"
            );
        }
        let mut at = 8;
        assert_eq!(
            inj.apply(1, 8, &mut at, &mut vals),
            InjectAction::Deliver { duplicates: 0 },
            "window over: node recovers"
        );
        assert_eq!(inj.stats().blackout_drops, 3);
    }

    #[test]
    fn stuck_sensor_freezes_the_first_seen_value() {
        let mut inj = TelemetryInjector::new(plan_with(vec![ev(FaultKind::StuckSensor, 0, 10, 2)]));
        let mut at = 0;
        let mut vals = [10.0, 20.0, 30.0];
        inj.apply(2, 0, &mut at, &mut vals);
        assert_eq!(vals[1], 20.0, "first touch captures the live value");
        let mut vals = [11.0, 99.0, 31.0];
        inj.apply(2, 1, &mut at, &mut vals);
        assert_eq!(vals[1], 20.0, "subsequent readings are frozen");
        assert_eq!(vals[0], 11.0, "other metrics flow");
        assert_eq!(inj.stats().stuck_readings, 2);
    }

    #[test]
    fn garbage_is_detectable_and_counted() {
        let mut inj =
            TelemetryInjector::new(plan_with(vec![ev(FaultKind::GarbageSensor, 0, 5, 0)]));
        let mut at = 0;
        let mut vals = vec![1.0; 8];
        inj.apply(0, 0, &mut at, &mut vals);
        assert!(inj.stats().garbage_readings >= 4, "half the stripe garbled");
        assert!(TelemetryInjector::looks_garbage(&vals));
        assert!(!TelemetryInjector::looks_garbage(&[1.0, 2.0, f64::NAN, 3.0]), "NaN gaps pass");
    }

    #[test]
    fn clock_skew_rewinds_timestamps() {
        let mut inj = TelemetryInjector::new(plan_with(vec![ev(FaultKind::ClockSkew, 3, 2, 1)]));
        let mut at = 10;
        let mut vals = [0.0];
        inj.apply(1, 3, &mut at, &mut vals);
        assert_eq!(at, 8, "magnitude-2 skew rewinds by two ticks");
        let mut at = 1;
        inj.apply(1, 4, &mut at, &mut vals);
        assert_eq!(at, 0, "skew saturates at zero");
        assert_eq!(inj.stats().skewed_samples, 2);
    }

    #[test]
    fn storms_duplicate_and_burst_loss_drops_deterministically() {
        let mut a = TelemetryInjector::new(plan_with(vec![
            ev(FaultKind::QueueStorm, 0, 2, 0),
            ev(FaultKind::BurstLoss, 10, 5, 0),
        ]));
        let mut b = a.clone();
        let mut vals = [0.0];
        let mut at = 0;
        assert_eq!(a.apply(0, 0, &mut at, &mut vals), InjectAction::Deliver { duplicates: 2 });
        let mut outcomes = Vec::new();
        for tick in 10..15 {
            for node in 0..4 {
                let mut at = tick;
                outcomes.push(a.apply(node, tick, &mut at, &mut vals));
            }
        }
        assert!(outcomes.contains(&InjectAction::Drop), "some samples must be lost");
        assert!(outcomes.contains(&InjectAction::Deliver { duplicates: 0 }), "but not all of them");
        // Determinism: the clone reproduces the exact same decisions.
        let mut at = 0;
        b.apply(0, 0, &mut at, &mut vals);
        let mut again = Vec::new();
        for tick in 10..15 {
            for node in 0..4 {
                let mut at = tick;
                again.push(b.apply(node, tick, &mut at, &mut vals));
            }
        }
        assert_eq!(outcomes, again);
    }
}
