//! Connection-level fault plans for the network frontier: partial
//! frames, corrupt CRCs, slowloris pacing and reconnect storms.
//!
//! These faults live in their own plan type — not in [`FaultKind`] —
//! because [`FaultPlan`](crate::FaultPlan) is a serialized artifact
//! (chaos campaign JSON) and extending its enum would change the wire
//! shape of existing captures. Network faults are also injected at a
//! different layer: the deterministic wire client mangles its *own
//! output bytes* before they reach the gateway, exercising the server's
//! corruption, timeout and admission defences without touching the
//! telemetry content that the in-process injector owns.
//!
//! Like `FaultPlan`, generation is seeded and pure: equal arguments
//! yield an identical schedule, so a chaos soak can be replayed
//! exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What a network fault does to the client's byte stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NetFaultKind {
    /// Flip one byte of an encoded frame (the gateway must count it
    /// corrupt and resync, never desync or panic).
    CorruptCrc,
    /// Split a frame's bytes across this tick and the next (exercises
    /// partial-frame buffering).
    PartialFrame,
    /// Trickle the pending frame one byte per tick for `duration` ticks
    /// (must trip the gateway's slowloris reaper if sustained).
    Slowloris,
    /// Drop the connection and redial (exercises admission slot release
    /// and handshake resumption).
    Reconnect,
}

impl NetFaultKind {
    /// Stable short name (metric label, logs).
    pub fn name(&self) -> &'static str {
        match self {
            NetFaultKind::CorruptCrc => "corrupt_crc",
            NetFaultKind::PartialFrame => "partial_frame",
            NetFaultKind::Slowloris => "slowloris",
            NetFaultKind::Reconnect => "reconnect",
        }
    }
}

/// One scheduled network fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetFaultEvent {
    /// What happens.
    pub kind: NetFaultKind,
    /// Client tick the fault fires at.
    pub tick: usize,
    /// Ticks the fault stays active (meaningful for `Slowloris`).
    pub duration: usize,
}

/// How many of each fault class to schedule.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct NetChaosConfig {
    /// Frames with one byte flipped.
    pub corrupt_crcs: usize,
    /// Frames split across tick boundaries.
    pub partial_frames: usize,
    /// Slowloris episodes.
    pub slowloris: usize,
    /// Disconnect-and-redial episodes.
    pub reconnects: usize,
    /// Mean slowloris duration in ticks.
    pub mean_duration: usize,
}

impl NetChaosConfig {
    /// A light mixed plan: a few of everything.
    pub fn light() -> Self {
        Self { corrupt_crcs: 3, partial_frames: 3, slowloris: 1, reconnects: 2, mean_duration: 3 }
    }

    /// A reconnect storm: the client churns sessions hard.
    pub fn reconnect_storm(reconnects: usize) -> Self {
        Self { reconnects, ..Self::default() }
    }
}

/// A seeded, serializable schedule of network faults.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct NetFaultPlan {
    /// Seed the plan was generated from (provenance only).
    pub seed: u64,
    /// Tick horizon the plan was generated for.
    pub horizon: usize,
    /// Scheduled faults, sorted by `(tick, kind)`.
    pub events: Vec<NetFaultEvent>,
}

impl NetFaultPlan {
    /// An empty plan (a perfectly behaved client).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Generates the schedule. Deterministic — equal arguments yield an
    /// identical plan.
    pub fn generate(cfg: &NetChaosConfig, seed: u64, horizon: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let horizon = horizon.max(2);
        let mean = cfg.mean_duration.max(2);
        let mut events = Vec::new();
        let classes: [(NetFaultKind, usize); 4] = [
            (NetFaultKind::CorruptCrc, cfg.corrupt_crcs),
            (NetFaultKind::PartialFrame, cfg.partial_frames),
            (NetFaultKind::Slowloris, cfg.slowloris),
            (NetFaultKind::Reconnect, cfg.reconnects),
        ];
        for (kind, count) in classes {
            for _ in 0..count {
                // Like FaultPlan: keep the final quarter fault-free so
                // the session can finish cleanly within the horizon.
                let start_cap = (horizon * 3 / 4).max(1);
                let tick = rng.gen_range(0..start_cap);
                let duration = match kind {
                    NetFaultKind::Slowloris => rng.gen_range(mean / 2..=mean + mean / 2).max(1),
                    _ => 1,
                };
                events.push(NetFaultEvent { kind, tick, duration });
            }
        }
        events.sort_by_key(|e| (e.tick, e.kind, e.duration));
        Self { seed, horizon, events }
    }

    /// Total scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events firing exactly at `tick`, in plan order.
    pub fn at(&self, tick: usize) -> impl Iterator<Item = &NetFaultEvent> {
        self.events.iter().filter(move |e| e.tick == tick)
    }

    /// Serializes the plan to JSON.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parses a plan from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = NetChaosConfig::light();
        let a = NetFaultPlan::generate(&cfg, 42, 100);
        let b = NetFaultPlan::generate(&cfg, 42, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 9);
        let c = NetFaultPlan::generate(&cfg, 43, 100);
        assert_ne!(a, c, "a different seed moves the schedule");
    }

    #[test]
    fn events_stay_clear_of_the_final_quarter() {
        let plan = NetFaultPlan::generate(&NetChaosConfig::light(), 7, 100);
        assert!(plan.events.iter().all(|e| e.tick < 75));
    }

    #[test]
    fn json_round_trip_is_exact() {
        let plan = NetFaultPlan::generate(&NetChaosConfig::light(), 11, 64);
        let json = plan.to_json().unwrap();
        assert_eq!(NetFaultPlan::from_json(&json).unwrap(), plan);
    }

    #[test]
    fn empty_plan_fires_nothing() {
        let plan = NetFaultPlan::empty();
        assert!(plan.is_empty());
        assert_eq!(plan.at(0).count(), 0);
    }
}
