//! # alba-active
//!
//! Pool-based active learning for the ALBADross reproduction: the query
//! strategies of Sec. III-D (uncertainty, margin, entropy) and the Random /
//! Equal-App baselines of Sec. IV-D, the oracle-in-the-loop session runner
//! of Fig. 1, and aggregation utilities producing the paper's curves and
//! summary statistics.

#![warn(missing_docs)]

pub mod committee;
pub mod history;
pub mod learner;
pub mod noise;
pub mod strategy;
pub mod stream;

pub use committee::{vote_entropy, Committee, CommitteeQuery};
pub use history::{CurveBand, MethodCurves, QueryDrilldown};
pub use learner::{run_batched_session, run_session, QueryRecord, SessionConfig, SessionResult};
pub use noise::flip_labels;
pub use strategy::{
    entropy_score, margin_score, select, select_batch, uncertainty_score, SelectionContext,
    Strategy,
};
pub use stream::{run_stream_session, stream_config, StreamConfig, StreamResult};
