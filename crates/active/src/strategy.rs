//! Pool-based query strategies (paper Sec. III-D) and baselines
//! (Sec. IV-D).
//!
//! Given the current model's class probabilities over the unlabeled pool,
//! each strategy picks the next sample whose label to request:
//!
//! * **Uncertainty** (Eq. 1): maximise `U(x) = 1 - P(y|x)`.
//! * **Margin** (Eq. 3): minimise `M(x) = P(y1|x) - P(y2|x)`.
//! * **Entropy** (Eq. 4): maximise `H(x) = -Σ p log p`.
//! * **Random**: uniform choice (the standard AL baseline).
//! * **EqualApp**: cycle over application types, picking a random sample of
//!   the due application each query.

use alba_data::Matrix;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A query strategy or baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Classification uncertainty (Eq. 1).
    Uncertainty,
    /// Classification margin (Eq. 3).
    Margin,
    /// Classification entropy (Eq. 4).
    Entropy,
    /// Uniform random baseline.
    Random,
    /// One sample per application type per cycle.
    EqualApp,
}

impl Strategy {
    /// All strategies in display order (query strategies then baselines).
    pub const ALL: [Strategy; 5] = [
        Strategy::Uncertainty,
        Strategy::Margin,
        Strategy::Entropy,
        Strategy::Random,
        Strategy::EqualApp,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Uncertainty => "uncertainty",
            Strategy::Margin => "margin",
            Strategy::Entropy => "entropy",
            Strategy::Random => "random",
            Strategy::EqualApp => "equal_app",
        }
    }

    /// True for the informative (non-baseline) strategies.
    pub fn is_informative(self) -> bool {
        matches!(self, Strategy::Uncertainty | Strategy::Margin | Strategy::Entropy)
    }
}

/// Uncertainty score `1 - max_k p_k` (higher = more uncertain).
pub fn uncertainty_score(proba: &[f64]) -> f64 {
    1.0 - proba.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Margin score `p(1st) - p(2nd)` (lower = more uncertain).
pub fn margin_score(proba: &[f64]) -> f64 {
    let mut first = f64::NEG_INFINITY;
    let mut second = f64::NEG_INFINITY;
    for &p in proba {
        if p > first {
            second = first;
            first = p;
        } else if p > second {
            second = p;
        }
    }
    if second.is_finite() {
        first - second
    } else {
        first // single-class edge case
    }
}

/// Entropy score `-Σ p ln p` (higher = more uncertain).
pub fn entropy_score(proba: &[f64]) -> f64 {
    -proba.iter().filter(|&&p| p > 1e-300).map(|&p| p * p.ln()).sum::<f64>()
}

/// Context handed to [`select`] for one query.
pub struct SelectionContext<'a> {
    /// Class probabilities for every *remaining* pool sample (row i
    /// corresponds to `remaining[i]`).
    pub proba: &'a Matrix,
    /// Pool indices still unlabeled, parallel to `proba` rows.
    pub remaining: &'a [usize],
    /// Application name per pool index (full pool, indexed by pool index).
    pub apps: &'a [String],
    /// Distinct application names, in cycling order (for `EqualApp`).
    pub app_cycle: &'a [String],
    /// How many queries have been issued so far (drives the app cycle).
    pub query_number: usize,
}

/// Picks the position *within `remaining`* of the next sample to label.
///
/// Ties break toward the lower pool index, making informative strategies
/// fully deterministic; `Random` and `EqualApp` draw from `rng`.
///
/// # Panics
/// Panics when `remaining` is empty.
pub fn select(strategy: Strategy, ctx: &SelectionContext<'_>, rng: &mut StdRng) -> usize {
    assert!(!ctx.remaining.is_empty(), "no samples left to query");
    assert_eq!(ctx.proba.rows(), ctx.remaining.len(), "probability rows mismatch");
    match strategy {
        Strategy::Uncertainty => argbest(ctx, uncertainty_score, true),
        Strategy::Entropy => argbest(ctx, entropy_score, true),
        Strategy::Margin => argbest(ctx, margin_score, false),
        Strategy::Random => rng.gen_range(0..ctx.remaining.len()),
        Strategy::EqualApp => {
            // The application whose turn it is this query.
            let due = &ctx.app_cycle[ctx.query_number % ctx.app_cycle.len().max(1)];
            let candidates: Vec<usize> =
                (0..ctx.remaining.len()).filter(|&i| &ctx.apps[ctx.remaining[i]] == due).collect();
            if candidates.is_empty() {
                // The due application is exhausted; fall back to uniform.
                rng.gen_range(0..ctx.remaining.len())
            } else {
                candidates[rng.gen_range(0..candidates.len())]
            }
        }
    }
}

/// Picks the positions (within `remaining`) of the `batch` most informative
/// samples under `strategy` — batch-mode active learning, an extension the
/// paper lists as future work ("design a custom query strategy ... to
/// further reduce the necessary labeled samples"). For `Random` the batch
/// is uniform without replacement; for `EqualApp` it continues the
/// application cycle. Returned positions are unique and sorted descending
/// so callers can `swap_remove` them directly.
///
/// # Panics
/// Panics when `remaining` is empty or `batch` is zero.
pub fn select_batch(
    strategy: Strategy,
    ctx: &SelectionContext<'_>,
    rng: &mut StdRng,
    batch: usize,
) -> Vec<usize> {
    assert!(batch > 0, "batch must be positive");
    assert!(!ctx.remaining.is_empty(), "no samples left to query");
    let batch = batch.min(ctx.remaining.len());
    let mut picks: Vec<usize> = match strategy {
        Strategy::Uncertainty | Strategy::Entropy | Strategy::Margin => {
            let score: fn(&[f64]) -> f64 = match strategy {
                Strategy::Uncertainty => uncertainty_score,
                Strategy::Entropy => entropy_score,
                _ => margin_score,
            };
            let maximize = strategy != Strategy::Margin;
            let mut scored: Vec<(usize, f64)> =
                (0..ctx.remaining.len()).map(|i| (i, score(ctx.proba.row(i)))).collect();
            scored.sort_by(|a, b| {
                let ord = a.1.total_cmp(&b.1);
                if maximize {
                    ord.reverse().then(a.0.cmp(&b.0))
                } else {
                    ord.then(a.0.cmp(&b.0))
                }
            });
            scored[..batch].iter().map(|&(i, _)| i).collect()
        }
        Strategy::Random => {
            let mut idx: Vec<usize> = (0..ctx.remaining.len()).collect();
            shuffle_positions(&mut idx, rng);
            idx.truncate(batch);
            idx
        }
        Strategy::EqualApp => {
            let mut chosen: Vec<usize> = Vec::with_capacity(batch);
            for offset in 0..batch {
                let sub = SelectionContext {
                    proba: ctx.proba,
                    remaining: ctx.remaining,
                    apps: ctx.apps,
                    app_cycle: ctx.app_cycle,
                    query_number: ctx.query_number + offset,
                };
                // Retry until an unchosen position appears (bounded).
                let mut pos = select(Strategy::EqualApp, &sub, rng);
                let mut guard = 0;
                while chosen.contains(&pos) && guard < 64 {
                    pos = select(Strategy::EqualApp, &sub, rng);
                    guard += 1;
                }
                if chosen.contains(&pos) {
                    // Fall back to the first free position.
                    pos = (0..ctx.remaining.len())
                        .find(|p| !chosen.contains(p))
                        // alba-lint: allow(reachable-panic) reason="the batch clamp above guarantees a free slot"
                        .expect("batch <= remaining");
                }
                chosen.push(pos);
            }
            chosen
        }
    };
    picks.sort_unstable_by(|a, b| b.cmp(a));
    picks
}

fn shuffle_positions(idx: &mut [usize], rng: &mut StdRng) {
    use rand::seq::SliceRandom;
    idx.shuffle(rng);
}

fn argbest(ctx: &SelectionContext<'_>, score: impl Fn(&[f64]) -> f64, maximize: bool) -> usize {
    let mut best = 0usize;
    let mut best_score = score(ctx.proba.row(0));
    for i in 1..ctx.remaining.len() {
        let s = score(ctx.proba.row(i));
        let better = if maximize { s > best_score } else { s < best_score };
        if better {
            best = i;
            best_score = s;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// The worked example of Sec. III-D (Eq. 2).
    fn example_probs() -> Matrix {
        Matrix::from_rows(&[vec![0.1, 0.85, 0.05], vec![0.6, 0.3, 0.1], vec![0.39, 0.61, 0.0]])
    }

    fn ctx<'a>(
        proba: &'a Matrix,
        remaining: &'a [usize],
        apps: &'a [String],
        cycle: &'a [String],
        q: usize,
    ) -> SelectionContext<'a> {
        SelectionContext { proba, remaining, apps, app_cycle: cycle, query_number: q }
    }

    #[test]
    fn paper_example_scores() {
        let p = example_probs();
        // U_list = [0.15, 0.4, 0.39]
        assert!((uncertainty_score(p.row(0)) - 0.15).abs() < 1e-12);
        assert!((uncertainty_score(p.row(1)) - 0.4).abs() < 1e-12);
        assert!((uncertainty_score(p.row(2)) - 0.39).abs() < 1e-12);
        // M_list = [0.75, 0.3, 0.22]
        assert!((margin_score(p.row(0)) - 0.75).abs() < 1e-12);
        assert!((margin_score(p.row(1)) - 0.3).abs() < 1e-12);
        assert!((margin_score(p.row(2)) - 0.22).abs() < 1e-12);
        // H_list = [0.52, 0.90, 0.67] (natural log, rounded in the paper)
        assert!((entropy_score(p.row(0)) - 0.518).abs() < 5e-3);
        assert!((entropy_score(p.row(1)) - 0.898).abs() < 5e-3);
        assert!((entropy_score(p.row(2)) - 0.668).abs() < 5e-3);
    }

    #[test]
    fn paper_example_selections() {
        let p = example_probs();
        let remaining = [10, 11, 12];
        let apps: Vec<String> = vec!["a".into(); 13];
        let cycle = vec!["a".to_string()];
        let mut rng = StdRng::seed_from_u64(0);
        // Uncertainty picks the second sample, margin the third, entropy the second.
        let c = ctx(&p, &remaining, &apps, &cycle, 0);
        assert_eq!(select(Strategy::Uncertainty, &c, &mut rng), 1);
        assert_eq!(select(Strategy::Margin, &c, &mut rng), 2);
        assert_eq!(select(Strategy::Entropy, &c, &mut rng), 1);
    }

    #[test]
    fn random_is_uniform_ish_and_seed_deterministic() {
        let p = Matrix::filled(4, 2, 0.5);
        let remaining = [0, 1, 2, 3];
        let apps: Vec<String> = vec!["a".into(); 4];
        let cycle = vec!["a".to_string()];
        let mut counts = [0usize; 4];
        let mut rng = StdRng::seed_from_u64(5);
        for q in 0..4000 {
            let c = ctx(&p, &remaining, &apps, &cycle, q);
            counts[select(Strategy::Random, &c, &mut rng)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts {counts:?}");
        }
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let c = ctx(&p, &remaining, &apps, &cycle, 0);
        assert_eq!(select(Strategy::Random, &c, &mut r1), select(Strategy::Random, &c, &mut r2));
    }

    #[test]
    fn equal_app_cycles_applications() {
        let p = Matrix::filled(6, 2, 0.5);
        let remaining = [0, 1, 2, 3, 4, 5];
        let apps: Vec<String> =
            ["bt", "bt", "cg", "cg", "ft", "ft"].iter().map(|s| s.to_string()).collect();
        let cycle = vec!["bt".to_string(), "cg".to_string(), "ft".to_string()];
        let mut rng = StdRng::seed_from_u64(1);
        for q in 0..3 {
            let c = ctx(&p, &remaining, &apps, &cycle, q);
            let chosen = select(Strategy::EqualApp, &c, &mut rng);
            assert_eq!(apps[remaining[chosen]], cycle[q % 3]);
        }
    }

    #[test]
    fn equal_app_falls_back_when_app_exhausted() {
        let p = Matrix::filled(2, 2, 0.5);
        let remaining = [0, 1];
        let apps: Vec<String> = vec!["cg".into(), "cg".into()];
        let cycle = vec!["bt".to_string(), "cg".to_string()];
        let mut rng = StdRng::seed_from_u64(1);
        // Query 0 is bt's turn but no bt samples remain.
        let c = ctx(&p, &remaining, &apps, &cycle, 0);
        let chosen = select(Strategy::EqualApp, &c, &mut rng);
        assert!(chosen < 2);
    }

    #[test]
    fn margin_handles_single_class() {
        assert_eq!(margin_score(&[1.0]), 1.0);
    }

    #[test]
    fn batch_selection_returns_unique_descending_positions() {
        let p = example_probs();
        let remaining = [10, 11, 12];
        let apps: Vec<String> = vec!["a".into(); 13];
        let cycle = vec!["a".to_string()];
        let mut rng = StdRng::seed_from_u64(2);
        for strategy in Strategy::ALL {
            let c = ctx(&p, &remaining, &apps, &cycle, 0);
            let picks = select_batch(strategy, &c, &mut rng, 2);
            assert_eq!(picks.len(), 2, "{strategy:?}");
            assert!(picks[0] > picks[1], "{strategy:?}: {picks:?} must be descending");
        }
    }

    #[test]
    fn batch_of_one_matches_single_select_for_informative_strategies() {
        let p = example_probs();
        let remaining = [0, 1, 2];
        let apps: Vec<String> = vec!["a".into(); 3];
        let cycle = vec!["a".to_string()];
        let mut rng = StdRng::seed_from_u64(4);
        for strategy in [Strategy::Uncertainty, Strategy::Margin, Strategy::Entropy] {
            let c = ctx(&p, &remaining, &apps, &cycle, 0);
            let single = select(strategy, &c, &mut rng);
            let batch = select_batch(strategy, &c, &mut rng, 1);
            assert_eq!(batch, vec![single], "{strategy:?}");
        }
    }

    #[test]
    fn batch_is_clamped_to_pool_size() {
        let p = Matrix::filled(2, 2, 0.5);
        let remaining = [5, 9];
        let apps: Vec<String> = vec!["a".into(); 10];
        let cycle = vec!["a".to_string()];
        let mut rng = StdRng::seed_from_u64(8);
        let picks =
            select_batch(Strategy::Random, &ctx(&p, &remaining, &apps, &cycle, 0), &mut rng, 10);
        assert_eq!(picks.len(), 2);
    }

    #[test]
    fn uncertainty_batch_orders_by_score() {
        let p = example_probs(); // U = [0.15, 0.4, 0.39]
        let remaining = [0, 1, 2];
        let apps: Vec<String> = vec!["a".into(); 3];
        let cycle = vec!["a".to_string()];
        let mut rng = StdRng::seed_from_u64(1);
        let picks = select_batch(
            Strategy::Uncertainty,
            &ctx(&p, &remaining, &apps, &cycle, 0),
            &mut rng,
            2,
        );
        // Most uncertain are samples 1 (0.4) and 2 (0.39).
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2]);
    }

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(Strategy::Uncertainty.name(), "uncertainty");
        assert_eq!(Strategy::EqualApp.name(), "equal_app");
        assert!(Strategy::Margin.is_informative());
        assert!(!Strategy::Random.is_informative());
    }
}
