//! Aggregation of repeated active-learning sessions into the curves and
//! summary statistics the paper reports (mean trajectories with 95 %
//! confidence bands, samples-to-target counts, query drill-downs).

use crate::learner::SessionResult;
use alba_ml::mean_and_ci95;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A mean curve with symmetric 95 % CI half-widths, one entry per query
/// (entry 0 is the seed-only model).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CurveBand {
    /// Mean value per query count.
    pub mean: Vec<f64>,
    /// 95 % CI half-width per query count.
    pub ci95: Vec<f64>,
}

impl CurveBand {
    /// Aggregates per-session curves (ragged tails are truncated to the
    /// shortest session so every point averages the same repetitions).
    pub fn from_curves(curves: &[Vec<f64>]) -> Self {
        assert!(!curves.is_empty(), "no curves to aggregate");
        let len = curves.iter().map(Vec::len).min().unwrap_or(0);
        let mut mean = Vec::with_capacity(len);
        let mut ci95 = Vec::with_capacity(len);
        for i in 0..len {
            let vals: Vec<f64> = curves.iter().map(|c| c[i]).collect();
            let (m, ci) = mean_and_ci95(&vals);
            mean.push(m);
            ci95.push(ci);
        }
        Self { mean, ci95 }
    }

    /// First query count at which the mean curve reaches `target`.
    pub fn queries_to_reach(&self, target: f64) -> Option<usize> {
        self.mean.iter().position(|&v| v >= target)
    }

    /// Final mean value.
    pub fn last(&self) -> f64 {
        self.mean.last().copied().unwrap_or(0.0)
    }
}

/// The three aggregated trajectories for one method.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MethodCurves {
    /// Method name (strategy or baseline).
    pub name: String,
    /// Macro-F1 trajectory.
    pub f1: CurveBand,
    /// False-alarm-rate trajectory.
    pub false_alarm: CurveBand,
    /// Anomaly-miss-rate trajectory.
    pub miss_rate: CurveBand,
}

impl MethodCurves {
    /// Aggregates repeated sessions of one method.
    pub fn from_sessions(name: &str, sessions: &[SessionResult]) -> Self {
        let f1: Vec<Vec<f64>> = sessions.iter().map(SessionResult::f1_curve).collect();
        let fa: Vec<Vec<f64>> = sessions.iter().map(SessionResult::false_alarm_curve).collect();
        let miss: Vec<Vec<f64>> = sessions.iter().map(SessionResult::miss_rate_curve).collect();
        Self {
            name: name.to_string(),
            f1: CurveBand::from_curves(&f1),
            false_alarm: CurveBand::from_curves(&fa),
            miss_rate: CurveBand::from_curves(&miss),
        }
    }

    /// Mean queries needed to reach a target F1 across sessions
    /// (`None` when the majority of sessions never reach it).
    pub fn mean_queries_to_target(sessions: &[SessionResult], target: f64) -> Option<f64> {
        let hits: Vec<f64> =
            sessions.iter().filter_map(|s| s.queries_to_reach(target).map(|q| q as f64)).collect();
        if hits.len() * 2 <= sessions.len() {
            return None;
        }
        Some(hits.iter().sum::<f64>() / hits.len() as f64)
    }
}

/// Label/application drill-down of the first `n` queries (paper Fig. 4).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QueryDrilldown {
    /// Queries analysed per session.
    pub first_n: usize,
    /// Mean number of queried samples per class label (name -> count).
    pub label_counts: BTreeMap<String, f64>,
    /// Mean number of queried samples per application (name -> count).
    pub app_counts: BTreeMap<String, f64>,
}

impl QueryDrilldown {
    /// Computes the mean per-label and per-application counts over the
    /// first `n` queries of each session. `label_names` maps class id to
    /// name.
    pub fn compute(sessions: &[SessionResult], n: usize, label_names: &[String]) -> Self {
        assert!(!sessions.is_empty(), "no sessions");
        let mut label_counts: BTreeMap<String, f64> = BTreeMap::new();
        let mut app_counts: BTreeMap<String, f64> = BTreeMap::new();
        for s in sessions {
            for r in s.records.iter().take(n) {
                *label_counts.entry(label_names[r.true_label].clone()).or_default() += 1.0;
                *app_counts.entry(r.app.clone()).or_default() += 1.0;
            }
        }
        let k = sessions.len() as f64;
        label_counts.values_mut().for_each(|v| *v /= k);
        app_counts.values_mut().for_each(|v| *v /= k);
        Self { first_n: n, label_counts, app_counts }
    }

    /// The most-queried label.
    pub fn top_label(&self) -> Option<(&str, f64)> {
        self.label_counts.iter().max_by(|a, b| a.1.total_cmp(b.1)).map(|(k, &v)| (k.as_str(), v))
    }

    /// The most-queried application.
    pub fn top_app(&self) -> Option<(&str, f64)> {
        self.app_counts.iter().max_by(|a, b| a.1.total_cmp(b.1)).map(|(k, &v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learner::QueryRecord;
    use crate::strategy::Strategy;
    use alba_ml::Scores;

    fn scores(f1: f64) -> Scores {
        Scores { f1, false_alarm_rate: 1.0 - f1, anomaly_miss_rate: 0.5 * (1.0 - f1) }
    }

    fn session(f1s: &[f64], labels: &[usize], apps: &[&str]) -> SessionResult {
        SessionResult {
            strategy: Strategy::Uncertainty,
            initial_scores: scores(f1s[0]),
            records: f1s[1..]
                .iter()
                .zip(labels)
                .zip(apps)
                .enumerate()
                .map(|(i, ((&f1, &l), &a))| QueryRecord {
                    pool_index: i,
                    true_label: l,
                    app: a.into(),
                    scores: scores(f1),
                })
                .collect(),
        }
    }

    #[test]
    fn curve_band_averages() {
        let band = CurveBand::from_curves(&[vec![0.0, 0.5, 1.0], vec![0.2, 0.7, 0.8]]);
        assert_eq!(band.mean.len(), 3);
        assert!((band.mean[1] - 0.6).abs() < 1e-12);
        assert!(band.ci95[1] > 0.0);
        assert_eq!(band.queries_to_reach(0.9), Some(2));
        assert_eq!(band.queries_to_reach(0.95), None);
    }

    #[test]
    fn ragged_curves_truncate() {
        let band = CurveBand::from_curves(&[vec![0.1, 0.2], vec![0.3, 0.4, 0.5]]);
        assert_eq!(band.mean.len(), 2);
    }

    #[test]
    fn method_curves_aggregate_sessions() {
        let s1 = session(&[0.5, 0.8, 0.95], &[0, 1], &["bt", "cg"]);
        let s2 = session(&[0.6, 0.7, 0.99], &[0, 0], &["bt", "bt"]);
        let mc = MethodCurves::from_sessions("uncertainty", &[s1.clone(), s2.clone()]);
        assert_eq!(mc.name, "uncertainty");
        assert!((mc.f1.mean[0] - 0.55).abs() < 1e-12);
        assert_eq!(MethodCurves::mean_queries_to_target(&[s1, s2], 0.9), Some(2.0));
    }

    #[test]
    fn mean_queries_requires_majority() {
        let hit = session(&[0.5, 0.96], &[0], &["bt"]);
        let miss = session(&[0.5, 0.6], &[0], &["bt"]);
        assert_eq!(
            MethodCurves::mean_queries_to_target(&[hit.clone(), miss.clone(), miss.clone()], 0.95),
            None
        );
        assert!(MethodCurves::mean_queries_to_target(&[hit.clone(), hit, miss], 0.95).is_some());
    }

    #[test]
    fn drilldown_counts_labels_and_apps() {
        let names = vec!["healthy".to_string(), "dial".to_string()];
        let s1 = session(&[0.5, 0.6, 0.7, 0.8], &[0, 0, 1], &["Kripke", "BT", "Kripke"]);
        let s2 = session(&[0.5, 0.6, 0.7, 0.8], &[0, 1, 1], &["Kripke", "Kripke", "CG"]);
        let d = QueryDrilldown::compute(&[s1, s2], 3, &names);
        assert_eq!(d.top_label().unwrap().0, "healthy");
        assert_eq!(d.top_app().unwrap().0, "Kripke");
        assert!((d.label_counts["healthy"] - 1.5).abs() < 1e-12);
        assert!((d.app_counts["Kripke"] - 2.0).abs() < 1e-12);
    }
}
