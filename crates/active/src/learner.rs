//! The pool-based active-learning loop (paper Fig. 1).
//!
//! One *session* starts from a small labeled seed set (one sample per
//! application/anomaly pair in the paper), repeatedly (1) fits the
//! supervised model on the current labeled set, (2) scores it on a fixed
//! held-out test set, (3) asks the query strategy which unlabeled pool
//! sample to label next, and (4) obtains the label from the oracle (ground
//! truth in our simulated campaigns) — until a query budget or a target
//! F1-score is reached.

use crate::strategy::{SelectionContext, Strategy};
use alba_data::Dataset;
use alba_ml::{Classifier, ModelSpec, Scores};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One query: which pool sample was labeled and the scores after
/// re-training with it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QueryRecord {
    /// Index into the unlabeled pool dataset.
    pub pool_index: usize,
    /// The label the oracle revealed.
    pub true_label: usize,
    /// Application the sample came from (for Fig. 4 drill-downs).
    pub app: String,
    /// Test scores after re-training with this sample included.
    pub scores: Scores,
}

/// Full history of one active-learning session.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SessionResult {
    /// Strategy used.
    pub strategy: Strategy,
    /// Test scores of the model trained on the seed set alone.
    pub initial_scores: Scores,
    /// One record per query, in order.
    pub records: Vec<QueryRecord>,
}

impl SessionResult {
    /// F1 trajectory: `[initial, after query 1, after query 2, ...]`.
    pub fn f1_curve(&self) -> Vec<f64> {
        std::iter::once(self.initial_scores.f1)
            .chain(self.records.iter().map(|r| r.scores.f1))
            .collect()
    }

    /// False-alarm-rate trajectory (same convention as [`Self::f1_curve`]).
    pub fn false_alarm_curve(&self) -> Vec<f64> {
        std::iter::once(self.initial_scores.false_alarm_rate)
            .chain(self.records.iter().map(|r| r.scores.false_alarm_rate))
            .collect()
    }

    /// Anomaly-miss-rate trajectory.
    pub fn miss_rate_curve(&self) -> Vec<f64> {
        std::iter::once(self.initial_scores.anomaly_miss_rate)
            .chain(self.records.iter().map(|r| r.scores.anomaly_miss_rate))
            .collect()
    }

    /// Number of additional labeled samples needed to first reach
    /// `target` F1 (0 if the seed model already passes; `None` if never
    /// reached within the session).
    pub fn queries_to_reach(&self, target: f64) -> Option<usize> {
        if self.initial_scores.f1 >= target {
            return Some(0);
        }
        self.records.iter().position(|r| r.scores.f1 >= target).map(|p| p + 1)
    }
}

/// Configuration of one session.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Query strategy.
    pub strategy: Strategy,
    /// Maximum number of queries.
    pub budget: usize,
    /// Early-stop when the test F1 reaches this value.
    pub target_f1: Option<f64>,
    /// Seed for the strategy's stochastic choices and the model.
    pub seed: u64,
}

/// Runs one pool-based active-learning session.
///
/// `seed_set`, `pool` and `test` must share schema and encoder. The pool's
/// labels act as the human annotator: they are only read when the strategy
/// selects a sample ("the annotator provides the label upon request").
///
/// # Panics
/// Panics when the seed set is empty or schemas mismatch.
pub fn run_session(
    spec: &ModelSpec,
    seed_set: &Dataset,
    pool: &Dataset,
    test: &Dataset,
    config: &SessionConfig,
) -> SessionResult {
    run_batched_session(spec, seed_set, pool, test, config, 1)
}

/// Batch-mode variant of [`run_session`]: `batch_size` samples are queried
/// per model re-train (an ablation of the paper's one-sample protocol —
/// the annotator labels a batch, the model re-trains once). `config.budget`
/// still counts *labels*, not re-trains, and one [`QueryRecord`] is emitted
/// per label (every label of a batch carries the post-batch scores), so
/// histories stay comparable across batch sizes.
///
/// # Panics
/// Panics on an empty seed set, schema mismatch, or `batch_size == 0`.
pub fn run_batched_session(
    spec: &ModelSpec,
    seed_set: &Dataset,
    pool: &Dataset,
    test: &Dataset,
    config: &SessionConfig,
    batch_size: usize,
) -> SessionResult {
    assert!(batch_size > 0, "batch_size must be positive");
    assert!(!seed_set.is_empty(), "the labeled seed set cannot be empty");
    assert_eq!(seed_set.feature_names, pool.feature_names, "seed/pool schema mismatch");
    assert_eq!(seed_set.feature_names, test.feature_names, "seed/test schema mismatch");
    let n_classes = seed_set.n_classes();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut model = spec.with_seed(config.seed ^ 0xA1).build();

    // Per-round timings land in the global obs registry (no-ops when none
    // is installed), labelled by strategy so Fig. 3-style sweeps can be
    // broken down by query policy.
    let obs = alba_obs::global();
    let strategy_label: &[(&str, &str)] = &[("strategy", config.strategy.name())];
    let labels_c = obs.counter("al_labels_total", strategy_label);

    // Mutable labeled state.
    let mut labeled_x = seed_set.x.clone();
    let mut labeled_y = seed_set.y.clone();

    // Pool bookkeeping.
    let mut remaining: Vec<usize> = (0..pool.len()).collect();
    let pool_apps: Vec<String> = pool.meta.iter().map(|m| m.app.clone()).collect();
    let app_cycle: Vec<String> = pool.applications();

    let evaluate = |model: &dyn Classifier| -> Scores {
        let pred = model.predict(&test.x);
        Scores::compute(&test.y, &pred, n_classes)
    };

    {
        let _span = obs.span("al_retrain_ns", strategy_label);
        model.fit(&labeled_x, &labeled_y, n_classes);
    }
    let initial_scores = {
        let _span = obs.span("al_eval_ns", strategy_label);
        evaluate(model.as_ref())
    };
    let mut records = Vec::with_capacity(config.budget);
    let mut reached = config.target_f1.is_some_and(|t| initial_scores.f1 >= t);
    let mut labels_used = 0usize;

    while labels_used < config.budget && !reached && !remaining.is_empty() {
        // Strategy scores the remaining pool under the current model.
        let query_span = obs.span("al_query_ns", strategy_label);
        let pool_x = pool.x.select_rows(&remaining);
        let proba = model.predict_proba(&pool_x);
        let ctx = SelectionContext {
            proba: &proba,
            remaining: &remaining,
            apps: &pool_apps,
            app_cycle: &app_cycle,
            query_number: labels_used,
        };
        let take = batch_size.min(config.budget - labels_used);
        // Positions come back sorted descending, so swap_remove is safe.
        let positions = crate::strategy::select_batch(config.strategy, &ctx, &mut rng, take);
        query_span.finish();
        let mut batch_indices = Vec::with_capacity(positions.len());
        for pos in positions {
            let pool_index = remaining.swap_remove(pos);
            labeled_x.push_row(pool.x.row(pool_index));
            labeled_y.push(pool.y[pool_index]);
            batch_indices.push(pool_index);
        }
        // One re-train per batch; the oracle labeled the whole batch.
        {
            let _span = obs.span("al_retrain_ns", strategy_label);
            model.fit(&labeled_x, &labeled_y, n_classes);
        }
        let scores = {
            let _span = obs.span("al_eval_ns", strategy_label);
            evaluate(model.as_ref())
        };
        if config.target_f1.is_some_and(|t| scores.f1 >= t) {
            reached = true;
        }
        for pool_index in batch_indices {
            records.push(QueryRecord {
                pool_index,
                true_label: pool.y[pool_index],
                app: pool.meta[pool_index].app.clone(),
                scores,
            });
            labels_used += 1;
            labels_c.inc();
        }
    }

    SessionResult { strategy: config.strategy, initial_scores, records }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alba_data::{LabelEncoder, Matrix, SampleMeta};
    use alba_ml::ForestParams;

    fn meta(app: &str) -> SampleMeta {
        SampleMeta {
            app: app.into(),
            input_deck: 0,
            run_id: 0,
            node: 0,
            node_count: 1,
            intensity_pct: 0,
        }
    }

    /// Builds (seed, pool, test) on two separable blobs with a handful of
    /// seed samples.
    fn toy_problem() -> (Dataset, Dataset, Dataset) {
        let enc = LabelEncoder::from_names(&["healthy", "anom"]);
        let features = vec!["f0".to_string(), "f1".to_string()];
        let make = |n: usize, offset: usize| -> Dataset {
            let mut rows = Vec::new();
            let mut y = Vec::new();
            let mut metas = Vec::new();
            for i in 0..n {
                let j = i + offset;
                let jit = ((j * 29) % 23) as f64 * 0.01;
                if j.is_multiple_of(2) {
                    rows.push(vec![jit, 0.1 + jit]);
                    y.push(0);
                } else {
                    rows.push(vec![1.0 - jit, 0.9]);
                    y.push(1);
                }
                metas.push(meta(if j % 4 < 2 { "bt" } else { "cg" }));
            }
            Dataset::new(Matrix::from_rows(&rows), y, enc.clone(), metas, features.clone())
        };
        (make(4, 0), make(60, 100), make(40, 1000))
    }

    fn spec() -> ModelSpec {
        ModelSpec::Forest(ForestParams { n_estimators: 10, ..ForestParams::default() })
    }

    fn config(strategy: Strategy) -> SessionConfig {
        SessionConfig { strategy, budget: 10, target_f1: None, seed: 3 }
    }

    #[test]
    fn session_runs_and_records_queries() {
        let (seed, pool, test) = toy_problem();
        let res = run_session(&spec(), &seed, &pool, &test, &config(Strategy::Uncertainty));
        assert_eq!(res.records.len(), 10);
        assert_eq!(res.f1_curve().len(), 11);
        // Separable problem: scores should be high throughout.
        assert!(res.records.last().unwrap().scores.f1 > 0.9);
        // Pool indices are unique.
        let mut idx: Vec<usize> = res.records.iter().map(|r| r.pool_index).collect();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), 10);
    }

    #[test]
    fn target_f1_stops_early() {
        let (seed, pool, test) = toy_problem();
        let cfg = SessionConfig {
            strategy: Strategy::Uncertainty,
            budget: 50,
            target_f1: Some(0.9),
            seed: 3,
        };
        let res = run_session(&spec(), &seed, &pool, &test, &cfg);
        assert!(res.records.len() < 50, "should stop early on a separable problem");
        assert!(res.queries_to_reach(0.9).is_some());
    }

    #[test]
    fn budget_larger_than_pool_is_clamped() {
        let (seed, pool, test) = toy_problem();
        let cfg =
            SessionConfig { strategy: Strategy::Random, budget: 1000, target_f1: None, seed: 3 };
        let res = run_session(&spec(), &seed, &pool, &test, &cfg);
        assert_eq!(res.records.len(), pool.len());
    }

    #[test]
    fn sessions_are_deterministic() {
        let (seed, pool, test) = toy_problem();
        let a = run_session(&spec(), &seed, &pool, &test, &config(Strategy::Random));
        let b = run_session(&spec(), &seed, &pool, &test, &config(Strategy::Random));
        let ai: Vec<usize> = a.records.iter().map(|r| r.pool_index).collect();
        let bi: Vec<usize> = b.records.iter().map(|r| r.pool_index).collect();
        assert_eq!(ai, bi);
    }

    #[test]
    fn oracle_labels_match_pool_ground_truth() {
        let (seed, pool, test) = toy_problem();
        let res = run_session(&spec(), &seed, &pool, &test, &config(Strategy::Entropy));
        for r in &res.records {
            assert_eq!(r.true_label, pool.y[r.pool_index]);
            assert_eq!(r.app, pool.meta[r.pool_index].app);
        }
    }

    #[test]
    fn queries_to_reach_counts_from_initial() {
        let (seed, pool, test) = toy_problem();
        let res = run_session(&spec(), &seed, &pool, &test, &config(Strategy::Margin));
        if res.initial_scores.f1 >= 0.5 {
            assert_eq!(res.queries_to_reach(0.5), Some(0));
        }
        assert_eq!(res.queries_to_reach(2.0), None, "F1 cannot exceed 1");
    }

    #[test]
    fn batched_session_counts_labels_not_retrains() {
        let (seed, pool, test) = toy_problem();
        let res = run_batched_session(
            &spec(),
            &seed,
            &pool,
            &test,
            &SessionConfig {
                strategy: Strategy::Uncertainty,
                budget: 10,
                target_f1: None,
                seed: 3,
            },
            4,
        );
        assert_eq!(res.records.len(), 10, "budget counts labels");
        // Labels within a batch share post-batch scores.
        let s0 = res.records[0].scores;
        let s3 = res.records[3].scores;
        assert_eq!(s0, s3, "first batch of 4 shares one evaluation");
        // Pool indices are unique.
        let mut idx: Vec<usize> = res.records.iter().map(|r| r.pool_index).collect();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), 10);
    }

    #[test]
    fn batch_one_equals_run_session() {
        let (seed, pool, test) = toy_problem();
        let cfg = config(Strategy::Margin);
        let a = run_session(&spec(), &seed, &pool, &test, &cfg);
        let b = run_batched_session(&spec(), &seed, &pool, &test, &cfg, 1);
        let ai: Vec<usize> = a.records.iter().map(|r| r.pool_index).collect();
        let bi: Vec<usize> = b.records.iter().map(|r| r.pool_index).collect();
        assert_eq!(ai, bi);
    }

    #[test]
    fn all_strategies_run() {
        let (seed, pool, test) = toy_problem();
        for s in Strategy::ALL {
            let res = run_session(&spec(), &seed, &pool, &test, &config(s));
            assert_eq!(res.strategy, s);
            assert!(!res.records.is_empty());
        }
    }
}
