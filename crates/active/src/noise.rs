//! Deterministic label contamination for robustness sweeps.
//!
//! Production HPC labels come from operators and are not pristine;
//! ALPBench-style grid comparisons therefore want a *contamination* axis
//! that corrupts a controlled fraction of pool labels before a session
//! runs. The flipper here is a pure function of `(labels, seed)`: it
//! walks the pool once with a splitmix64 stream, flips each label with
//! probability `rate_pct / 100`, and replaces a flipped label with a
//! *different* class chosen uniformly from the remaining ones — so the
//! corruption is reproducible bit-for-bit across runs, worker counts
//! and resumes.

/// One step of the splitmix64 sequence (same generator the trace and
/// telemetry layers use for cheap deterministic streams).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Flips roughly `rate_pct`% of `labels` to a different class drawn from
/// `0..n_classes`, deterministically from `seed`. Returns how many
/// labels were actually flipped. A rate of 0, or fewer than two
/// classes, leaves the pool untouched.
pub fn flip_labels(labels: &mut [usize], n_classes: usize, rate_pct: f64, seed: u64) -> usize {
    if rate_pct <= 0.0 || n_classes < 2 {
        return 0;
    }
    let mut state = seed ^ 0xC0_FFEE;
    let threshold = (rate_pct / 100.0).min(1.0);
    let mut flipped = 0usize;
    for label in labels.iter_mut() {
        let roll = splitmix64(&mut state);
        // Map the top 53 bits onto [0, 1): exact for every threshold
        // representable at f64 precision.
        let u = (roll >> 11) as f64 / (1u64 << 53) as f64;
        if u < threshold {
            // Choose uniformly among the n-1 other classes.
            let offset = 1 + (splitmix64(&mut state) % (n_classes as u64 - 1)) as usize;
            *label = (*label + offset) % n_classes;
            flipped += 1;
        }
    }
    flipped
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_flips_nothing() {
        let mut y = vec![0, 1, 2, 3, 0, 1];
        let orig = y.clone();
        assert_eq!(flip_labels(&mut y, 4, 0.0, 7), 0);
        assert_eq!(y, orig);
    }

    #[test]
    fn single_class_pools_are_untouchable() {
        let mut y = vec![0; 64];
        assert_eq!(flip_labels(&mut y, 1, 50.0, 7), 0);
        assert!(y.iter().all(|&l| l == 0));
    }

    #[test]
    fn flips_are_deterministic_in_seed() {
        let base: Vec<usize> = (0..512).map(|i| i % 5).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        let na = flip_labels(&mut a, 5, 20.0, 1234);
        let nb = flip_labels(&mut b, 5, 20.0, 1234);
        assert_eq!(na, nb);
        assert_eq!(a, b, "equal seeds corrupt identically");

        let mut c = base.clone();
        flip_labels(&mut c, 5, 20.0, 4321);
        assert_ne!(a, c, "different seeds corrupt differently");
    }

    #[test]
    fn flipped_labels_change_class_and_stay_in_range() {
        let base: Vec<usize> = (0..1000).map(|i| i % 3).collect();
        let mut y = base.clone();
        let flipped = flip_labels(&mut y, 3, 30.0, 99);
        let changed = y.iter().zip(&base).filter(|(a, b)| a != b).count();
        assert_eq!(flipped, changed, "count reports exactly the changed labels");
        assert!(y.iter().all(|&l| l < 3), "flips stay inside the class set");
        // 30% of 1000 with a pinch of randomness: broad sanity band.
        assert!((150..=450).contains(&flipped), "got {flipped} flips at 30%");
    }

    #[test]
    fn full_rate_flips_everything() {
        let mut y = vec![0usize; 100];
        let flipped = flip_labels(&mut y, 2, 100.0, 5);
        assert_eq!(flipped, 100);
        assert!(y.iter().all(|&l| l == 1), "binary flip at 100% inverts every label");
    }
}
