//! Stream-based selective sampling (paper Sec. II-A).
//!
//! The paper reviews three active-learning scenarios — membership query
//! synthesis, *stream-based selective sampling*, and pool-based sampling —
//! and picks pool-based because production telemetry arrives in bulk. The
//! stream scenario is still operationally interesting (label-on-arrival at
//! ingest time, no pool storage), so this module implements it as a
//! counterpart to [`crate::learner`]: unlabeled samples are shown to the
//! learner one at a time and it decides, against an uncertainty threshold,
//! whether to ask the annotator for the label.

use crate::learner::{QueryRecord, SessionConfig, SessionResult};
use crate::strategy::{entropy_score, margin_score, uncertainty_score, Strategy};
use alba_data::Dataset;
use alba_ml::{Classifier, ModelSpec, Scores};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of a stream-based session.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Strategy whose score is thresholded. `Random` degenerates to
    /// labeling a fixed fraction of the stream; `EqualApp` is not
    /// meaningful in the stream setting and is rejected.
    pub strategy: Strategy,
    /// Query threshold: for uncertainty/entropy a sample is labeled when
    /// its score *exceeds* the threshold; for margin when it falls *below*.
    /// For `Random`, the probability of labeling each sample.
    pub threshold: f64,
    /// Maximum labels to request (annotator budget).
    pub budget: usize,
    /// Seed (stream order and stochastic choices).
    pub seed: u64,
}

/// Outcome of one stream pass.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StreamResult {
    /// The standard session history (one record per *label*).
    pub session: SessionResult,
    /// Samples that streamed past without a label request.
    pub skipped: usize,
    /// Samples inspected in total.
    pub seen: usize,
}

impl StreamResult {
    /// Fraction of the stream that was sent to the annotator.
    pub fn query_rate(&self) -> f64 {
        if self.seen == 0 {
            return 0.0;
        }
        self.session.records.len() as f64 / self.seen as f64
    }
}

/// Runs one stream-based selective-sampling pass over the pool (presented
/// in a seeded random order, mimicking arrival order). The model re-trains
/// after every accepted label, exactly as in the pool-based loop.
///
/// # Panics
/// Panics on an empty seed set, schema mismatch, or `EqualApp` strategy.
pub fn run_stream_session(
    spec: &ModelSpec,
    seed_set: &Dataset,
    stream: &Dataset,
    test: &Dataset,
    config: &StreamConfig,
) -> StreamResult {
    assert!(!seed_set.is_empty(), "the labeled seed set cannot be empty");
    assert_eq!(seed_set.feature_names, stream.feature_names, "seed/stream schema mismatch");
    assert_eq!(seed_set.feature_names, test.feature_names, "seed/test schema mismatch");
    assert!(config.strategy != Strategy::EqualApp, "EqualApp has no stream-based formulation");
    let n_classes = seed_set.n_classes();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut model = spec.with_seed(config.seed ^ 0xA1).build();

    let mut labeled_x = seed_set.x.clone();
    let mut labeled_y = seed_set.y.clone();

    // Arrival order.
    let mut order: Vec<usize> = (0..stream.len()).collect();
    order.shuffle(&mut rng);

    let evaluate = |model: &dyn Classifier| -> Scores {
        Scores::compute(&test.y, &model.predict(&test.x), n_classes)
    };
    model.fit(&labeled_x, &labeled_y, n_classes);
    let initial_scores = evaluate(model.as_ref());

    let mut records = Vec::new();
    let mut skipped = 0usize;
    let mut seen = 0usize;
    for &idx in &order {
        if records.len() >= config.budget {
            break;
        }
        seen += 1;
        let x_row = stream.x.select_rows(&[idx]);
        let proba = model.predict_proba(&x_row);
        let wants_label = match config.strategy {
            Strategy::Uncertainty => uncertainty_score(proba.row(0)) > config.threshold,
            Strategy::Entropy => entropy_score(proba.row(0)) > config.threshold,
            Strategy::Margin => margin_score(proba.row(0)) < config.threshold,
            Strategy::Random => {
                use rand::Rng;
                rng.gen::<f64>() < config.threshold
            }
            Strategy::EqualApp => unreachable!("rejected above"),
        };
        if !wants_label {
            skipped += 1;
            continue;
        }
        labeled_x.push_row(stream.x.row(idx));
        labeled_y.push(stream.y[idx]);
        model.fit(&labeled_x, &labeled_y, n_classes);
        records.push(QueryRecord {
            pool_index: idx,
            true_label: stream.y[idx],
            app: stream.meta[idx].app.clone(),
            scores: evaluate(model.as_ref()),
        });
    }

    StreamResult {
        session: SessionResult { strategy: config.strategy, initial_scores, records },
        skipped,
        seen,
    }
}

/// Convenience: derives a [`StreamConfig`] from a pool [`SessionConfig`]
/// with a given threshold.
pub fn stream_config(config: &SessionConfig, threshold: f64) -> StreamConfig {
    StreamConfig { strategy: config.strategy, threshold, budget: config.budget, seed: config.seed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alba_data::{LabelEncoder, Matrix, SampleMeta};
    use alba_ml::ForestParams;

    fn meta(app: &str) -> SampleMeta {
        SampleMeta {
            app: app.into(),
            input_deck: 0,
            run_id: 0,
            node: 0,
            node_count: 1,
            intensity_pct: 0,
        }
    }

    fn toy(n: usize, offset: usize) -> Dataset {
        let enc = LabelEncoder::from_names(&["healthy", "anom"]);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut metas = Vec::new();
        for i in 0..n {
            let j = i + offset;
            let jit = ((j * 29) % 23) as f64 * 0.01;
            if j.is_multiple_of(2) {
                rows.push(vec![jit, 0.1 + jit]);
                y.push(0);
            } else {
                rows.push(vec![1.0 - jit, 0.9]);
                y.push(1);
            }
            metas.push(meta("bt"));
        }
        Dataset::new(Matrix::from_rows(&rows), y, enc, metas, vec!["f0".into(), "f1".into()])
    }

    fn spec() -> ModelSpec {
        ModelSpec::Forest(ForestParams { n_estimators: 8, ..ForestParams::default() })
    }

    #[test]
    fn stream_respects_budget_and_counts() {
        let seed = toy(6, 0);
        let stream = toy(60, 100);
        let test = toy(30, 1000);
        let res = run_stream_session(
            &spec(),
            &seed,
            &stream,
            &test,
            &StreamConfig { strategy: Strategy::Random, threshold: 1.0, budget: 10, seed: 3 },
        );
        // threshold 1.0 on Random = label everything until the budget.
        assert_eq!(res.session.records.len(), 10);
        assert_eq!(res.skipped, 0);
        assert_eq!(res.seen, 10);
        assert!((res.query_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn high_threshold_skips_confident_samples() {
        let seed = toy(20, 0);
        let stream = toy(60, 100);
        let test = toy(30, 1000);
        // On separable data the model is confident; an extreme uncertainty
        // threshold should label (almost) nothing.
        let res = run_stream_session(
            &spec(),
            &seed,
            &stream,
            &test,
            &StreamConfig { strategy: Strategy::Uncertainty, threshold: 0.95, budget: 20, seed: 5 },
        );
        assert!(res.session.records.len() <= 2, "labeled {}", res.session.records.len());
        assert!(res.skipped >= 58 - 2);
    }

    #[test]
    fn margin_threshold_direction_is_respected() {
        let seed = toy(4, 0);
        let stream = toy(60, 100);
        let test = toy(30, 1000);
        // Margin labels when the score falls BELOW the threshold: an
        // impossible threshold (0) labels nothing, a permissive one (>1,
        // since margins live in [0,1]) labels everything up to the budget.
        let strict = run_stream_session(
            &spec(),
            &seed,
            &stream,
            &test,
            &StreamConfig { strategy: Strategy::Margin, threshold: 0.0, budget: 15, seed: 7 },
        );
        assert!(strict.session.records.is_empty());
        assert_eq!(strict.skipped, strict.seen);
        let permissive = run_stream_session(
            &spec(),
            &seed,
            &stream,
            &test,
            &StreamConfig { strategy: Strategy::Margin, threshold: 1.01, budget: 15, seed: 7 },
        );
        assert_eq!(permissive.session.records.len(), 15);
        let last = permissive.session.records.last().unwrap().scores.f1;
        assert!(last >= permissive.session.initial_scores.f1 - 0.05);
    }

    #[test]
    fn deterministic_given_seed() {
        let seed = toy(6, 0);
        let stream = toy(40, 100);
        let test = toy(20, 1000);
        let cfg =
            StreamConfig { strategy: Strategy::Uncertainty, threshold: 0.2, budget: 8, seed: 11 };
        let a = run_stream_session(&spec(), &seed, &stream, &test, &cfg);
        let b = run_stream_session(&spec(), &seed, &stream, &test, &cfg);
        let ai: Vec<usize> = a.session.records.iter().map(|r| r.pool_index).collect();
        let bi: Vec<usize> = b.session.records.iter().map(|r| r.pool_index).collect();
        assert_eq!(ai, bi);
    }

    #[test]
    #[should_panic(expected = "EqualApp has no stream-based formulation")]
    fn equal_app_is_rejected() {
        let seed = toy(4, 0);
        let stream = toy(10, 100);
        let test = toy(10, 1000);
        let _ = run_stream_session(
            &spec(),
            &seed,
            &stream,
            &test,
            &StreamConfig { strategy: Strategy::EqualApp, threshold: 0.5, budget: 5, seed: 1 },
        );
    }
}
