//! Query-by-committee (Freund et al., cited as [26] in the paper's
//! background on selective sampling).
//!
//! A committee of diverse models votes on every pool sample; the next label
//! request goes to the sample with the highest *vote disagreement*. This is
//! the other classic informative-query family beside the probability-based
//! strategies of Sec. III-D, and serves as an extension ablation: on a
//! bagged ensemble the committee is simply the ensemble members themselves.

use alba_data::Matrix;
use alba_ml::{Classifier, ModelSpec};
use serde::{Deserialize, Serialize};

/// Vote-entropy disagreement of committee predictions for one sample.
///
/// `votes[k]` counts committee members voting class `k`;
/// the score is the Shannon entropy of the vote distribution (0 =
/// unanimous, ln(committee size) = maximally split).
pub fn vote_entropy(votes: &[usize]) -> f64 {
    let total: usize = votes.iter().sum();
    if total == 0 {
        return 0.0;
    }
    -votes
        .iter()
        .filter(|&&v| v > 0)
        .map(|&v| {
            let p = v as f64 / total as f64;
            p * p.ln()
        })
        .sum::<f64>()
}

/// A committee of independently seeded models.
pub struct Committee {
    members: Vec<Box<dyn Classifier>>,
    n_classes: usize,
}

impl Committee {
    /// Builds a committee of `size` members from one spec, varying seeds.
    ///
    /// # Panics
    /// Panics when `size` is zero.
    pub fn new(spec: &ModelSpec, size: usize, seed: u64) -> Self {
        assert!(size > 0, "a committee needs at least one member");
        let members = (0..size)
            .map(|i| spec.with_seed(seed ^ ((i as u64 + 1) * 0x9E37_79B9)).build())
            .collect();
        Self { members, n_classes: 0 }
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Fits every member on the same labeled data (diversity comes from
    /// their seeds: bootstrap resamples, feature subsampling, init).
    pub fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) {
        self.n_classes = n_classes;
        for m in &mut self.members {
            m.fit(x, y, n_classes);
        }
    }

    /// Per-sample vote counts (`n x n_classes`).
    pub fn votes(&self, x: &Matrix) -> Vec<Vec<usize>> {
        let mut votes = vec![vec![0usize; self.n_classes]; x.rows()];
        for m in &self.members {
            for (i, &pred) in m.predict(x).iter().enumerate() {
                votes[i][pred] += 1;
            }
        }
        votes
    }

    /// Vote-entropy disagreement per sample.
    pub fn disagreement(&self, x: &Matrix) -> Vec<f64> {
        self.votes(x).iter().map(|v| vote_entropy(v)).collect()
    }

    /// Index of the most disagreed-upon sample (ties to the lower index).
    pub fn most_disagreed(&self, x: &Matrix) -> usize {
        let scores = self.disagreement(x);
        let mut best = 0usize;
        for (i, &s) in scores.iter().enumerate().skip(1) {
            if s > scores[best] {
                best = i;
            }
        }
        best
    }

    /// Majority-vote prediction per sample.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.votes(x)
            .iter()
            .map(|v| {
                let mut best = 0usize;
                for (k, &c) in v.iter().enumerate().skip(1) {
                    if c > v[best] {
                        best = k;
                    }
                }
                best
            })
            .collect()
    }
}

/// Summary of a committee query step (for reports).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CommitteeQuery {
    /// Chosen pool row.
    pub index: usize,
    /// Its vote entropy.
    pub disagreement: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use alba_ml::ForestParams;

    fn blobs(n: usize, noisy: bool) -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let jit = ((i * 13) % 17) as f64 * 0.02;
            if i % 2 == 0 {
                rows.push(vec![jit, 0.0]);
                y.push(0);
            } else {
                rows.push(vec![1.0 - jit, 1.0]);
                y.push(usize::from(!(noisy && i % 7 == 0)));
            }
        }
        (Matrix::from_rows(&rows), y)
    }

    fn committee() -> Committee {
        let spec = ModelSpec::Forest(ForestParams {
            n_estimators: 3,
            max_depth: Some(3),
            ..ForestParams::default()
        });
        Committee::new(&spec, 5, 17)
    }

    #[test]
    fn vote_entropy_bounds() {
        assert_eq!(vote_entropy(&[5, 0, 0]), 0.0);
        let split = vote_entropy(&[2, 2]);
        assert!((split - (2.0f64).ln() / 1.0 * 0.5 * 2.0).abs() < 1e-9); // ln 2
        assert!(vote_entropy(&[1, 1, 1]) > split);
        assert_eq!(vote_entropy(&[]), 0.0);
    }

    #[test]
    fn committee_learns_and_votes() {
        let (x, y) = blobs(40, false);
        let mut c = committee();
        c.fit(&x, &y, 2);
        assert_eq!(c.size(), 5);
        assert_eq!(c.predict(&x), y);
        // Unanimous on separable data: zero disagreement.
        let d = c.disagreement(&x);
        assert!(d.iter().all(|&v| v < 1e-9), "{d:?}");
    }

    #[test]
    fn disagreement_peaks_between_classes() {
        let (x, y) = blobs(40, true);
        let mut c = committee();
        c.fit(&x, &y, 2);
        // A point exactly between the blobs should be the most contested
        // among {far-left, middle, far-right}.
        let probe = Matrix::from_rows(&[vec![0.0, 0.0], vec![0.5, 0.5], vec![1.0, 1.0]]);
        let idx = c.most_disagreed(&probe);
        let d = c.disagreement(&probe);
        assert!(d[1] >= d[0] && d[1] >= d[2], "disagreements {d:?}");
        assert_eq!(idx, if d[1] > d[0] { 1 } else { 0 });
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_committee_rejected() {
        let spec = ModelSpec::Forest(ForestParams::default());
        let _ = Committee::new(&spec, 0, 1);
    }
}
