//! Minimal radix-2 FFT and Welch power-spectral-density estimation.
//!
//! TSFRESH's spectral features (Welch PSD coefficients, FFT aggregates) need
//! a Fourier transform; rather than pulling in a DSP dependency we implement
//! the iterative Cooley–Tukey radix-2 algorithm, which is ample for the
//! series lengths produced by 1 Hz telemetry.

use std::f64::consts::TAU;

/// In-place iterative radix-2 FFT over interleaved complex values.
///
/// `re`/`im` hold the real and imaginary parts.
///
/// # Panics
/// Panics when the length is not a power of two or the slices differ in
/// length.
pub fn fft_in_place(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    assert_eq!(n, im.len(), "re/im length mismatch");
    assert!(n.is_power_of_two(), "FFT length must be a power of two, got {n}");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -TAU / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut cur_r = 1.0f64;
            let mut cur_i = 0.0f64;
            for k in 0..len / 2 {
                let even_r = re[i + k];
                let even_i = im[i + k];
                let odd_r = re[i + k + len / 2];
                let odd_i = im[i + k + len / 2];
                let tr = odd_r * cur_r - odd_i * cur_i;
                let ti = odd_r * cur_i + odd_i * cur_r;
                re[i + k] = even_r + tr;
                im[i + k] = even_i + ti;
                re[i + k + len / 2] = even_r - tr;
                im[i + k + len / 2] = even_i - ti;
                let nr = cur_r * wr - cur_i * wi;
                cur_i = cur_r * wi + cur_i * wr;
                cur_r = nr;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Magnitudes of the one-sided FFT of a real signal, zero-padded to the next
/// power of two. Returns `n_fft/2 + 1` magnitudes.
pub fn real_fft_magnitudes(x: &[f64]) -> Vec<f64> {
    if x.is_empty() {
        return vec![0.0];
    }
    let n = x.len().next_power_of_two();
    let mut re = vec![0.0; n];
    let mut im = vec![0.0; n];
    re[..x.len()].copy_from_slice(x);
    fft_in_place(&mut re, &mut im);
    (0..=n / 2).map(|k| (re[k] * re[k] + im[k] * im[k]).sqrt()).collect()
}

/// Welch power-spectral-density estimate (Hann window, 50 % overlap).
///
/// Returns `segment/2 + 1` PSD values. `segment` is clamped to a power of
/// two no larger than the signal; signals shorter than 8 points yield a
/// zero spectrum of the requested size.
pub fn welch_psd(x: &[f64], segment: usize) -> Vec<f64> {
    // The output length is a function of `segment` alone so that feature
    // vectors stay rectangular across samples of different durations.
    let seg = segment.next_power_of_two().max(8);
    let out_len = seg / 2 + 1;
    if x.len() < 8 {
        return vec![0.0; out_len];
    }
    let hop = seg / 2;
    let window: Vec<f64> =
        (0..seg).map(|i| 0.5 - 0.5 * (TAU * i as f64 / (seg - 1) as f64).cos()).collect();
    let win_power: f64 = window.iter().map(|w| w * w).sum();
    let mut psd = vec![0.0f64; out_len];
    let mut n_segments = 0usize;
    let mut start = 0usize;
    let mut re = vec![0.0; seg];
    let mut im = vec![0.0; seg];
    while start + seg <= x.len() {
        for i in 0..seg {
            re[i] = x[start + i] * window[i];
            im[i] = 0.0;
        }
        fft_in_place(&mut re, &mut im);
        for (k, p) in psd.iter_mut().enumerate() {
            let mag2 = re[k] * re[k] + im[k] * im[k];
            // One-sided scaling: double interior bins.
            let scale = if k == 0 || k == out_len - 1 { 1.0 } else { 2.0 };
            *p += scale * mag2 / win_power;
        }
        n_segments += 1;
        start += hop;
    }
    if n_segments == 0 {
        // Signal shorter than one segment: single padded segment.
        let mut re = vec![0.0; seg];
        let mut im = vec![0.0; seg];
        for (i, &v) in x.iter().enumerate() {
            re[i] = v * window[i.min(seg - 1)];
        }
        fft_in_place(&mut re, &mut im);
        for (k, p) in psd.iter_mut().enumerate() {
            *p = (re[k] * re[k] + im[k] * im[k]) / win_power;
        }
        return psd;
    }
    for p in &mut psd {
        *p /= n_segments as f64;
    }
    psd
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut re = vec![0.0; 8];
        let mut im = vec![0.0; 8];
        re[0] = 1.0;
        fft_in_place(&mut re, &mut im);
        for k in 0..8 {
            assert!((re[k] - 1.0).abs() < 1e-12);
            assert!(im[k].abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_concentrates_at_dc() {
        let mut re = vec![1.0; 16];
        let mut im = vec![0.0; 16];
        fft_in_place(&mut re, &mut im);
        assert!((re[0] - 16.0).abs() < 1e-9);
        for k in 1..16 {
            assert!(re[k].abs() < 1e-9 && im[k].abs() < 1e-9);
        }
    }

    #[test]
    fn fft_resolves_single_tone() {
        let n = 64;
        let freq = 5;
        let x: Vec<f64> = (0..n).map(|i| (TAU * freq as f64 * i as f64 / n as f64).sin()).collect();
        let mags = real_fft_magnitudes(&x);
        let peak =
            mags.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap();
        assert_eq!(peak, freq);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut re = vec![0.0; 12];
        let mut im = vec![0.0; 12];
        fft_in_place(&mut re, &mut im);
    }

    #[test]
    fn welch_peak_matches_tone_frequency() {
        // 1 Hz sampling, tone at 0.125 cycles/sample, 256-sample signal.
        let x: Vec<f64> = (0..256).map(|i| (TAU * 0.125 * i as f64).sin()).collect();
        let psd = welch_psd(&x, 64);
        let peak =
            psd.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap();
        // Bin k corresponds to k/seg cycles per sample: 0.125 * 64 = 8.
        assert_eq!(peak, 8);
    }

    #[test]
    fn welch_handles_short_signals() {
        let x = [1.0, 2.0, 3.0];
        let psd = welch_psd(&x, 64);
        assert!(psd.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn welch_energy_scales_with_amplitude() {
        let tone =
            |a: f64| -> Vec<f64> { (0..256).map(|i| a * (TAU * 0.1 * i as f64).sin()).collect() };
        let p1: f64 = welch_psd(&tone(1.0), 64).iter().sum();
        let p2: f64 = welch_psd(&tone(2.0), 64).iter().sum();
        assert!((p2 / p1 - 4.0).abs() < 0.1, "power is quadratic in amplitude");
    }
}
