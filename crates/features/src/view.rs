//! The deployed model's *feature view*: which columns of the full
//! extracted feature vector the model consumes, and how they are scaled.
//!
//! Offline, `prepare_split` selects the top-k chi-square features and
//! fits a Min-Max scaler on the training split; everything downstream of
//! the extractor — the offline evaluation, the online [`NodeMonitor`]
//! and the fleet service's batched extraction — must project and scale
//! windows identically or the model sees garbage. `FeatureView` is that
//! shared implementation.
//!
//! [`NodeMonitor`]: ../albadross/monitor/struct.NodeMonitor.html

use crate::extract::FeatureExtractor;
use crate::preprocess::{
    diff_counter, interpolate_gaps, preprocess, trim_bounds, PreprocessConfig,
};
use crate::scale::MinMaxScaler;
use crate::source::{ExtractPlan, ExtractScratch, SeriesSource};
use alba_data::{Matrix, MetricKind, MultiSeries};
use serde::{Deserialize, Serialize};

/// Projection of full extractor output into a model's input space,
/// plus the scaler fitted on that projected space.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FeatureView {
    /// Indices into the full (all-metrics) feature vector, in model
    /// column order.
    selected: Vec<usize>,
    /// Scaler fitted on the projected training features.
    scaler: MinMaxScaler,
}

impl FeatureView {
    /// Builds a view from selected column indices and the scaler fitted
    /// on exactly those columns.
    ///
    /// # Panics
    /// Panics when the scaler width differs from the selection size.
    pub fn new(selected: Vec<usize>, scaler: MinMaxScaler) -> Self {
        assert_eq!(
            selected.len(),
            scaler.n_features(),
            "scaler fitted on {} features but {} selected",
            scaler.n_features(),
            selected.len()
        );
        Self { selected, scaler }
    }

    /// Number of features the model consumes.
    pub fn n_features(&self) -> usize {
        self.selected.len()
    }

    /// The selected column indices into the full feature vector.
    pub fn selected(&self) -> &[usize] {
        &self.selected
    }

    /// The fitted scaler.
    pub fn scaler(&self) -> &MinMaxScaler {
        &self.scaler
    }

    /// Projects a full feature vector onto the selected columns
    /// (no scaling).
    ///
    /// # Panics
    /// Panics when `full` is shorter than the largest selected index.
    pub fn project(&self, full: &[f64]) -> Vec<f64> {
        self.selected.iter().map(|&c| full[c]).collect()
    }

    /// Extracts one *unscaled* model-input row from a telemetry window:
    /// preprocesses a copy of the window, runs the extractor over every
    /// metric, and projects the concatenated output.
    ///
    /// Batched callers collect these rows into a matrix and call
    /// [`FeatureView::scale_inplace`] once; single-window callers can use
    /// [`FeatureView::scaled_row`] directly.
    pub fn unscaled_row(
        &self,
        extractor: &dyn FeatureExtractor,
        window: &MultiSeries,
        pre: &PreprocessConfig,
    ) -> Vec<f64> {
        let mut window = window.clone();
        preprocess(&mut window, pre);
        let mut full = Vec::with_capacity(window.n_metrics() * extractor.n_features_per_metric());
        for m in 0..window.n_metrics() {
            extractor.extract(window.metric(m), &mut full);
        }
        self.project(&full)
    }

    /// Builds the extraction plan for this view: the selected columns
    /// grouped by owning metric, so the planned path extracts only the
    /// metrics the model consumes.
    pub fn plan(&self, extractor: &dyn FeatureExtractor) -> ExtractPlan {
        ExtractPlan::new(&self.selected, extractor.n_features_per_metric())
    }

    /// The zero-copy twin of [`FeatureView::unscaled_row`]: extracts
    /// one unscaled model-input row straight from a borrowed window
    /// ([`SeriesSource`]) into `out`, without cloning the window and
    /// without extracting metrics the plan skips. Per-metric
    /// preprocessing (trim by sub-slice, NaN interpolation, counter
    /// differencing) runs in `scratch`, bit-identically to the
    /// materialised pipeline — pinned by the golden tests below.
    ///
    /// # Panics
    /// Panics when `plan` does not match this view's selection width,
    /// `out` is not exactly `plan.n_out()` wide, or the plan references
    /// a metric outside the source.
    pub fn unscaled_row_into(
        &self,
        extractor: &dyn FeatureExtractor,
        src: &dyn SeriesSource,
        pre: &PreprocessConfig,
        plan: &ExtractPlan,
        scratch: &mut ExtractScratch,
        out: &mut [f64],
    ) {
        assert_eq!(plan.n_out(), self.selected.len(), "plan built for a different view");
        assert_eq!(out.len(), plan.n_out(), "output row width mismatch");
        let (start, end) = trim_bounds(src.series_len(), pre.trim_frac);
        for (m, slots) in plan.per_metric() {
            scratch.series.clear();
            scratch.series.extend_from_slice(&src.metric(*m)[start..end]);
            if pre.interpolate {
                interpolate_gaps(&mut scratch.series);
            }
            if pre.diff_counters && src.metric_kind(*m) == MetricKind::Counter {
                diff_counter(&mut scratch.series);
            }
            scratch.wanted.clear();
            scratch.wanted.extend(slots.iter().map(|&(k, _)| k));
            scratch.feats.clear();
            extractor.extract_select(
                &scratch.series,
                &scratch.wanted,
                &mut scratch.inner,
                &mut scratch.feats,
            );
            for (&(_, pos), &v) in slots.iter().zip(scratch.feats.iter()) {
                out[pos] = v;
            }
        }
    }

    /// Extracts one scaled model-input row from a telemetry window.
    pub fn scaled_row(
        &self,
        extractor: &dyn FeatureExtractor,
        window: &MultiSeries,
        pre: &PreprocessConfig,
    ) -> Vec<f64> {
        let mut x = Matrix::from_rows(&[self.unscaled_row(extractor, window, pre)]);
        self.scaler.transform_inplace(&mut x);
        x.row(0).to_vec()
    }

    /// Scales a matrix of projected rows in place (batched path).
    pub fn scale_inplace(&self, x: &mut Matrix) {
        self.scaler.transform_inplace(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvts::Mvts;
    use alba_data::{MetricDef, MetricKind};

    fn window() -> MultiSeries {
        let metrics = vec![
            MetricDef {
                name: "cpu_user".to_string(),
                subsystem: "cpu".to_string(),
                kind: MetricKind::Gauge,
            },
            MetricDef {
                name: "mem_used".to_string(),
                subsystem: "memory".to_string(),
                kind: MetricKind::Gauge,
            },
        ];
        let mut s = MultiSeries::new(metrics);
        for t in 0..32 {
            let t = t as f64;
            s.push_sample(&[t.sin() * 10.0 + 50.0, t * 2.0 + 100.0]);
        }
        s
    }

    fn pre() -> PreprocessConfig {
        PreprocessConfig { trim_frac: 0.0, diff_counters: true, interpolate: true }
    }

    #[test]
    fn project_picks_selected_columns_in_order() {
        let scaler =
            MinMaxScaler::fit(&Matrix::from_rows(&[vec![0.0, 0.0, 0.0], vec![1.0, 1.0, 1.0]]));
        let view = FeatureView::new(vec![4, 0, 2], scaler);
        assert_eq!(view.project(&[10.0, 11.0, 12.0, 13.0, 14.0]), vec![14.0, 10.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "selected")]
    fn mismatched_scaler_width_rejected() {
        let scaler = MinMaxScaler::fit(&Matrix::from_rows(&[vec![0.0], vec![1.0]]));
        let _ = FeatureView::new(vec![0, 1], scaler);
    }

    #[test]
    fn scaled_row_equals_manual_pipeline() {
        let w = window();
        let n_full = 2 * Mvts.n_features_per_metric();
        let selected: Vec<usize> = (0..n_full).step_by(7).collect();
        // Fit the scaler on the window's own (projected) features so the
        // transform is non-trivial.
        let train_rows: Vec<Vec<f64>> = (0..3)
            .map(|shift| {
                let mut shifted = w.clone();
                for series in &mut shifted.values {
                    for v in series {
                        *v += shift as f64;
                    }
                }
                let mut full = Vec::new();
                let mut pp = shifted.clone();
                preprocess(&mut pp, &pre());
                for m in 0..pp.n_metrics() {
                    Mvts.extract(pp.metric(m), &mut full);
                }
                selected.iter().map(|&c| full[c]).collect()
            })
            .collect();
        let scaler = MinMaxScaler::fit(&Matrix::from_rows(&train_rows));
        let view = FeatureView::new(selected.clone(), scaler.clone());

        let got = view.scaled_row(&Mvts, &w, &pre());

        let mut full = Vec::new();
        let mut pp = w.clone();
        preprocess(&mut pp, &pre());
        for m in 0..pp.n_metrics() {
            Mvts.extract(pp.metric(m), &mut full);
        }
        let manual: Vec<f64> = selected.iter().map(|&c| full[c]).collect();
        let mut manual = Matrix::from_rows(&[manual]);
        scaler.transform_inplace(&mut manual);
        assert_eq!(got.as_slice(), manual.row(0));
    }

    #[test]
    fn batched_scaling_matches_single_row_scaling() {
        let w = window();
        let n_full = 2 * Mvts.n_features_per_metric();
        let selected: Vec<usize> = (0..n_full.min(20)).collect();
        let scaler = MinMaxScaler::fit(&Matrix::from_rows(&[
            vec![-5.0; 20.min(n_full)],
            vec![5.0; 20.min(n_full)],
        ]));
        let view = FeatureView::new(selected, scaler);

        let rows: Vec<Vec<f64>> = (0..4).map(|_| view.unscaled_row(&Mvts, &w, &pre())).collect();
        let mut batch = Matrix::from_rows(&rows);
        view.scale_inplace(&mut batch);

        let single = view.scaled_row(&Mvts, &w, &pre());
        for r in 0..4 {
            assert_eq!(batch.row(r), single.as_slice());
        }
    }

    /// A NaN-gapped window over gauges *and* counters: leading gap,
    /// interior gaps, trailing gap, one all-NaN metric — every branch
    /// of interpolation and differencing.
    fn gapped_window(n: usize) -> MultiSeries {
        let metrics = vec![
            MetricDef {
                name: "cpu_user".to_string(),
                subsystem: "cpu".to_string(),
                kind: MetricKind::Gauge,
            },
            MetricDef {
                name: "net_tx_bytes".to_string(),
                subsystem: "network".to_string(),
                kind: MetricKind::Counter,
            },
            MetricDef {
                name: "dead_sensor".to_string(),
                subsystem: "cray".to_string(),
                kind: MetricKind::Gauge,
            },
            MetricDef {
                name: "ctx_switches".to_string(),
                subsystem: "cpu".to_string(),
                kind: MetricKind::Counter,
            },
        ];
        let mut s = MultiSeries::new(metrics);
        for t in 0..n {
            let tf = t as f64;
            let gauge = if t < 2 || t % 11 == 0 { f64::NAN } else { (tf * 0.7).sin() * 9.0 + 40.0 };
            let counter =
                if t % 7 == 3 || t + 1 == n { f64::NAN } else { tf * 13.0 + (tf.cos() * 3.0) };
            let ctr2 = if t % 5 == 1 { f64::NAN } else { tf * tf * 0.5 };
            s.push_sample(&[gauge, counter, f64::NAN, ctr2]);
        }
        s
    }

    /// The tentpole golden test: on NaN-gapped windows of gauges and
    /// counters, the slice-based planned path produces the *same bits*
    /// as the pre-refactor materialised path — for both extractors, at
    /// zero trim (the stream path), the paper's default trim, and a
    /// trim so large the middle-sample fallback fires.
    #[test]
    fn planned_extraction_is_bit_identical_to_materialised_path() {
        let extractors: Vec<Box<dyn FeatureExtractor>> =
            vec![Box::new(Mvts), Box::new(crate::tsfresh::TsFresh)];
        let pres = [
            PreprocessConfig { trim_frac: 0.0, diff_counters: true, interpolate: true },
            PreprocessConfig::default(),
            PreprocessConfig { trim_frac: 0.55, diff_counters: true, interpolate: true },
            PreprocessConfig { trim_frac: 0.08, diff_counters: false, interpolate: false },
        ];
        let w = gapped_window(64);
        for ex in &extractors {
            let npm = ex.n_features_per_metric();
            let n_full = w.n_metrics() * npm;
            // A selection that skips whole metrics and scrambles order.
            let mut selected: Vec<usize> = (0..n_full).step_by(7).collect();
            selected.reverse();
            let scaler = MinMaxScaler::fit(&Matrix::from_rows(&[
                vec![0.0; selected.len()],
                vec![1.0; selected.len()],
            ]));
            let view = FeatureView::new(selected, scaler);
            let plan = view.plan(ex.as_ref());
            assert!(plan.n_metrics_used() <= w.n_metrics());
            let mut scratch = ExtractScratch::default();
            for pre in &pres {
                let golden = view.unscaled_row(ex.as_ref(), &w, pre);
                let mut got = vec![0.0; view.n_features()];
                view.unscaled_row_into(ex.as_ref(), &w, pre, &plan, &mut scratch, &mut got);
                for (i, (a, b)) in golden.iter().zip(&got).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{} col {} diverged (trim={}): {} vs {}",
                        ex.name(),
                        i,
                        pre.trim_frac,
                        a,
                        b
                    );
                }
            }
        }
    }

    /// Scratch reuse across windows must not leak state between calls.
    #[test]
    fn scratch_reuse_does_not_leak_between_windows() {
        let a = gapped_window(64);
        let b = window();
        let npm = Mvts.n_features_per_metric();
        let selected: Vec<usize> = (0..2 * npm).step_by(5).collect();
        let scaler = MinMaxScaler::fit(&Matrix::from_rows(&[
            vec![0.0; selected.len()],
            vec![1.0; selected.len()],
        ]));
        let view = FeatureView::new(selected, scaler);
        let plan = view.plan(&Mvts);
        let mut scratch = ExtractScratch::default();
        let mut row = vec![0.0; view.n_features()];
        // Interleave two very different windows; each must match its
        // own golden row every time.
        for _ in 0..3 {
            for w in [&a, &b] {
                view.unscaled_row_into(&Mvts, w, &pre(), &plan, &mut scratch, &mut row);
                let golden = view.unscaled_row(&Mvts, w, &pre());
                assert_eq!(row, golden);
            }
        }
    }

    #[test]
    fn view_survives_json_round_trip() {
        let scaler = MinMaxScaler::fit(&Matrix::from_rows(&[vec![0.0, -1.0], vec![2.0, 3.0]]));
        let view = FeatureView::new(vec![3, 1], scaler);
        let json = serde_json::to_string(&view).unwrap();
        let back: FeatureView = serde_json::from_str(&json).unwrap();
        assert_eq!(back.selected(), view.selected());
        assert_eq!(back.project(&[9.0, 8.0, 7.0, 6.0]), view.project(&[9.0, 8.0, 7.0, 6.0]));
    }
}
