//! TSFRESH-style feature extraction.
//!
//! The paper's second extractor is TSFRESH, which computes 794 features per
//! metric from 63 characterisation methods. This module reimplements the
//! most informative TSFRESH families from scratch — descriptive statistics,
//! quantiles (of values and of changes), autocorrelation structure, c3 and
//! time-reversal asymmetry, approximate/binned/Fourier entropy,
//! chunk aggregates, energy ratios, change-quantile corridors and Welch
//! power-spectral-density coefficients — yielding 176 features per metric.
//! The count difference against the published toolkit is documented in
//! `EXPERIMENTS.md`; what matters for the reproduction is that this
//! extractor is strictly richer than MVTS.

use crate::extract::FeatureExtractor;
use crate::fft::{real_fft_magnitudes, welch_psd};
use crate::stats::*;

/// Welch PSD segment length (power of two; 33 output coefficients).
const PSD_SEGMENT: usize = 64;
/// Maximum series length fed into the O(n^2) approximate-entropy kernel;
/// longer series are stride-subsampled (standard practice — ApEn is defined
/// on short windows).
const APEN_MAX_LEN: usize = 80;

/// The TSFRESH-style extractor (stateless).
#[derive(Clone, Copy, Debug, Default)]
pub struct TsFresh;

/// Returns the per-metric feature name suffixes, in extraction order.
pub fn tsfresh_feature_suffixes() -> Vec<String> {
    let mut n: Vec<String> = Vec::with_capacity(180);
    // 1. Basics (16).
    for s in [
        "mean",
        "std",
        "var",
        "skewness",
        "kurtosis",
        "median",
        "min",
        "max",
        "rms",
        "sum",
        "abs_energy",
        "range",
        "iqr",
        "variation_coefficient",
        "cid_ce",
        "mean_second_derivative",
    ] {
        n.push(s.into());
    }
    // 2. Quantiles (9).
    for q in 1..=9 {
        n.push(format!("quantile_q{}", q * 10));
    }
    // 3. Change quantiles + mean changes (11).
    for q in 1..=9 {
        n.push(format!("abs_change_quantile_q{}", q * 10));
    }
    n.push("mean_abs_change".into());
    n.push("mean_change".into());
    // 4. Autocorrelation (11).
    for lag in 1..=10 {
        n.push(format!("autocorr_lag{lag}"));
    }
    n.push("agg_autocorr_mean10".into());
    // 5. c3 (3).
    for lag in 1..=3 {
        n.push(format!("c3_lag{lag}"));
    }
    // 6. Time reversal asymmetry (3).
    for lag in 1..=3 {
        n.push(format!("time_reversal_asymmetry_lag{lag}"));
    }
    // 7. Entropies (6).
    for bins in [5, 10, 20] {
        n.push(format!("binned_entropy_b{bins}"));
    }
    for r in ["02", "05"] {
        n.push(format!("approximate_entropy_r{r}"));
    }
    n.push("fourier_entropy".into());
    // 8. Strikes / crossings / peaks (6).
    for s in [
        "longest_strike_above_mean",
        "longest_strike_below_mean",
        "mean_crossings",
        "count_peaks",
        "fraction_above_mean",
        "median_crossings",
    ] {
        n.push(s.into());
    }
    // 9. Positional (7).
    for s in [
        "first_value",
        "last_value",
        "last_minus_first",
        "first_location_of_max",
        "first_location_of_min",
        "last_location_of_max",
        "last_location_of_min",
    ] {
        n.push(s.into());
    }
    // 10. Index mass quantiles (3).
    for q in [25, 50, 75] {
        n.push(format!("index_mass_quantile_q{q}"));
    }
    // 11. Ratio beyond r sigma (6).
    for r in ["05", "10", "15", "20", "25", "30"] {
        n.push(format!("ratio_beyond_r{r}_sigma"));
    }
    // 12. Value recurrence (1).
    n.push("ratio_value_recurrence".into());
    // 13. Linear trend (2).
    n.push("trend_slope".into());
    n.push("trend_intercept".into());
    // 14. Chunk aggregates (40).
    for agg in ["mean", "std", "min", "max"] {
        for c in 0..10 {
            n.push(format!("chunk{c}_{agg}"));
        }
    }
    // 15. Energy ratio by chunks (10).
    for c in 0..10 {
        n.push(format!("energy_ratio_chunk{c}"));
    }
    // 16. Change-quantile corridors (5).
    for (lo, hi) in [(0, 30), (30, 70), (70, 100), (0, 70), (30, 100)] {
        n.push(format!("change_quantiles_{lo}_{hi}"));
    }
    // 17. Welch PSD coefficients (33).
    for k in 0..=PSD_SEGMENT / 2 {
        n.push(format!("welch_psd_{k}"));
    }
    // 18. Spectral aggregates (4).
    for s in ["spectral_centroid", "spectral_variance", "spectral_skewness", "spectral_kurtosis"] {
        n.push(s.into());
    }
    n
}

fn c3(x: &[f64], lag: usize) -> f64 {
    let n = x.len();
    if n < 2 * lag + 1 {
        return 0.0;
    }
    let count = n - 2 * lag;
    (0..count).map(|i| x[i + 2 * lag] * x[i + lag] * x[i]).sum::<f64>() / count as f64
}

fn mean_second_derivative_central(x: &[f64]) -> f64 {
    if x.len() < 3 {
        return 0.0;
    }
    let n = x.len();
    (x[n - 1] - x[n - 2] - x[1] + x[0]) / (2.0 * (n - 2) as f64)
}

fn ratio_beyond_r_sigma(x: &[f64], r: f64) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let m = mean(x);
    let s = std_dev(x);
    if s < 1e-12 {
        return 0.0;
    }
    x.iter().filter(|&&v| (v - m).abs() > r * s).count() as f64 / x.len() as f64
}

fn crossings(x: &[f64], level: f64) -> usize {
    x.windows(2).filter(|w| (w[0] > level) != (w[1] > level)).count()
}

fn location_of(x: &[f64], pick_max: bool, first: bool) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let mut idx = 0usize;
    for (i, &v) in x.iter().enumerate() {
        let better = if pick_max { v > x[idx] } else { v < x[idx] };
        let tie = v == x[idx] && !first;
        if better || tie {
            idx = i;
        }
    }
    idx as f64 / x.len() as f64
}

/// Mean absolute change of the sub-series whose values lie within the
/// corridor `[quantile(lo), quantile(hi)]` (TSFRESH `change_quantiles` with
/// `isabs=True`, `f_agg="mean"`).
fn change_quantiles(x: &[f64], sorted: &[f64], lo: f64, hi: f64) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let ql = quantile_sorted(sorted, lo);
    let qh = quantile_sorted(sorted, hi);
    let inside: Vec<bool> = x.iter().map(|&v| v >= ql && v <= qh).collect();
    let mut sum = 0.0;
    let mut count = 0usize;
    for i in 1..x.len() {
        if inside[i] && inside[i - 1] {
            sum += (x[i] - x[i - 1]).abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

fn subsample(x: &[f64], max_len: usize) -> Vec<f64> {
    if x.len() <= max_len {
        return x.to_vec();
    }
    let stride = x.len() as f64 / max_len as f64;
    (0..max_len).map(|i| x[(i as f64 * stride) as usize]).collect()
}

/// Shannon entropy of the normalised FFT magnitude distribution.
fn fourier_entropy(x: &[f64]) -> f64 {
    let mags = real_fft_magnitudes(x);
    let total: f64 = mags.iter().sum();
    if total < 1e-12 {
        return 0.0;
    }
    -mags
        .iter()
        .filter(|&&m| m > 1e-12)
        .map(|&m| {
            let p = m / total;
            p * p.ln()
        })
        .sum::<f64>()
}

impl FeatureExtractor for TsFresh {
    fn name(&self) -> &'static str {
        "tsfresh"
    }

    fn n_features_per_metric(&self) -> usize {
        tsfresh_feature_suffixes().len()
    }

    fn feature_names(&self, metric: &str) -> Vec<String> {
        tsfresh_feature_suffixes().iter().map(|f| format!("{metric}::{f}")).collect()
    }

    fn extract(&self, x: &[f64], out: &mut Vec<f64>) {
        let mut sorted = x.to_vec();
        sorted.sort_by(f64::total_cmp);
        let q25 = quantile_sorted(&sorted, 0.25);
        let q75 = quantile_sorted(&sorted, 0.75);
        let mn = min(x);
        let mx = max(x);

        // 1. Basics.
        out.push(mean(x));
        out.push(std_dev(x));
        out.push(variance(x));
        out.push(skewness(x));
        out.push(kurtosis(x));
        out.push(quantile_sorted(&sorted, 0.5));
        out.push(mn);
        out.push(mx);
        out.push(rms(x));
        out.push(x.iter().sum());
        out.push(abs_energy(x));
        out.push(mx - mn);
        out.push(q75 - q25);
        out.push(variation_coefficient(x));
        out.push(cid_ce(x));
        out.push(mean_second_derivative_central(x));

        // 2. Quantiles.
        for q in 1..=9 {
            out.push(quantile_sorted(&sorted, q as f64 / 10.0));
        }

        // 3. Quantiles of absolute changes + mean changes.
        let diffs: Vec<f64> = x.windows(2).map(|w| (w[1] - w[0]).abs()).collect();
        let mut diffs_sorted = diffs.clone();
        diffs_sorted.sort_by(f64::total_cmp);
        for q in 1..=9 {
            out.push(quantile_sorted(&diffs_sorted, q as f64 / 10.0));
        }
        out.push(mean_abs_change(x));
        out.push(mean_change(x));

        // 4. Autocorrelation.
        let mut acf_sum = 0.0;
        for lag in 1..=10 {
            let a = autocorrelation(x, lag);
            acf_sum += a;
            out.push(a);
        }
        out.push(acf_sum / 10.0);

        // 5. c3.
        for lag in 1..=3 {
            out.push(c3(x, lag));
        }

        // 6. Time reversal asymmetry.
        for lag in 1..=3 {
            out.push(time_reversal_asymmetry(x, lag));
        }

        // 7. Entropies.
        for bins in [5, 10, 20] {
            out.push(binned_entropy(x, bins));
        }
        let short = subsample(x, APEN_MAX_LEN);
        out.push(approximate_entropy(&short, 2, 0.2));
        out.push(approximate_entropy(&short, 2, 0.5));
        out.push(fourier_entropy(x));

        // 8. Strikes / crossings / peaks.
        out.push(longest_strike_above_mean(x) as f64);
        out.push(longest_strike_below_mean(x) as f64);
        out.push(mean_crossings(x) as f64);
        out.push(count_peaks(x) as f64);
        out.push(fraction_above_mean(x));
        out.push(crossings(x, quantile_sorted(&sorted, 0.5)) as f64);

        // 9. Positional.
        out.push(x.first().copied().unwrap_or(0.0));
        out.push(x.last().copied().unwrap_or(0.0));
        out.push(match (x.first(), x.last()) {
            (Some(f), Some(l)) => l - f,
            _ => 0.0,
        });
        out.push(location_of(x, true, true));
        out.push(location_of(x, false, true));
        out.push(location_of(x, true, false));
        out.push(location_of(x, false, false));

        // 10. Index mass quantiles.
        for q in [0.25, 0.5, 0.75] {
            out.push(index_mass_quantile(x, q));
        }

        // 11. Ratio beyond r sigma.
        for r in [0.5, 1.0, 1.5, 2.0, 2.5, 3.0] {
            out.push(ratio_beyond_r_sigma(x, r));
        }

        // 12. Value recurrence.
        out.push(ratio_value_recurrence(x));

        // 13. Linear trend.
        out.push(linear_trend_slope(x));
        out.push(linear_trend_intercept(x));

        // 14. Chunk aggregates over 10 equal chunks.
        let chunks: Vec<&[f64]> = if x.is_empty() {
            vec![&[]; 10]
        } else {
            let size = x.len().div_ceil(10);
            (0..10)
                .map(|c| {
                    let lo = (c * size).min(x.len());
                    let hi = ((c + 1) * size).min(x.len());
                    &x[lo..hi]
                })
                .collect()
        };
        for agg in 0..4 {
            for chunk in &chunks {
                out.push(match agg {
                    0 => mean(chunk),
                    1 => std_dev(chunk),
                    2 => min(chunk),
                    _ => max(chunk),
                });
            }
        }

        // 15. Energy ratio by chunks.
        let total_energy = abs_energy(x).max(1e-12);
        for chunk in &chunks {
            out.push(abs_energy(chunk) / total_energy);
        }

        // 16. Change-quantile corridors.
        for (lo, hi) in [(0.0, 0.3), (0.3, 0.7), (0.7, 1.0), (0.0, 0.7), (0.3, 1.0)] {
            out.push(change_quantiles(x, &sorted, lo, hi));
        }

        // 17+18. Welch PSD and spectral aggregates.
        let psd = welch_psd(x, PSD_SEGMENT);
        let total_psd: f64 = psd.iter().sum::<f64>().max(1e-12);
        for &p in &psd {
            out.push(p);
        }
        let centroid: f64 =
            psd.iter().enumerate().map(|(k, &p)| k as f64 * p).sum::<f64>() / total_psd;
        let spec_var: f64 =
            psd.iter().enumerate().map(|(k, &p)| (k as f64 - centroid).powi(2) * p).sum::<f64>()
                / total_psd;
        let spec_std = spec_var.sqrt().max(1e-12);
        let spec_skew: f64 = psd
            .iter()
            .enumerate()
            .map(|(k, &p)| ((k as f64 - centroid) / spec_std).powi(3) * p)
            .sum::<f64>()
            / total_psd;
        let spec_kurt: f64 = psd
            .iter()
            .enumerate()
            .map(|(k, &p)| ((k as f64 - centroid) / spec_std).powi(4) * p)
            .sum::<f64>()
            / total_psd;
        out.push(centroid);
        out.push(spec_var);
        out.push(spec_skew);
        out.push(spec_kurt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extract(x: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        TsFresh.extract(x, &mut out);
        out
    }

    #[test]
    fn names_and_values_agree_in_count() {
        let names = tsfresh_feature_suffixes();
        assert_eq!(names.len(), 176, "expected 176 features, got {}", names.len());
        let out = extract(&(0..200).map(|i| (i as f64 / 9.0).sin()).collect::<Vec<_>>());
        assert_eq!(out.len(), names.len());
    }

    #[test]
    fn names_are_unique() {
        let mut names = tsfresh_feature_suffixes();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 176);
    }

    #[test]
    fn handles_degenerate_inputs() {
        for input in [vec![], vec![1.0], vec![2.0, 2.0], vec![0.0; 20]] {
            let out = extract(&input);
            assert_eq!(out.len(), 176);
            assert!(out.iter().all(|v| v.is_finite()), "input {input:?}");
        }
    }

    #[test]
    fn richer_than_mvts() {
        assert!(TsFresh.n_features_per_metric() > crate::mvts::Mvts.n_features_per_metric());
    }

    #[test]
    fn c3_on_known_series() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        // lag 1: mean of x[i+2]*x[i+1]*x[i] for i in 0..3 = (6 + 24 + 60)/3.
        assert!((c3(&x, 1) - 30.0).abs() < 1e-12);
        assert_eq!(c3(&x, 3), 0.0, "series too short for lag 3");
    }

    #[test]
    fn ratio_beyond_sigma_detects_outliers() {
        let mut x = vec![0.0; 99];
        x.push(100.0);
        assert!(ratio_beyond_r_sigma(&x, 3.0) > 0.0);
        let flat: Vec<f64> = (0..100).map(|i| (i % 2) as f64).collect();
        assert_eq!(ratio_beyond_r_sigma(&flat, 3.0), 0.0);
    }

    #[test]
    fn locations_of_extrema() {
        let x = [0.0, 5.0, 0.0, 5.0, 0.0];
        assert!((location_of(&x, true, true) - 0.2).abs() < 1e-12);
        assert!((location_of(&x, true, false) - 0.6).abs() < 1e-12);
        assert!((location_of(&x, false, true) - 0.0).abs() < 1e-12);
        assert!((location_of(&x, false, false) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn spectral_centroid_tracks_frequency() {
        let slow: Vec<f64> =
            (0..256).map(|i| (std::f64::consts::TAU * 0.03 * i as f64).sin()).collect();
        let fast: Vec<f64> =
            (0..256).map(|i| (std::f64::consts::TAU * 0.25 * i as f64).sin()).collect();
        let names = tsfresh_feature_suffixes();
        let ci = names.iter().position(|n| n == "spectral_centroid").unwrap();
        let c_slow = extract(&slow)[ci];
        let c_fast = extract(&fast)[ci];
        assert!(c_fast > c_slow, "fast {c_fast} vs slow {c_slow}");
    }

    #[test]
    fn change_quantiles_ignores_outlier_jumps() {
        // Values mostly in [0,1] with rare spikes to 100: the (0,0.3)
        // corridor only sees small changes.
        let x: Vec<f64> =
            (0..100).map(|i| if i % 10 == 0 { 100.0 } else { (i % 3) as f64 * 0.1 }).collect();
        let mut sorted = x.clone();
        sorted.sort_by(f64::total_cmp);
        let small = change_quantiles(&x, &sorted, 0.0, 0.3);
        assert!(small < 1.0, "corridor change {small} must exclude spikes");
    }
}
