//! Chi-square feature selection (paper Sec. III-B).
//!
//! The chi-square test scores how dependent each (non-negative) feature is
//! on the class label: for every feature the observed per-class mass is
//! compared against the mass expected under independence, and features are
//! ranked by descending score. This mirrors `sklearn.feature_selection.chi2`
//! followed by `SelectKBest`.
//!
//! Chi-square requires non-negative inputs, so scores are computed on a
//! min-max-rescaled copy of the matrix (the ranking is what matters; the
//! model later trains on separately scaled data).

use alba_data::{Dataset, Matrix};
use serde::{Deserialize, Serialize};

/// Result of scoring every feature.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChiSquareScores {
    /// One score per feature column (same order as the dataset).
    pub scores: Vec<f64>,
}

impl ChiSquareScores {
    /// Indices of the `k` highest-scoring features, best first.
    /// Ties break toward the lower column index for determinism.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.scores.len()).collect();
        idx.sort_by(|&a, &b| self.scores[b].total_cmp(&self.scores[a]).then(a.cmp(&b)));
        idx.truncate(k);
        idx
    }
}

/// Computes chi-square scores of every feature against the labels.
///
/// `n_classes` must cover every label in `y`. Features are internally
/// rescaled to `[0, 1]`; constant features score 0.
pub fn chi_square_scores(x: &Matrix, y: &[usize], n_classes: usize) -> ChiSquareScores {
    assert_eq!(x.rows(), y.len(), "labels must match rows");
    assert!(y.iter().all(|&c| c < n_classes), "label out of range");
    let (rows, cols) = x.shape();
    if rows == 0 {
        return ChiSquareScores { scores: vec![0.0; cols] };
    }
    let mut class_freq = vec![0.0f64; n_classes];
    for &c in y {
        class_freq[c] += 1.0;
    }
    let total = rows as f64;
    let (mins, maxs) = x.column_min_max();

    let scores = (0..cols)
        .map(|c| {
            let range = maxs[c] - mins[c];
            if range < 1e-12 {
                return 0.0;
            }
            // Observed per-class mass of the rescaled feature.
            let mut observed = vec![0.0f64; n_classes];
            let mut feature_total = 0.0f64;
            for r in 0..rows {
                let v = (x.get(r, c) - mins[c]) / range;
                observed[y[r]] += v;
                feature_total += v;
            }
            if feature_total < 1e-12 {
                return 0.0;
            }
            let mut chi2 = 0.0;
            for k in 0..n_classes {
                let expected = feature_total * class_freq[k] / total;
                if expected > 1e-12 {
                    let d = observed[k] - expected;
                    chi2 += d * d / expected;
                }
            }
            chi2
        })
        .collect();
    ChiSquareScores { scores }
}

/// Scores a dataset's features and returns the top-`k` column indices,
/// best first.
pub fn select_top_k(ds: &Dataset, k: usize) -> Vec<usize> {
    chi_square_scores(&ds.x, &ds.y, ds.n_classes()).top_k(k.min(ds.x.cols()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alba_data::{LabelEncoder, SampleMeta};

    fn meta() -> SampleMeta {
        SampleMeta {
            app: "a".into(),
            input_deck: 0,
            run_id: 0,
            node: 0,
            node_count: 1,
            intensity_pct: 0,
        }
    }

    /// Three columns: perfectly class-dependent, noise, constant.
    fn toy() -> Dataset {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let class = i % 2;
            let informative = class as f64; // exactly the label
            let noise = ((i * 7919 % 13) as f64) / 13.0; // label-independent
            rows.push(vec![informative, noise, 3.5]);
            y.push(class);
        }
        Dataset::new(
            Matrix::from_rows(&rows),
            y,
            LabelEncoder::from_names(&["healthy", "anom"]),
            vec![meta(); 40],
            vec!["informative".into(), "noise".into(), "constant".into()],
        )
    }

    #[test]
    fn informative_feature_wins() {
        let ds = toy();
        let scores = chi_square_scores(&ds.x, &ds.y, 2);
        assert!(scores.scores[0] > scores.scores[1] * 5.0, "{:?}", scores.scores);
        assert_eq!(scores.scores[2], 0.0, "constant feature scores zero");
        assert_eq!(scores.top_k(1), vec![0]);
    }

    #[test]
    fn top_k_orders_and_truncates() {
        let s = ChiSquareScores { scores: vec![1.0, 5.0, 3.0, 5.0] };
        assert_eq!(s.top_k(3), vec![1, 3, 2], "ties break toward lower index");
        assert_eq!(s.top_k(10).len(), 4);
    }

    #[test]
    fn select_top_k_clamps_to_width() {
        let ds = toy();
        assert_eq!(select_top_k(&ds, 100).len(), 3);
    }

    #[test]
    fn negative_features_are_handled_by_rescaling() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let class = i % 2;
            rows.push(vec![if class == 0 { -5.0 } else { -1.0 }]);
            y.push(class);
        }
        let scores = chi_square_scores(&Matrix::from_rows(&rows), &y, 2);
        assert!(scores.scores[0] > 1.0, "negative but informative feature must score");
    }

    #[test]
    fn scores_scale_with_dependence() {
        // Feature A is fully determined by the class, feature B only partly.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            let class = i % 2;
            let a = class as f64;
            let b = if i % 10 < 7 { class as f64 } else { 1.0 - class as f64 };
            rows.push(vec![a, b]);
            y.push(class);
        }
        let scores = chi_square_scores(&Matrix::from_rows(&rows), &y, 2);
        assert!(scores.scores[0] > scores.scores[1]);
        assert!(scores.scores[1] > 0.0);
    }
}
