//! Scalar statistics kernels shared by the MVTS and TSFRESH extractors.
//!
//! All kernels tolerate short inputs (returning 0.0 where a statistic is
//! undefined) because trimmed production time series can be arbitrarily
//! short; feature extractors must never poison a whole sample with NaN.

/// Arithmetic mean (0.0 for empty input).
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().sum::<f64>() / x.len() as f64
}

/// Population variance (0.0 for fewer than 2 points).
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
}

/// Population standard deviation.
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Minimum (0.0 for empty input).
pub fn min(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum (0.0 for empty input).
pub fn max(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Linear-interpolated quantile `q` in [0, 1] (0.0 for empty input).
pub fn quantile(x: &[f64], q: f64) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let mut sorted = x.to_vec();
    sorted.sort_by(f64::total_cmp);
    quantile_sorted(&sorted, q)
}

/// Quantile over an already sorted slice.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Median.
pub fn median(x: &[f64]) -> f64 {
    quantile(x, 0.5)
}

/// Fisher skewness (0.0 when undefined or the series is constant).
pub fn skewness(x: &[f64]) -> f64 {
    if x.len() < 3 {
        return 0.0;
    }
    let m = mean(x);
    let s = std_dev(x);
    if s < 1e-12 {
        return 0.0;
    }
    let n = x.len() as f64;
    x.iter().map(|v| ((v - m) / s).powi(3)).sum::<f64>() / n
}

/// Excess kurtosis (0.0 when undefined or the series is constant).
pub fn kurtosis(x: &[f64]) -> f64 {
    if x.len() < 4 {
        return 0.0;
    }
    let m = mean(x);
    let s = std_dev(x);
    if s < 1e-12 {
        return 0.0;
    }
    let n = x.len() as f64;
    x.iter().map(|v| ((v - m) / s).powi(4)).sum::<f64>() / n - 3.0
}

/// Root mean square.
pub fn rms(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
}

/// Sum of absolute changes between consecutive points.
pub fn abs_energy_of_changes(x: &[f64]) -> f64 {
    x.windows(2).map(|w| (w[1] - w[0]).abs()).sum()
}

/// Mean absolute change.
pub fn mean_abs_change(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    abs_energy_of_changes(x) / (x.len() - 1) as f64
}

/// Mean (signed) change — equals `(last - first) / (n - 1)`.
pub fn mean_change(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    (x[x.len() - 1] - x[0]) / (x.len() - 1) as f64
}

/// Autocorrelation at the given lag (0.0 when undefined).
///
/// Uses the *biased* estimator (lagged covariance divided by `n`, not
/// `n - lag`), which Cauchy–Schwarz bounds to `[-1, 1]` for every input —
/// the unbiased variant explodes on short series, poisoning feature
/// vectors.
pub fn autocorrelation(x: &[f64], lag: usize) -> f64 {
    if x.len() <= lag || lag == 0 {
        return 0.0;
    }
    let m = mean(x);
    let var = variance(x);
    if var < 1e-12 {
        return 0.0;
    }
    let n = x.len();
    let cov: f64 = (0..n - lag).map(|i| (x[i] - m) * (x[i + lag] - m)).sum::<f64>() / n as f64;
    cov / var
}

/// Slope of the ordinary-least-squares line fit against time indices.
pub fn linear_trend_slope(x: &[f64]) -> f64 {
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let tm = (n - 1) as f64 / 2.0;
    let xm = mean(x);
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, &v) in x.iter().enumerate() {
        let dt = i as f64 - tm;
        num += dt * (v - xm);
        den += dt * dt;
    }
    if den < 1e-12 {
        0.0
    } else {
        num / den
    }
}

/// Intercept of the OLS line fit.
pub fn linear_trend_intercept(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let slope = linear_trend_slope(x);
    mean(x) - slope * (x.len() - 1) as f64 / 2.0
}

/// Length of the longest strictly increasing run.
pub fn longest_monotonic_increase(x: &[f64]) -> usize {
    longest_run(x, |a, b| b > a)
}

/// Length of the longest strictly decreasing run.
pub fn longest_monotonic_decrease(x: &[f64]) -> usize {
    longest_run(x, |a, b| b < a)
}

fn longest_run(x: &[f64], keep: impl Fn(f64, f64) -> bool) -> usize {
    if x.is_empty() {
        return 0;
    }
    let mut best = 1usize;
    let mut cur = 1usize;
    for w in x.windows(2) {
        if keep(w[0], w[1]) {
            cur += 1;
            best = best.max(cur);
        } else {
            cur = 1;
        }
    }
    best
}

/// Longest run of values strictly above the series mean.
pub fn longest_strike_above_mean(x: &[f64]) -> usize {
    let m = mean(x);
    longest_condition_run(x, |v| v > m)
}

/// Longest run of values strictly below the series mean.
pub fn longest_strike_below_mean(x: &[f64]) -> usize {
    let m = mean(x);
    longest_condition_run(x, |v| v < m)
}

fn longest_condition_run(x: &[f64], cond: impl Fn(f64) -> bool) -> usize {
    let mut best = 0usize;
    let mut cur = 0usize;
    for &v in x {
        if cond(v) {
            cur += 1;
            best = best.max(cur);
        } else {
            cur = 0;
        }
    }
    best
}

/// Number of mean crossings.
pub fn mean_crossings(x: &[f64]) -> usize {
    let m = mean(x);
    x.windows(2).filter(|w| (w[0] > m) != (w[1] > m)).count()
}

/// Number of local maxima (strictly greater than both neighbours).
pub fn count_peaks(x: &[f64]) -> usize {
    if x.len() < 3 {
        return 0;
    }
    x.windows(3).filter(|w| w[1] > w[0] && w[1] > w[2]).count()
}

/// Fraction of values strictly above the mean.
pub fn fraction_above_mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let m = mean(x);
    x.iter().filter(|&&v| v > m).count() as f64 / x.len() as f64
}

/// Coefficient of variation (`std / |mean|`; 0.0 for near-zero mean).
pub fn variation_coefficient(x: &[f64]) -> f64 {
    let m = mean(x);
    if m.abs() < 1e-12 {
        return 0.0;
    }
    std_dev(x) / m.abs()
}

/// Approximate entropy with embedding dimension `m` and tolerance
/// `r * std(x)` (Pincus 1991; the TSFRESH formulation).
///
/// Returns 0.0 for series shorter than `m + 2` points or constant series.
pub fn approximate_entropy(x: &[f64], m: usize, r: f64) -> f64 {
    let n = x.len();
    if n < m + 2 {
        return 0.0;
    }
    let tol = r * std_dev(x);
    if tol < 1e-12 {
        return 0.0;
    }
    let phi = |dim: usize| -> f64 {
        let count = n - dim + 1;
        let mut total = 0.0f64;
        for i in 0..count {
            let mut matches = 0usize;
            for j in 0..count {
                let mut dist = 0.0f64;
                for k in 0..dim {
                    dist = dist.max((x[i + k] - x[j + k]).abs());
                }
                if dist <= tol {
                    matches += 1;
                }
            }
            total += (matches as f64 / count as f64).ln();
        }
        total / count as f64
    };
    (phi(m) - phi(m + 1)).abs()
}

/// Binned (histogram) entropy with `bins` equal-width bins.
pub fn binned_entropy(x: &[f64], bins: usize) -> f64 {
    if x.is_empty() || bins == 0 {
        return 0.0;
    }
    let lo = x.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !(hi - lo).is_finite() || hi - lo < 1e-12 {
        return 0.0;
    }
    let mut counts = vec![0usize; bins];
    for &v in x {
        let b = (((v - lo) / (hi - lo)) * bins as f64) as usize;
        counts[b.min(bins - 1)] += 1;
    }
    let n = x.len() as f64;
    -counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            p * p.ln()
        })
        .sum::<f64>()
}

/// Complexity-invariant distance estimate (CID, as in TSFRESH's `cid_ce`
/// with normalisation).
pub fn cid_ce(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let s = std_dev(x);
    if s < 1e-12 {
        return 0.0;
    }
    let m = mean(x);
    let normed: Vec<f64> = x.iter().map(|v| (v - m) / s).collect();
    normed.windows(2).map(|w| (w[1] - w[0]) * (w[1] - w[0])).sum::<f64>().sqrt()
}

/// Sum of squares (abs energy in TSFRESH terms).
pub fn abs_energy(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum()
}

/// Index (fraction of series length) where the cumulative sum of squares
/// first reaches `q` of the total (TSFRESH `index_mass_quantile`).
pub fn index_mass_quantile(x: &[f64], q: f64) -> f64 {
    let total: f64 = x.iter().map(|v| v.abs()).sum();
    if x.is_empty() || total < 1e-12 {
        return 0.0;
    }
    let target = q.clamp(0.0, 1.0) * total;
    let mut acc = 0.0;
    for (i, v) in x.iter().enumerate() {
        acc += v.abs();
        if acc >= target {
            return (i + 1) as f64 / x.len() as f64;
        }
    }
    1.0
}

/// Ratio of values occurring more than once (TSFRESH
/// `percentage_of_reoccurring_datapoints`), with values bucketed to 1e-9.
pub fn ratio_value_recurrence(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let mut keys: Vec<i64> = x.iter().map(|v| (v / 1e-9).round() as i64).collect();
    keys.sort_unstable();
    let mut repeated = 0usize;
    let mut i = 0usize;
    while i < keys.len() {
        let mut j = i + 1;
        while j < keys.len() && keys[j] == keys[i] {
            j += 1;
        }
        if j - i > 1 {
            repeated += j - i;
        }
        i = j;
    }
    repeated as f64 / x.len() as f64
}

/// Time-reversal asymmetry statistic with the given lag.
pub fn time_reversal_asymmetry(x: &[f64], lag: usize) -> f64 {
    let n = x.len();
    if lag == 0 || n < 2 * lag + 1 {
        return 0.0;
    }
    let count = n - 2 * lag;
    (0..count)
        .map(|i| x[i + 2 * lag] * x[i + 2 * lag] * x[i + lag] - x[i + lag] * x[i] * x[i])
        .sum::<f64>()
        / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn descriptive_stats_on_known_series() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&x) - 5.0).abs() < EPS);
        assert!((std_dev(&x) - 2.0).abs() < EPS);
        assert!((min(&x) - 2.0).abs() < EPS);
        assert!((max(&x) - 9.0).abs() < EPS);
        assert!((median(&x) - 4.5).abs() < EPS);
    }

    #[test]
    fn empty_inputs_do_not_panic() {
        let e: [f64; 0] = [];
        assert_eq!(mean(&e), 0.0);
        assert_eq!(std_dev(&e), 0.0);
        assert_eq!(min(&e), 0.0);
        assert_eq!(max(&e), 0.0);
        assert_eq!(median(&e), 0.0);
        assert_eq!(skewness(&e), 0.0);
        assert_eq!(approximate_entropy(&e, 2, 0.2), 0.0);
        assert_eq!(binned_entropy(&e, 10), 0.0);
        assert_eq!(linear_trend_slope(&e), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&x, 0.0) - 1.0).abs() < EPS);
        assert!((quantile(&x, 1.0) - 4.0).abs() < EPS);
        assert!((quantile(&x, 0.5) - 2.5).abs() < EPS);
    }

    #[test]
    fn skewness_sign_matches_asymmetry() {
        let right = [1.0, 1.0, 1.0, 1.0, 10.0];
        let left = [10.0, 10.0, 10.0, 10.0, 1.0];
        assert!(skewness(&right) > 0.5);
        assert!(skewness(&left) < -0.5);
        let sym = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!(skewness(&sym).abs() < EPS);
    }

    #[test]
    fn kurtosis_of_uniformlike_is_negative() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(kurtosis(&x) < 0.0, "flat distribution is platykurtic");
    }

    #[test]
    fn trend_slope_recovers_line() {
        let x: Vec<f64> = (0..50).map(|i| 3.0 + 0.5 * i as f64).collect();
        assert!((linear_trend_slope(&x) - 0.5).abs() < EPS);
        assert!((linear_trend_intercept(&x) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn monotonic_runs() {
        let x = [1.0, 2.0, 3.0, 2.0, 1.0, 0.5, 4.0];
        assert_eq!(longest_monotonic_increase(&x), 3);
        assert_eq!(longest_monotonic_decrease(&x), 4);
    }

    #[test]
    fn strikes_and_crossings() {
        let x = [0.0, 0.0, 10.0, 10.0, 10.0, 0.0, 0.0, 0.0, 0.0];
        assert_eq!(longest_strike_above_mean(&x), 3);
        assert_eq!(longest_strike_below_mean(&x), 4);
        assert_eq!(mean_crossings(&x), 2);
    }

    #[test]
    fn peaks_counted() {
        let x = [0.0, 1.0, 0.0, 2.0, 0.0, 3.0, 0.0];
        assert_eq!(count_peaks(&x), 3);
    }

    #[test]
    fn autocorrelation_of_periodic_signal() {
        let x: Vec<f64> =
            (0..200).map(|i| (std::f64::consts::TAU * i as f64 / 10.0).sin()).collect();
        assert!(autocorrelation(&x, 10) > 0.85, "full-period lag is correlated");
        assert!(autocorrelation(&x, 5) < -0.85, "half-period lag anticorrelated");
    }

    #[test]
    fn approximate_entropy_orders_regular_vs_random() {
        let regular: Vec<f64> = (0..120).map(|i| (i % 2) as f64).collect();
        // Deterministic pseudo-random series.
        let mut state = 12345u64;
        let noisy: Vec<f64> = (0..120)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as f64 / (1u64 << 31) as f64
            })
            .collect();
        let e_reg = approximate_entropy(&regular, 2, 0.2);
        let e_noise = approximate_entropy(&noisy, 2, 0.2);
        assert!(e_reg < e_noise, "regular {e_reg} should be below noisy {e_noise}");
    }

    #[test]
    fn binned_entropy_bounds() {
        let constant = [5.0; 50];
        assert_eq!(binned_entropy(&constant, 10), 0.0);
        let uniform: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let e = binned_entropy(&uniform, 10);
        assert!((e - (10.0f64).ln()).abs() < 0.02, "uniform entropy near ln(bins), got {e}");
    }

    #[test]
    fn cid_grows_with_complexity() {
        let smooth: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let jagged: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 0.0 } else { 1.0 }).collect();
        assert!(cid_ce(&jagged) > cid_ce(&smooth));
    }

    #[test]
    fn index_mass_quantile_midpoint() {
        let x = [1.0, 1.0, 1.0, 1.0];
        assert!((index_mass_quantile(&x, 0.5) - 0.5).abs() < EPS);
    }

    #[test]
    fn recurrence_ratio() {
        let x = [1.0, 2.0, 2.0, 3.0];
        assert!((ratio_value_recurrence(&x) - 0.5).abs() < EPS);
        let unique = [1.0, 2.0, 3.0];
        assert_eq!(ratio_value_recurrence(&unique), 0.0);
    }

    #[test]
    fn time_reversal_asymmetry_zero_for_symmetric() {
        let x: Vec<f64> = (0..100).map(|i| (i as f64 / 7.0).sin()).collect();
        // Sine is time-reversible; statistic should be small relative to amplitude.
        assert!(time_reversal_asymmetry(&x, 1).abs() < 0.05);
    }
}
