//! Zero-copy window sources and the per-view extraction plan.
//!
//! The materialised hot path used to clone an entire telemetry window
//! ([`MultiSeries`]), preprocess the clone, extract *every* metric's
//! features (48–176 per metric) and then project the handful of
//! selected columns the model actually consumes. At fleet scale that
//! is the dominant cost: on the paper's catalogs the chi-square
//! selection touches roughly half the metrics, so most of the work was
//! thrown away.
//!
//! This module supplies the slice-based replacement:
//!
//! * [`SeriesSource`] — anything that can lend per-metric `&[f64]`
//!   slices (a [`MultiSeries`], or `alba-store`'s `WindowView` without
//!   materialising). Preprocessing happens in a reusable scratch
//!   buffer, never on a cloned window.
//! * [`ExtractPlan`] — the selected feature columns grouped by metric:
//!   which metrics must be extracted at all, and where each kept
//!   feature lands in the model-input row. Built once per view, reused
//!   every window.
//! * [`ExtractScratch`] — the reusable buffers; one per shard/thread.
//!
//! The contract, pinned by golden tests against
//! [`FeatureView::unscaled_row`](crate::FeatureView::unscaled_row):
//! the planned path is **bit-identical** to the materialised path,
//! including NaN-gap interpolation, counter differencing and the
//! trim's middle-sample fallback.

use alba_data::{MetricKind, MultiSeries};

/// A borrowed multivariate window: per-metric series slices plus the
/// metric kinds preprocessing needs. Implemented by [`MultiSeries`]
/// here and by `alba-store::WindowView` (zero-copy over a stored
/// segment) in the store crate.
pub trait SeriesSource {
    /// Number of metrics.
    fn n_metrics(&self) -> usize;
    /// Number of timestamps.
    fn series_len(&self) -> usize;
    /// Metric `m`'s series.
    fn metric(&self, m: usize) -> &[f64];
    /// Metric `m`'s kind (counters get differenced).
    fn metric_kind(&self, m: usize) -> MetricKind;
}

impl SeriesSource for MultiSeries {
    fn n_metrics(&self) -> usize {
        MultiSeries::n_metrics(self)
    }

    fn series_len(&self) -> usize {
        self.len()
    }

    fn metric(&self, m: usize) -> &[f64] {
        MultiSeries::metric(self, m)
    }

    fn metric_kind(&self, m: usize) -> MetricKind {
        self.metrics[m].kind
    }
}

/// One selected feature: its offset within the owning metric's feature
/// block, and its position in the model-input row.
type Slot = (usize, usize);

/// The selected feature columns of a
/// [`FeatureView`](crate::FeatureView), grouped by owning metric —
/// metrics with no selected feature are skipped entirely on the hot
/// path. Built once (per view × extractor) and reused every window.
#[derive(Clone, Debug)]
pub struct ExtractPlan {
    /// `(metric index, [(feature offset within metric, output position)])`,
    /// metrics ascending.
    per_metric: Vec<(usize, Vec<Slot>)>,
    n_out: usize,
    npm: usize,
}

impl ExtractPlan {
    /// Groups `selected` full-vector column indices by owning metric,
    /// given the extractor's `npm` features per metric.
    ///
    /// # Panics
    /// Panics when `npm == 0`.
    pub fn new(selected: &[usize], npm: usize) -> Self {
        assert!(npm >= 1, "an extractor must produce at least one feature per metric");
        let mut per_metric: Vec<(usize, Vec<Slot>)> = Vec::new();
        for (pos, &c) in selected.iter().enumerate() {
            let (m, k) = (c / npm, c % npm);
            match per_metric.binary_search_by_key(&m, |e| e.0) {
                Ok(i) => per_metric[i].1.push((k, pos)),
                Err(i) => per_metric.insert(i, (m, vec![(k, pos)])),
            }
        }
        Self { per_metric, n_out: selected.len(), npm }
    }

    /// Width of the model-input row this plan scatters into.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Features per metric the plan was built for.
    pub fn npm(&self) -> usize {
        self.npm
    }

    /// Metrics that must actually be extracted (the rest are skipped).
    pub fn n_metrics_used(&self) -> usize {
        self.per_metric.len()
    }

    /// The grouped slots, metrics ascending.
    pub(crate) fn per_metric(&self) -> &[(usize, Vec<Slot>)] {
        &self.per_metric
    }
}

/// Reusable buffers for planned extraction: the preprocessed copy of
/// one metric's series plus the extractor-side working buffers. One
/// per shard (or thread) amortises every allocation on the hot path.
#[derive(Clone, Debug, Default)]
pub struct ExtractScratch {
    /// Preprocessed series of the metric currently being extracted.
    pub(crate) series: Vec<f64>,
    /// The selected features the extractor produced for that metric.
    pub(crate) feats: Vec<f64>,
    /// Wanted per-metric feature offsets, in plan order.
    pub(crate) wanted: Vec<usize>,
    /// Extractor-private buffer for
    /// [`FeatureExtractor::extract_select`](crate::FeatureExtractor::extract_select).
    pub(crate) inner: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_groups_by_metric_ascending_and_keeps_positions() {
        // npm=4; columns 9,1,6,11,0 → metric 2:(1,0), 0:(1,1),(0,4), 1:(2,2), 2:(3,3)
        let plan = ExtractPlan::new(&[9, 1, 6, 11, 0], 4);
        assert_eq!(plan.n_out(), 5);
        assert_eq!(plan.n_metrics_used(), 3);
        let got = plan.per_metric();
        assert_eq!(got[0], (0, vec![(1, 1), (0, 4)]));
        assert_eq!(got[1], (1, vec![(2, 2)]));
        assert_eq!(got[2], (2, vec![(1, 0), (3, 3)]));
    }

    #[test]
    fn unselected_metrics_are_absent_from_the_plan() {
        let plan = ExtractPlan::new(&[0, 1, 2], 48);
        assert_eq!(plan.n_metrics_used(), 1, "all three columns live in metric 0");
    }

    #[test]
    fn empty_selection_is_an_empty_plan() {
        let plan = ExtractPlan::new(&[], 48);
        assert_eq!(plan.n_out(), 0);
        assert_eq!(plan.n_metrics_used(), 0);
    }
}
