//! MVTS-style feature extraction: 48 statistical features per metric.
//!
//! Mirrors the MVTS-Data Toolkit used by the paper: descriptive statistics,
//! absolute differences between the descriptive statistics of the first and
//! second halves of the series, and long-run trend features such as the
//! longest monotonic increase (Sec. III-A).

use crate::extract::FeatureExtractor;
use crate::stats::*;

/// The MVTS extractor (stateless).
#[derive(Clone, Copy, Debug, Default)]
pub struct Mvts;

/// Names of the 48 features, in output order.
pub const MVTS_FEATURE_NAMES: [&str; 48] = [
    // Descriptive statistics (12).
    "mean",
    "std",
    "var",
    "min",
    "max",
    "median",
    "q25",
    "q75",
    "iqr",
    "rms",
    "skewness",
    "kurtosis",
    // Change / complexity statistics (10).
    "mean_abs_change",
    "mean_change",
    "abs_energy",
    "cid_ce",
    "variation_coefficient",
    "mean_crossings",
    "count_peaks",
    "fraction_above_mean",
    "longest_strike_above_mean",
    "longest_strike_below_mean",
    // Long-run trends (4).
    "trend_slope",
    "trend_intercept",
    "longest_monotonic_increase",
    "longest_monotonic_decrease",
    // First-half vs second-half absolute differences (11).
    "halves_abs_diff_mean",
    "halves_abs_diff_std",
    "halves_abs_diff_min",
    "halves_abs_diff_max",
    "halves_abs_diff_median",
    "halves_abs_diff_q25",
    "halves_abs_diff_q75",
    "halves_abs_diff_skewness",
    "halves_abs_diff_kurtosis",
    "halves_abs_diff_slope",
    "halves_abs_diff_rms",
    // Positional / boundary statistics (11).
    "first_value",
    "last_value",
    "last_minus_first",
    "argmax_fraction",
    "argmin_fraction",
    "autocorr_lag1",
    "autocorr_lag2",
    "autocorr_lag5",
    "sum",
    "q10",
    "q90",
];

impl FeatureExtractor for Mvts {
    fn name(&self) -> &'static str {
        "mvts"
    }

    fn n_features_per_metric(&self) -> usize {
        MVTS_FEATURE_NAMES.len()
    }

    fn feature_names(&self, metric: &str) -> Vec<String> {
        MVTS_FEATURE_NAMES.iter().map(|f| format!("{metric}::{f}")).collect()
    }

    fn extract(&self, x: &[f64], out: &mut Vec<f64>) {
        let mut sorted = x.to_vec();
        sorted.sort_by(f64::total_cmp);
        let q25 = quantile_sorted(&sorted, 0.25);
        let q75 = quantile_sorted(&sorted, 0.75);

        // Descriptive statistics.
        out.push(mean(x));
        out.push(std_dev(x));
        out.push(variance(x));
        out.push(min(x));
        out.push(max(x));
        out.push(quantile_sorted(&sorted, 0.5));
        out.push(q25);
        out.push(q75);
        out.push(q75 - q25);
        out.push(rms(x));
        out.push(skewness(x));
        out.push(kurtosis(x));

        // Change / complexity.
        out.push(mean_abs_change(x));
        out.push(mean_change(x));
        out.push(abs_energy(x));
        out.push(cid_ce(x));
        out.push(variation_coefficient(x));
        out.push(mean_crossings(x) as f64);
        out.push(count_peaks(x) as f64);
        out.push(fraction_above_mean(x));
        out.push(longest_strike_above_mean(x) as f64);
        out.push(longest_strike_below_mean(x) as f64);

        // Long-run trends.
        out.push(linear_trend_slope(x));
        out.push(linear_trend_intercept(x));
        out.push(longest_monotonic_increase(x) as f64);
        out.push(longest_monotonic_decrease(x) as f64);

        // First half vs second half.
        let mid = x.len() / 2;
        let (a, b) = x.split_at(mid);
        out.push((mean(a) - mean(b)).abs());
        out.push((std_dev(a) - std_dev(b)).abs());
        out.push((min(a) - min(b)).abs());
        out.push((max(a) - max(b)).abs());
        out.push((median(a) - median(b)).abs());
        out.push((quantile(a, 0.25) - quantile(b, 0.25)).abs());
        out.push((quantile(a, 0.75) - quantile(b, 0.75)).abs());
        out.push((skewness(a) - skewness(b)).abs());
        out.push((kurtosis(a) - kurtosis(b)).abs());
        out.push((linear_trend_slope(a) - linear_trend_slope(b)).abs());
        out.push((rms(a) - rms(b)).abs());

        // Positional / boundary.
        out.push(x.first().copied().unwrap_or(0.0));
        out.push(x.last().copied().unwrap_or(0.0));
        out.push(match (x.first(), x.last()) {
            (Some(f), Some(l)) => l - f,
            _ => 0.0,
        });
        let arg_of = |cmp: fn(&f64, &f64) -> bool| -> f64 {
            if x.is_empty() {
                return 0.0;
            }
            let mut idx = 0usize;
            for (i, v) in x.iter().enumerate() {
                if cmp(v, &x[idx]) {
                    idx = i;
                }
            }
            idx as f64 / x.len() as f64
        };
        out.push(arg_of(|v, best| v > best));
        out.push(arg_of(|v, best| v < best));
        out.push(autocorrelation(x, 1));
        out.push(autocorrelation(x, 2));
        out.push(autocorrelation(x, 5));
        out.push(x.iter().sum());
        out.push(quantile_sorted(&sorted, 0.1));
        out.push(quantile_sorted(&sorted, 0.9));
    }

    /// Every MVTS feature is an independent pure function of the
    /// series, so a selected subset is computed feature-by-feature —
    /// the sort backing the quantile features runs (once, into
    /// `scratch`) only when a quantile feature is actually wanted.
    /// Each arm is the exact expression the full path pushes, so the
    /// subset is bit-identical to gathering from [`Mvts::extract`]
    /// (pinned by the tests below).
    fn extract_select(
        &self,
        x: &[f64],
        wanted: &[usize],
        scratch: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) {
        // median, q25, q75, iqr, q10, q90 need the sorted copy.
        if wanted.iter().any(|k| matches!(k, 5..=8 | 46 | 47)) {
            scratch.clear();
            scratch.extend_from_slice(x);
            scratch.sort_by(f64::total_cmp);
        }
        let sorted: &[f64] = scratch;
        let mid = x.len() / 2;
        let (a, b) = x.split_at(mid);
        let arg_of = |cmp: fn(&f64, &f64) -> bool| -> f64 {
            if x.is_empty() {
                return 0.0;
            }
            let mut idx = 0usize;
            for (i, v) in x.iter().enumerate() {
                if cmp(v, &x[idx]) {
                    idx = i;
                }
            }
            idx as f64 / x.len() as f64
        };
        for &k in wanted {
            out.push(match k {
                0 => mean(x),
                1 => std_dev(x),
                2 => variance(x),
                3 => min(x),
                4 => max(x),
                5 => quantile_sorted(sorted, 0.5),
                6 => quantile_sorted(sorted, 0.25),
                7 => quantile_sorted(sorted, 0.75),
                8 => quantile_sorted(sorted, 0.75) - quantile_sorted(sorted, 0.25),
                9 => rms(x),
                10 => skewness(x),
                11 => kurtosis(x),
                12 => mean_abs_change(x),
                13 => mean_change(x),
                14 => abs_energy(x),
                15 => cid_ce(x),
                16 => variation_coefficient(x),
                17 => mean_crossings(x) as f64,
                18 => count_peaks(x) as f64,
                19 => fraction_above_mean(x),
                20 => longest_strike_above_mean(x) as f64,
                21 => longest_strike_below_mean(x) as f64,
                22 => linear_trend_slope(x),
                23 => linear_trend_intercept(x),
                24 => longest_monotonic_increase(x) as f64,
                25 => longest_monotonic_decrease(x) as f64,
                26 => (mean(a) - mean(b)).abs(),
                27 => (std_dev(a) - std_dev(b)).abs(),
                28 => (min(a) - min(b)).abs(),
                29 => (max(a) - max(b)).abs(),
                30 => (median(a) - median(b)).abs(),
                31 => (quantile(a, 0.25) - quantile(b, 0.25)).abs(),
                32 => (quantile(a, 0.75) - quantile(b, 0.75)).abs(),
                33 => (skewness(a) - skewness(b)).abs(),
                34 => (kurtosis(a) - kurtosis(b)).abs(),
                35 => (linear_trend_slope(a) - linear_trend_slope(b)).abs(),
                36 => (rms(a) - rms(b)).abs(),
                37 => x.first().copied().unwrap_or(0.0),
                38 => x.last().copied().unwrap_or(0.0),
                39 => match (x.first(), x.last()) {
                    (Some(f), Some(l)) => l - f,
                    _ => 0.0,
                },
                40 => arg_of(|v, best| v > best),
                41 => arg_of(|v, best| v < best),
                42 => autocorrelation(x, 1),
                43 => autocorrelation(x, 2),
                44 => autocorrelation(x, 5),
                45 => x.iter().sum(),
                46 => quantile_sorted(sorted, 0.1),
                47 => quantile_sorted(sorted, 0.9),
                _ => panic!("mvts feature offset {k} out of range (npm = 48)"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extract(x: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        Mvts.extract(x, &mut out);
        out
    }

    #[test]
    fn produces_exactly_48_features() {
        assert_eq!(MVTS_FEATURE_NAMES.len(), 48);
        assert_eq!(Mvts.n_features_per_metric(), 48);
        let out = extract(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(out.len(), 48);
    }

    #[test]
    fn handles_degenerate_inputs() {
        for input in [vec![], vec![1.0], vec![1.0, 1.0], vec![0.0; 10]] {
            let out = extract(&input);
            assert_eq!(out.len(), 48);
            assert!(out.iter().all(|v| v.is_finite()), "input {input:?}");
        }
    }

    #[test]
    fn feature_names_are_prefixed_and_unique() {
        let names = Mvts.feature_names("meminfo.MemFree.0");
        assert_eq!(names.len(), 48);
        assert!(names[0].starts_with("meminfo.MemFree.0::"));
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 48);
    }

    #[test]
    fn known_values_on_simple_series() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let out = extract(&x);
        let idx = |n: &str| MVTS_FEATURE_NAMES.iter().position(|&f| f == n).unwrap();
        assert!((out[idx("mean")] - 2.5).abs() < 1e-12);
        assert!((out[idx("min")] - 1.0).abs() < 1e-12);
        assert!((out[idx("max")] - 4.0).abs() < 1e-12);
        assert!((out[idx("last_minus_first")] - 3.0).abs() < 1e-12);
        assert!((out[idx("trend_slope")] - 1.0).abs() < 1e-12);
        assert!((out[idx("sum")] - 10.0).abs() < 1e-12);
        assert_eq!(out[idx("longest_monotonic_increase")], 4.0);
        assert_eq!(out[idx("argmax_fraction")], 0.75);
        assert_eq!(out[idx("argmin_fraction")], 0.0);
    }

    #[test]
    fn extract_select_is_bit_identical_to_gathering_from_extract() {
        // Nasty series: NaN, ±inf survivors are upstream-preprocessed
        // away in production, but bit-identity must hold regardless.
        let series: Vec<Vec<f64>> = vec![
            (0..60).map(|t| (t as f64 * 0.31).sin() * 12.0 + 50.0).collect(),
            vec![],
            vec![4.2],
            vec![1.0; 17],
            (0..33).map(|t| if t % 7 == 2 { f64::NAN } else { t as f64 }).collect(),
        ];
        for x in &series {
            let full = extract(x);
            let mut scratch = Vec::new();
            // Every feature individually…
            for k in 0..48 {
                let mut out = Vec::new();
                Mvts.extract_select(x, &[k], &mut scratch, &mut out);
                assert_eq!(
                    out[0].to_bits(),
                    full[k].to_bits(),
                    "feature {} diverged on {:?}",
                    MVTS_FEATURE_NAMES[k],
                    x
                );
            }
            // …and a production-shaped subset, in plan order.
            let wanted: Vec<usize> = (0..48).step_by(3).collect();
            let mut out = Vec::new();
            Mvts.extract_select(x, &wanted, &mut scratch, &mut out);
            let gathered: Vec<u64> = wanted.iter().map(|&k| full[k].to_bits()).collect();
            let got: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, gathered);
        }
    }

    #[test]
    fn half_diffs_detect_level_shift() {
        let mut x = vec![1.0; 50];
        x.extend(vec![10.0; 50]);
        let out = extract(&x);
        let idx = |n: &str| MVTS_FEATURE_NAMES.iter().position(|&f| f == n).unwrap();
        assert!((out[idx("halves_abs_diff_mean")] - 9.0).abs() < 1e-12);
    }
}
