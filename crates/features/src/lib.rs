//! # alba-features
//!
//! Feature pipeline for the ALBADross reproduction: raw-telemetry
//! preprocessing (Sec. IV-E.1), the MVTS (48 features/metric) and
//! TSFRESH-style (176 features/metric) statistical extractors (Sec. III-A),
//! chi-square feature selection (Sec. III-B) and Min-Max scaling
//! (Sec. IV-E.2), all implemented from scratch.

#![warn(missing_docs)]

pub mod extract;
pub mod fft;
pub mod mvts;
pub mod preprocess;
pub mod scale;
pub mod select;
pub mod source;
pub mod stats;
pub mod tsfresh;
pub mod view;

pub use extract::{drop_degenerate_features, extract_features, FeatureExtractor};
pub use fft::{fft_in_place, real_fft_magnitudes, welch_psd};
pub use mvts::{Mvts, MVTS_FEATURE_NAMES};
pub use preprocess::{diff_counter, interpolate_gaps, preprocess, trim_bounds, PreprocessConfig};
pub use scale::MinMaxScaler;
pub use select::{chi_square_scores, select_top_k, ChiSquareScores};
pub use source::{ExtractPlan, ExtractScratch, SeriesSource};
pub use tsfresh::{tsfresh_feature_suffixes, TsFresh};
pub use view::FeatureView;
