//! Raw-telemetry cleanup (paper Sec. IV-E.1).
//!
//! Before feature extraction the paper (1) omits the initialization and
//! termination intervals, (2) differences cumulative performance counters
//! ("we are interested in the change, not the raw value"), and (3) linearly
//! interpolates missing values lost during collection.

use alba_data::{MetricKind, MultiSeries};
use serde::{Deserialize, Serialize};

/// Preprocessing configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PreprocessConfig {
    /// Fraction of the series trimmed from each end (init / termination).
    pub trim_frac: f64,
    /// Difference cumulative counters into per-interval rates.
    pub diff_counters: bool,
    /// Linearly interpolate NaN gaps (and extend edge values outward).
    pub interpolate: bool,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        Self { trim_frac: 0.08, diff_counters: true, interpolate: true }
    }
}

/// Linearly interpolates NaN runs in place.
///
/// Interior gaps are filled by the line between the flanking finite values;
/// leading/trailing gaps are filled with the nearest finite value. A series
/// with no finite value at all becomes all zeros.
pub fn interpolate_gaps(series: &mut [f64]) {
    let n = series.len();
    if n == 0 {
        return;
    }
    let mut last_finite: Option<usize> = None;
    let mut i = 0;
    while i < n {
        if series[i].is_finite() {
            if let Some(prev) = last_finite {
                if i > prev + 1 {
                    // Fill the interior gap (prev, i).
                    let a = series[prev];
                    let b = series[i];
                    let span = (i - prev) as f64;
                    for (off, v) in series[prev + 1..i].iter_mut().enumerate() {
                        *v = a + (b - a) * (off + 1) as f64 / span;
                    }
                }
            } else if i > 0 {
                // Leading gap: back-fill.
                let v = series[i];
                for s in &mut series[..i] {
                    *s = v;
                }
            }
            last_finite = Some(i);
        }
        i += 1;
    }
    match last_finite {
        Some(last) if last + 1 < n => {
            let v = series[last];
            for s in &mut series[last + 1..] {
                *s = v;
            }
        }
        None => {
            for s in series.iter_mut() {
                *s = 0.0;
            }
        }
        _ => {}
    }
}

/// First-differences a cumulative counter series in place, producing
/// per-interval increments. The first element becomes the first increment
/// (i.e. the output length equals the input length, with `out[0] = out[1]`'s
/// predecessor increment duplicated from the first delta) so that series
/// stay aligned with gauges.
///
/// Counter resets (decreasing values, as happen when a collector restarts)
/// clamp to zero rather than producing a huge negative spike.
pub fn diff_counter(series: &mut [f64]) {
    if series.len() < 2 {
        if let Some(v) = series.first_mut() {
            *v = 0.0;
        }
        return;
    }
    let mut prev = series[0];
    for v in series.iter_mut().skip(1) {
        let cur = *v;
        *v = (cur - prev).max(0.0);
        prev = cur;
    }
    series[0] = series[1];
}

/// The half-open `[start, end)` sample range `preprocess` keeps when
/// trimming a series of `len` samples by `trim_frac` — including
/// `MultiSeries::trim`'s middle-sample fallback when the trim would
/// consume the whole series. The slice-based extraction path uses this
/// to trim by sub-slicing instead of draining a cloned window; the two
/// must stay bit-identical (pinned by the golden tests in `view`).
pub fn trim_bounds(len: usize, trim_frac: f64) -> (usize, usize) {
    if len == 0 {
        return (0, 0);
    }
    let trim = (len as f64 * trim_frac) as usize;
    let (head, tail) = if trim + trim >= len {
        // Keep the middle sample, exactly as `MultiSeries::trim`.
        let mid = len / 2;
        (mid, len - mid - 1)
    } else {
        (trim, trim)
    };
    (head, len - tail)
}

/// Applies the full preprocessing pipeline to one node's telemetry.
pub fn preprocess(series: &mut MultiSeries, cfg: &PreprocessConfig) {
    let len = series.len();
    if len == 0 {
        return;
    }
    let trim = (len as f64 * cfg.trim_frac) as usize;
    series.trim(trim, trim);
    for (m, def) in series.metrics.clone().iter().enumerate() {
        let s = &mut series.values[m];
        if cfg.interpolate {
            interpolate_gaps(s);
        }
        if cfg.diff_counters && def.kind == MetricKind::Counter {
            diff_counter(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alba_data::MetricDef;

    #[test]
    fn interpolates_interior_gap() {
        let mut s = vec![1.0, f64::NAN, f64::NAN, 4.0];
        interpolate_gaps(&mut s);
        assert_eq!(s, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn extends_edges() {
        let mut s = vec![f64::NAN, 5.0, f64::NAN];
        interpolate_gaps(&mut s);
        assert_eq!(s, vec![5.0, 5.0, 5.0]);
    }

    #[test]
    fn all_nan_becomes_zero() {
        let mut s = vec![f64::NAN, f64::NAN];
        interpolate_gaps(&mut s);
        assert_eq!(s, vec![0.0, 0.0]);
    }

    #[test]
    fn empty_series_is_fine() {
        let mut s: Vec<f64> = vec![];
        interpolate_gaps(&mut s);
        diff_counter(&mut s);
    }

    #[test]
    fn diff_recovers_rates() {
        let mut s = vec![10.0, 12.0, 15.0, 15.0, 21.0];
        diff_counter(&mut s);
        assert_eq!(s, vec![2.0, 2.0, 3.0, 0.0, 6.0]);
    }

    #[test]
    fn diff_clamps_counter_resets() {
        let mut s = vec![100.0, 110.0, 5.0, 15.0];
        diff_counter(&mut s);
        assert_eq!(s, vec![10.0, 10.0, 0.0, 10.0]);
    }

    #[test]
    fn trim_bounds_matches_multiseries_trim_exactly() {
        for len in [0usize, 1, 2, 3, 5, 10, 100, 231] {
            for frac in [0.0, 0.08, 0.3, 0.5, 0.9] {
                let defs = vec![MetricDef {
                    name: "g".into(),
                    subsystem: "s".into(),
                    kind: MetricKind::Gauge,
                }];
                let mut ms = MultiSeries::new(defs);
                for t in 0..len {
                    ms.push_sample(&[t as f64]);
                }
                let (start, end) = trim_bounds(len, frac);
                let expect: Vec<f64> = (start..end).map(|t| t as f64).collect();
                let trim = (len as f64 * frac) as usize;
                ms.trim(trim, trim);
                assert_eq!(ms.metric(0), expect.as_slice(), "len={len} frac={frac}");
            }
        }
    }

    #[test]
    fn full_pipeline_trims_interpolates_and_diffs() {
        let defs = vec![
            MetricDef { name: "g".into(), subsystem: "s".into(), kind: MetricKind::Gauge },
            MetricDef { name: "c".into(), subsystem: "s".into(), kind: MetricKind::Counter },
        ];
        let mut ms = MultiSeries::new(defs);
        for t in 0..100 {
            let gauge = if t == 50 { f64::NAN } else { t as f64 };
            ms.push_sample(&[gauge, (t * 2) as f64]);
        }
        preprocess(&mut ms, &PreprocessConfig::default());
        assert_eq!(ms.len(), 100 - 2 * 8);
        // Gauge gap interpolated.
        assert!(ms.metric(0).iter().all(|v| v.is_finite()));
        // Counter became a constant rate of 2.
        assert!(ms.metric(1).iter().all(|&v| (v - 2.0).abs() < 1e-9));
    }
}
