//! Dataset-level feature extraction: raw node telemetry in, feature
//! [`Dataset`] out.

use alba_data::{Dataset, LabelEncoder, Matrix};
use alba_telemetry::NodeTelemetry;
use rayon::prelude::*;

use crate::preprocess::{preprocess, PreprocessConfig};

/// A per-metric time-series feature extractor (MVTS, TSFRESH, ...).
///
/// Implementations must be deterministic, produce exactly
/// `n_features_per_metric()` finite values for *any* input (including empty
/// and constant series), and be safe to call from multiple threads.
pub trait FeatureExtractor: Sync {
    /// Short identifier (`"mvts"`, `"tsfresh"`).
    fn name(&self) -> &'static str;
    /// Number of features produced per metric.
    fn n_features_per_metric(&self) -> usize;
    /// Fully qualified feature names for one metric.
    fn feature_names(&self, metric: &str) -> Vec<String>;
    /// Appends the features of one metric's series to `out`.
    fn extract(&self, series: &[f64], out: &mut Vec<f64>);

    /// Appends only the features at offsets `wanted` (each `<`
    /// [`FeatureExtractor::n_features_per_metric`]), in the given
    /// order. Must be **bit-identical** to gathering those offsets from
    /// [`FeatureExtractor::extract`]'s output.
    ///
    /// The default computes the full block into `scratch` and gathers —
    /// correct for any extractor. Extractors whose features are
    /// independent pure functions (e.g. [`Mvts`](crate::Mvts)) override
    /// this to skip the unselected ones: with a chi-square-selected
    /// view only a fraction of each metric's block is consumed, so
    /// this is where the planned hot path stops paying for features
    /// the model never sees. `scratch` is an extractor-private reusable
    /// buffer (the default uses it for the full block; overrides may
    /// repurpose it, e.g. for a sorted copy).
    fn extract_select(
        &self,
        series: &[f64],
        wanted: &[usize],
        scratch: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) {
        scratch.clear();
        self.extract(series, scratch);
        out.extend(wanted.iter().map(|&k| scratch[k]));
    }
}

/// Preprocesses every sample and extracts per-metric features, producing a
/// labeled dataset (rows parallel to `samples`).
///
/// `class_names` fixes the label encoding (class 0 must be `healthy` for
/// the false-alarm / miss-rate metrics to be meaningful).
///
/// # Panics
/// Panics when `samples` is empty, when samples disagree on their metric
/// catalog, or when a sample's label is missing from `class_names`.
pub fn extract_features(
    samples: &[NodeTelemetry],
    extractor: &dyn FeatureExtractor,
    pre: &PreprocessConfig,
    class_names: &[String],
) -> Dataset {
    assert!(!samples.is_empty(), "cannot extract features from an empty campaign");
    let encoder = LabelEncoder::from_names(class_names);
    let metric_defs = &samples[0].series.metrics;
    let n_metrics = metric_defs.len();
    let per_metric = extractor.n_features_per_metric();
    let width = n_metrics * per_metric;

    let feature_names: Vec<String> =
        metric_defs.iter().flat_map(|d| extractor.feature_names(&d.name)).collect();

    let rows: Vec<Vec<f64>> = samples
        .par_iter()
        .map(|sample| {
            assert_eq!(
                sample.series.n_metrics(),
                n_metrics,
                "sample {} has a different metric catalog",
                sample.meta.describe()
            );
            let mut series = sample.series.clone();
            preprocess(&mut series, pre);
            let mut row = Vec::with_capacity(width);
            for m in 0..n_metrics {
                extractor.extract(series.metric(m), &mut row);
            }
            debug_assert_eq!(row.len(), width);
            row
        })
        .collect();

    let y: Vec<usize> = samples
        .iter()
        .map(|s| {
            encoder
                .encode(&s.label)
                // alba-lint: allow(reachable-panic) reason="labels come from the catalog the encoder was built from"
                .unwrap_or_else(|| panic!("label {:?} not in class names", s.label))
        })
        .collect();
    let meta = samples.iter().map(|s| s.meta.clone()).collect();

    let mut x = Matrix::zeros(0, width);
    for row in &rows {
        x.push_row(row);
    }
    Dataset::new(x, y, encoder, meta, feature_names)
}

/// Drops degenerate feature columns: any column containing a non-finite
/// value, or with (near-)zero variance across the dataset — the paper's
/// "drop features with NaN or zero values" cleanup (Sec. IV-E.1).
///
/// Returns the surviving dataset and the retained column indices.
pub fn drop_degenerate_features(ds: &Dataset) -> (Dataset, Vec<usize>) {
    let (rows, cols) = ds.x.shape();
    let keep: Vec<usize> = (0..cols)
        .filter(|&c| {
            let mut minv = f64::INFINITY;
            let mut maxv = f64::NEG_INFINITY;
            for r in 0..rows {
                let v = ds.x.get(r, c);
                if !v.is_finite() {
                    return false;
                }
                minv = minv.min(v);
                maxv = maxv.max(v);
            }
            maxv - minv > 1e-12
        })
        .collect();
    (ds.select_features(&keep), keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvts::Mvts;
    use alba_data::SampleMeta;
    use alba_telemetry::{class_names, CampaignConfig, Scale};

    fn tiny_campaign() -> Vec<NodeTelemetry> {
        let mut cfg = CampaignConfig::volta(Scale::Smoke, 5);
        cfg.apps.truncate(2);
        cfg.shapes.truncate(1);
        cfg.generate()
    }

    #[test]
    fn all_nan_series_extracts_without_panicking() {
        // A node can drop off the aggregator entirely; the extractors
        // must not panic sorting a window of NaNs (total_cmp, not
        // partial_cmp().unwrap()).
        let series = vec![f64::NAN; 128];
        for extractor in [&Mvts as &dyn FeatureExtractor, &crate::tsfresh::TsFresh] {
            let mut out = Vec::new();
            extractor.extract(&series, &mut out);
            assert_eq!(out.len(), extractor.n_features_per_metric());
        }
    }

    #[test]
    fn extraction_shape_and_labels() {
        let samples = tiny_campaign();
        let ds = extract_features(&samples, &Mvts, &PreprocessConfig::default(), &class_names());
        assert_eq!(ds.len(), samples.len());
        let n_metrics = samples[0].series.n_metrics();
        assert_eq!(ds.x.cols(), n_metrics * 48);
        assert_eq!(ds.feature_names.len(), ds.x.cols());
        assert_eq!(ds.encoder.decode(0), Some("healthy"));
        // Labels survive encoding.
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(ds.encoder.decode(ds.y[i]), Some(s.label.as_str()));
        }
    }

    #[test]
    fn extraction_is_deterministic() {
        let samples = tiny_campaign();
        let a = extract_features(&samples, &Mvts, &PreprocessConfig::default(), &class_names());
        let b = extract_features(&samples, &Mvts, &PreprocessConfig::default(), &class_names());
        assert_eq!(a.x.as_slice(), b.x.as_slice());
    }

    #[test]
    fn degenerate_columns_are_dropped() {
        let samples = tiny_campaign();
        let ds = extract_features(&samples, &Mvts, &PreprocessConfig::default(), &class_names());
        let (clean, keep) = drop_degenerate_features(&ds);
        assert!(clean.x.cols() <= ds.x.cols());
        assert!(clean.x.cols() > 0, "some features must survive");
        assert_eq!(clean.x.cols(), keep.len());
        // All survivors have variance.
        for c in 0..clean.x.cols() {
            let col = clean.x.column(c);
            let first = col[0];
            assert!(col.iter().any(|&v| (v - first).abs() > 1e-12));
            assert!(col.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    #[should_panic(expected = "label")]
    fn unknown_label_panics() {
        let samples = tiny_campaign();
        let _ = extract_features(
            &samples,
            &Mvts,
            &PreprocessConfig::default(),
            &["healthy".to_string()], // anomaly labels missing
        );
    }

    #[test]
    fn meta_is_preserved() {
        let samples = tiny_campaign();
        let ds = extract_features(&samples, &Mvts, &PreprocessConfig::default(), &class_names());
        let expect: Vec<SampleMeta> = samples.iter().map(|s| s.meta.clone()).collect();
        assert_eq!(ds.meta, expect);
    }
}
