//! Min-Max scaling (paper Sec. IV-E.2: "We apply the Min-Max scaler to
//! training and test datasets").

use alba_data::Matrix;
use serde::{Deserialize, Serialize};

/// A fitted Min-Max scaler: maps each feature's training range to `[0, 1]`.
///
/// As in scikit-learn, the transform is fit on the training split only and
/// applied unchanged to the test split (test values may fall outside
/// `[0, 1]`; models must tolerate that).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    ranges: Vec<f64>,
}

impl MinMaxScaler {
    /// Fits the scaler on a training matrix.
    pub fn fit(x: &Matrix) -> Self {
        let (mins, maxs) = x.column_min_max();
        let ranges = mins
            .iter()
            .zip(&maxs)
            .map(|(&lo, &hi)| if hi - lo > 1e-12 { hi - lo } else { 1.0 })
            .collect();
        Self { mins, ranges }
    }

    /// Number of features the scaler was fitted on.
    pub fn n_features(&self) -> usize {
        self.mins.len()
    }

    /// Transforms a matrix in place.
    ///
    /// # Panics
    /// Panics when the column count differs from the fitted width.
    pub fn transform_inplace(&self, x: &mut Matrix) {
        assert_eq!(x.cols(), self.n_features(), "scaler width mismatch");
        let cols = x.cols();
        for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
            let c = i % cols;
            *v = (*v - self.mins[c]) / self.ranges[c];
        }
    }

    /// Returns a transformed copy.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        self.transform_inplace(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_data_maps_to_unit_interval() {
        let x = Matrix::from_rows(&[vec![0.0, 10.0], vec![5.0, 20.0], vec![10.0, 30.0]]);
        let s = MinMaxScaler::fit(&x);
        let t = s.transform(&x);
        assert_eq!(t.row(0), &[0.0, 0.0]);
        assert_eq!(t.row(1), &[0.5, 0.5]);
        assert_eq!(t.row(2), &[1.0, 1.0]);
    }

    #[test]
    fn test_data_may_exceed_unit_interval() {
        let train = Matrix::from_rows(&[vec![0.0], vec![10.0]]);
        let s = MinMaxScaler::fit(&train);
        let test = Matrix::from_rows(&[vec![20.0], vec![-10.0]]);
        let t = s.transform(&test);
        assert_eq!(t.get(0, 0), 2.0);
        assert_eq!(t.get(1, 0), -1.0);
    }

    #[test]
    fn constant_columns_do_not_divide_by_zero() {
        let x = Matrix::from_rows(&[vec![7.0], vec![7.0]]);
        let s = MinMaxScaler::fit(&x);
        let t = s.transform(&x);
        assert!(t.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(t.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn transform_validates_width() {
        let s = MinMaxScaler::fit(&Matrix::from_rows(&[vec![1.0, 2.0]]));
        let mut wrong = Matrix::from_rows(&[vec![1.0]]);
        s.transform_inplace(&mut wrong);
    }
}
