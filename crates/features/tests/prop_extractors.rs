//! Property tests on the feature extractors: for *any* finite input series
//! the extractors must emit exactly their advertised number of finite
//! values, independent of length, scale or degeneracy — a broken invariant
//! here poisons every downstream dataset.

use alba_features::{FeatureExtractor, Mvts, TsFresh};
use proptest::prelude::*;

fn any_series() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e7f64..1e7, 0..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mvts_always_emits_48_finite_values(series in any_series()) {
        let mut out = Vec::new();
        Mvts.extract(&series, &mut out);
        prop_assert_eq!(out.len(), 48);
        prop_assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn tsfresh_always_emits_176_finite_values(series in any_series()) {
        let mut out = Vec::new();
        TsFresh.extract(&series, &mut out);
        prop_assert_eq!(out.len(), 176);
        prop_assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn extractors_are_deterministic(series in any_series()) {
        let mut a = Vec::new();
        let mut b = Vec::new();
        TsFresh.extract(&series, &mut a);
        TsFresh.extract(&series, &mut b);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn constant_series_have_zero_dispersion_features(level in -1e5f64..1e5, len in 2usize..100) {
        let series = vec![level; len];
        let mut out = Vec::new();
        Mvts.extract(&series, &mut out);
        let names = alba_features::MVTS_FEATURE_NAMES;
        let idx = |n: &str| names.iter().position(|&f| f == n).unwrap();
        // Floating-point: the mean of n copies of `level` can differ from
        // `level` in the last ulp, leaving a tiny positive variance.
        let tol = 1e-6 * (1.0 + level.abs());
        prop_assert!(out[idx("std")].abs() < tol, "std {}", out[idx("std")]);
        prop_assert!(out[idx("mean_abs_change")].abs() < tol);
        prop_assert!((out[idx("mean")] - level).abs() < 1e-9);
    }

    #[test]
    fn mvts_mean_is_shift_equivariant(series in prop::collection::vec(-1e3f64..1e3, 2..80), shift in -1e3f64..1e3) {
        let shifted: Vec<f64> = series.iter().map(|v| v + shift).collect();
        let mut a = Vec::new();
        let mut b = Vec::new();
        Mvts.extract(&series, &mut a);
        Mvts.extract(&shifted, &mut b);
        let mean_idx = alba_features::MVTS_FEATURE_NAMES.iter().position(|&f| f == "mean").unwrap();
        prop_assert!((a[mean_idx] + shift - b[mean_idx]).abs() < 1e-6);
        // Dispersion features unchanged by the shift.
        let std_idx = alba_features::MVTS_FEATURE_NAMES.iter().position(|&f| f == "std").unwrap();
        prop_assert!((a[std_idx] - b[std_idx]).abs() < 1e-6);
    }
}
