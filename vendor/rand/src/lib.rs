//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the small slice of `rand` it actually uses:
//! [`rngs::StdRng`] (a xoshiro256** generator seeded via SplitMix64),
//! the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, uniform range sampling
//! and [`seq::SliceRandom`]. Streams are deterministic for a given seed,
//! which is all the workspace relies on — it never assumes upstream
//! `rand`'s exact bit streams.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from raw random bits (the `Standard` distribution).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits uniformly in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform sampler over half-open / closed intervals.
/// Mirrors upstream's `SampleUniform` so that a single generic
/// `SampleRange` impl exists per range shape — this is what lets
/// integer-literal ranges (`gen_range(2..8)`) infer their type from
/// surrounding arithmetic, exactly as with the real `rand`.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Ranges uniformly samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_closed(lo, hi, rng)
    }
}

/// Uniform integer in `[0, bound)` via Lemire's widening multiply. A tiny
/// modulo bias (< 2^-64) is irrelevant for simulation workloads.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let unit = <$t as StandardSample>::standard_sample(rng);
                lo + (hi - lo) * unit
            }
            fn sample_closed<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let unit = <$t as StandardSample>::standard_sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_float_uniform!(f64, f32);

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** (Blackman & Vigna),
    /// seeded through SplitMix64. Fast, passes BigCrush, and — the only
    /// property the workspace depends on — fully deterministic per seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut word = [0u8; 8];
                word.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(word);
            }
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    /// Alias kept for API parity with upstream `rand`.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random slice operations (shuffling, choosing).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle, in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly chooses one element (`None` on an empty slice).
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Convenience re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
