//! Offline, API-compatible subset of `criterion`.
//!
//! Implements the benchmarking surface this workspace uses
//! (`Criterion::default().sample_size(..)`, `bench_function`,
//! `Bencher::iter` / `iter_batched`, both `criterion_group!` forms and
//! `criterion_main!`). Timing is a simple best-of-samples wall-clock
//! measurement printed to stdout — no statistics engine, plots, or
//! saved baselines.
//!
//! Honours `--bench` (ignored filter flags are tolerated) so
//! `cargo bench` invocations pass through; any positional CLI argument
//! is treated as a substring filter on benchmark names, matching
//! criterion's behaviour.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. The shim runs one routine
/// call per setup regardless; the variant only documents intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Setup re-run for every single iteration.
    PerIteration,
}

/// Drives timing loops inside a benchmark closure.
pub struct Bencher {
    sample_size: usize,
    /// Best observed per-iteration time, recorded for the caller.
    pub(crate) best: Duration,
    pub(crate) iterations: u64,
}

impl Bencher {
    /// Times `routine` repeatedly, keeping the best sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call.
        black_box(routine());
        let mut best = Duration::MAX;
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            total_iters += 1;
            if dt < best {
                best = dt;
            }
        }
        self.best = best;
        self.iterations = total_iters;
    }

    /// Times `routine` on fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut best = Duration::MAX;
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let dt = start.elapsed();
            total_iters += 1;
            if dt < best {
                best = dt;
            }
        }
        self.best = best;
        self.iterations = total_iters;
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Criterion's CLI passes through `cargo bench` extra args; accept
        // and ignore harness flags, treat the first free arg as a filter.
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if arg == "--bench" || arg == "--test" || arg.starts_with('-') {
                continue;
            }
            filter.get_or_insert(arg);
        }
        Criterion { sample_size: 10, filter }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark and prints its best observed time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher { sample_size: self.sample_size, best: Duration::ZERO, iterations: 0 };
        f(&mut b);
        println!(
            "bench: {:<48} best {:>12} over {} samples",
            id,
            fmt_duration(b.best),
            b.iterations
        );
        self
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Groups benchmark functions under a name; both the positional and the
/// `name = ..; config = ..; targets = ..` forms are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion { sample_size: 3, filter: None };
        let mut calls = 0u32;
        c.bench_function("smoke/iter", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        // one warm-up + sample_size timed calls
        assert_eq!(calls, 4);
    }

    #[test]
    fn iter_batched_gets_fresh_input() {
        let mut c = Criterion { sample_size: 4, filter: None };
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(
                || vec![1u64, 2, 3],
                |mut v| {
                    v.push(4);
                    assert_eq!(v.len(), 4);
                    v
                },
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion { sample_size: 2, filter: Some("match_me".to_string()) };
        let mut ran = false;
        c.bench_function("other/name", |b| {
            ran = true;
            b.iter(|| 1u8)
        });
        assert!(!ran);
        c.bench_function("group/match_me", |b| b.iter(|| 1u8));
    }

    mod macro_smoke {
        use super::super::Criterion;

        fn target_a(c: &mut Criterion) {
            c.bench_function("macro/a", |b| b.iter(|| 2u8 + 2));
        }

        fn target_b(c: &mut Criterion) {
            c.bench_function("macro/b", |b| b.iter(|| 2u8 * 2));
        }

        criterion_group!(positional, target_a, target_b);
        criterion_group! {
            name = structured;
            config = Criterion::default().sample_size(2);
            targets = target_a, target_b
        }

        #[test]
        fn both_group_forms_expand_and_run() {
            positional();
            structured();
        }
    }
}
