//! Offline, API-compatible subset of `proptest`.
//!
//! Supports the surface this workspace uses: the `proptest!` macro with
//! an optional `#![proptest_config(..)]` header, `Strategy` +
//! `prop_map`, range and tuple strategies, `Just`,
//! `prop::collection::vec`, `prop_oneof!`, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Unlike upstream proptest there is no shrinking and no persistence of
//! regression seeds: each test runs a fixed number of deterministic
//! pseudo-random cases (seeded per test-case index), which keeps runs
//! reproducible without any filesystem access.

use std::fmt;
use std::ops::Range;

/// Deterministic PRNG handed to strategies (SplitMix64 core).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Widening-multiply range reduction (Lemire).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A failed (or rejected) test case.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Alias of [`TestCaseError::fail`]; upstream distinguishes
    /// rejection from failure, this shim does not.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Generates values of `Self::Value` from a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        strategy::Map { inner: self, f }
    }
}

/// Strategy combinators and adapters.
pub mod strategy {
    use super::{Strategy, TestRng};

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Type-erases a strategy for heterogeneous collections
    /// (used by `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Uniform choice among type-erased strategies.
    pub struct OneOf<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        /// Builds from a non-empty set of alternatives.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}", self.start, self.end
                );
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+ );)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Strategy modules mirroring `proptest::prop::*`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Vectors whose elements come from `element` and whose length
        /// is uniform in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty length range for vec strategy");
            VecStrategy { element, size }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.end - self.size.start) as u64;
                let len = self.size.start + rng.below(span) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Drives `body` over `cases` deterministic random cases, panicking on
/// the first failure. Backs the `proptest!` macro.
pub fn run_cases<F>(cases: u32, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    for case in 0..cases {
        let seed = 0xA1BA_D805_5000_0001u64 ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::new(seed);
        if let Err(e) = body(&mut rng) {
            panic!("proptest case {case} failed: {e}");
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies, mirroring upstream `proptest!`.
#[macro_export]
macro_rules! proptest {
    (@funcs ($config:expr)) => {};
    (@funcs ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            $crate::run_cases(__config.cases, |__rng| {
                $(let $pat = $crate::Strategy::sample(&($strat), __rng);)+
                $body
                Ok(())
            });
        }
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Early-returns a [`TestCaseError`] when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Early-returns a [`TestCaseError`] when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right` ({})\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __l, __r
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Everything the tests import with `use proptest::prelude::*;`.
pub mod prelude {
    pub use super::{
        prop, prop_assert, prop_assert_eq, prop_oneof, proptest, strategy, Just, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, usize)> {
        (-1.0f64..1.0, 0usize..10).prop_map(|(a, b)| (a * 2.0, b + 1))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(x in -5.0f64..5.0, n in 3usize..9) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn tuple_and_map_compose((a, b) in pair()) {
            prop_assert!((-2.0..2.0).contains(&a));
            prop_assert!((1..=10).contains(&b));
        }

        #[test]
        fn vec_strategy_respects_lengths(mut v in prop::collection::vec(0u64..100, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            v.sort_unstable();
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn oneof_draws_from_all_arms(v in prop::collection::vec(prop_oneof![Just(-1.0f64), 0.0f64..1.0], 40..41)) {
            prop_assert!(v.iter().all(|&x| x == -1.0 || (0.0..1.0).contains(&x)));
            prop_assert!(v.iter().any(|&x| x == -1.0));
            prop_assert!(v.iter().any(|&x| x != -1.0));
        }
    }

    #[test]
    fn helper_results_propagate() {
        fn check(x: u64) -> Result<(), TestCaseError> {
            prop_assert!(x < 1_000_000, "x too big: {x}");
            Ok(())
        }
        run_cases(16, |rng| {
            let x = rng.below(1000);
            check(x)?;
            prop_assert_eq!(x, x);
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_number() {
        run_cases(4, |_rng| Err(TestCaseError::fail("forced")));
    }

    use super::run_cases;
}
