//! Offline `#[derive(Serialize, Deserialize)]` for the vendored `serde`.
//!
//! The build environment has no network access, so `syn`/`quote` are
//! unavailable; the item is parsed directly from the raw
//! [`proc_macro::TokenStream`]. Supported shapes — which cover every
//! derived type in this workspace — are:
//!
//! * braced structs with named fields,
//! * enums whose variants are unit, tuple (any arity) or struct-like.
//!
//! Generics are intentionally rejected with a compile error: no derived
//! type in the workspace is generic, and supporting bounds without `syn`
//! would buy complexity for nothing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    let item = parse_item(input);
    let code = match (&item, which) {
        (Item::Struct { name, fields }, Which::Serialize) => gen_struct_ser(name, fields),
        (Item::Struct { name, fields }, Which::Deserialize) => gen_struct_de(name, fields),
        (Item::Enum { name, variants }, Which::Serialize) => gen_enum_ser(name, variants),
        (Item::Enum { name, variants }, Which::Deserialize) => gen_enum_de(name, variants),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

// ---- parsing ------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde_derive: generic type `{name}` is not supported by the vendored serde")
        }
        other => panic!(
            "serde_derive: expected braced body for `{name}` \
             (tuple/unit items unsupported), found {other:?}"
        ),
    };

    match kind.as_str() {
        "struct" => Item::Struct { name, fields: parse_named_fields(body) },
        "enum" => Item::Enum { name, variants: parse_variants(body) },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Parses `ident: Type, ...` inside a brace group, returning field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tree) = tokens.next() else { break };
        let TokenTree::Ident(field) = tree else {
            panic!("serde_derive: expected field name, found {tree:?}")
        };
        fields.push(field.to_string());
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field, found {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        for tree in tokens.by_ref() {
            match &tree {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Parses enum variants: `Name`, `Name(T, ...)`, `Name { f: T, ... }`.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes before the variant.
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        let Some(tree) = tokens.next() else { break };
        let TokenTree::Ident(variant) = tree else {
            panic!("serde_derive: expected variant name, found {tree:?}")
        };
        let name = variant.to_string();
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_types(g.stream());
                tokens.next();
                Shape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                Shape::Struct(fields)
            }
            _ => Shape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip to the next variant (past discriminants and the comma).
        for tree in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tree {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
    }
    variants
}

/// Counts comma-separated types at angle-bracket depth 0.
fn count_top_level_types(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_any = false;
    let mut depth = 0i32;
    for tree in stream {
        match &tree {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_any = false;
                continue;
            }
            _ => {}
        }
        saw_any = true;
    }
    if saw_any {
        count += 1;
    }
    count
}

// ---- code generation ----------------------------------------------------

fn gen_struct_ser(name: &str, fields: &[String]) -> String {
    let pushes: String = fields
        .iter()
        .map(|f| {
            format!(
                "__fields.push(({f:?}.to_string(), ::serde::Serialize::serialize(&self.{f})));\n"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn serialize(&self) -> ::serde::Value {{\n\
             let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
               ::std::vec::Vec::with_capacity({n});\n\
             {pushes}\
             ::serde::Value::Object(__fields)\n\
           }}\n\
         }}",
        n = fields.len(),
    )
}

fn gen_struct_de(name: &str, fields: &[String]) -> String {
    let inits: String = fields
        .iter()
        .map(|f| {
            format!("{f}: ::serde::Deserialize::deserialize(::serde::field(__obj, {f:?})?)?,\n")
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
             let __obj = __v.as_object().ok_or_else(|| ::serde::Error::custom(\
               format!(\"expected object for {name}, found {{}}\", __v.kind())))?;\n\
             ::std::result::Result::Ok({name} {{\n{inits}}})\n\
           }}\n\
         }}"
    )
}

fn gen_enum_ser(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.shape {
                Shape::Unit => {
                    format!("{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),\n")
                }
                Shape::Tuple(1) => format!(
                    "{name}::{vname}(ref __f0) => ::serde::Value::Object(vec![(\
                       {vname:?}.to_string(), ::serde::Serialize::serialize(__f0))]),\n"
                ),
                Shape::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("ref __f{i}")).collect();
                    let elems: Vec<String> =
                        (0..*n).map(|i| format!("::serde::Serialize::serialize(__f{i})")).collect();
                    format!(
                        "{name}::{vname}({binds}) => ::serde::Value::Object(vec![(\
                           {vname:?}.to_string(), ::serde::Value::Array(vec![{elems}]))]),\n",
                        binds = binds.join(", "),
                        elems = elems.join(", "),
                    )
                }
                Shape::Struct(fields) => {
                    let binds: Vec<String> = fields.iter().map(|f| format!("ref {f}")).collect();
                    let pushes: Vec<String> = fields
                        .iter()
                        .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::serialize({f}))"))
                        .collect();
                    format!(
                        "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![(\
                           {vname:?}.to_string(), \
                           ::serde::Value::Object(vec![{pushes}]))]),\n",
                        binds = binds.join(", "),
                        pushes = pushes.join(", "),
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn serialize(&self) -> ::serde::Value {{\n\
             match *self {{\n{arms}}}\n\
           }}\n\
         }}"
    )
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.shape, Shape::Unit))
        .map(|v| format!("{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n", vn = v.name))
        .collect();
    let data_arms: String = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.shape {
                Shape::Unit => None,
                Shape::Tuple(1) => Some(format!(
                    "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                       ::serde::Deserialize::deserialize(__inner)?)),\n"
                )),
                Shape::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::deserialize(&__arr[{i}])?"))
                        .collect();
                    Some(format!(
                        "{vname:?} => {{\n\
                           let __arr = __inner.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array for {name}::{vname}\"))?;\n\
                           if __arr.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                               \"wrong tuple arity for {name}::{vname}\"));\n\
                           }}\n\
                           ::std::result::Result::Ok({name}::{vname}({elems}))\n\
                         }}\n",
                        elems = elems.join(", "),
                    ))
                }
                Shape::Struct(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::deserialize(\
                                   ::serde::field(__vobj, {f:?})?)?"
                            )
                        })
                        .collect();
                    Some(format!(
                        "{vname:?} => {{\n\
                           let __vobj = __inner.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for {name}::{vname}\"))?;\n\
                           ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                         }}\n",
                        inits = inits.join(", "),
                    ))
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
             match __v {{\n\
               ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                   format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
               }},\n\
               ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                   {data_arms}\
                   __other => ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                 }}\n\
               }}\n\
               __other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"expected variant encoding for {name}, found {{}}\", __other.kind()))),\n\
             }}\n\
           }}\n\
         }}"
    )
}
