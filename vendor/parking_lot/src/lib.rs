//! Offline, API-compatible subset of `parking_lot`, backed by
//! `std::sync`. Matches the parking_lot surface this workspace uses:
//! `const fn new`, non-poisoning `lock()` / `read()` / `write()` that
//! return guards directly (a poisoned std lock is recovered, matching
//! parking_lot's no-poisoning semantics).

#![warn(missing_docs)]

use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive (std-backed, parking_lot API shape).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex. `const` so it can initialise a `static`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock (std-backed, parking_lot API shape).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock. `const` so it can initialise a `static`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Condition variable (std-backed, parking_lot API shape).
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified. Unlike parking_lot this takes the guard by
    /// value and returns it, mirroring std; callers in this workspace
    /// re-assign the guard.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    static GLOBAL: Mutex<Option<u32>> = Mutex::new(None);

    #[test]
    fn const_static_mutex_works() {
        let mut g = GLOBAL.lock();
        assert!(g.is_none());
        *g = Some(7);
        drop(g);
        assert_eq!(*GLOBAL.lock(), Some(7));
    }

    #[test]
    fn mutex_excludes_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
