//! Offline, API-compatible subset of `rayon`.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of rayon it uses: `par_iter` / `into_par_iter` /
//! `par_chunks_mut` pipelines ending in `map`, `flat_map_iter`,
//! `enumerate`, `filter`, `for_each`, `reduce_with`, `sum` and `collect`.
//!
//! Unlike a sequential shim, adapters evaluate **eagerly in parallel**
//! using [`std::thread::scope`]: each `map`/`for_each` splits its items
//! into one contiguous chunk per available core and joins before
//! returning, preserving input order. There is no work stealing — the
//! workspace's parallel loops are uniform enough that static chunking
//! keeps all cores busy — but the speedup on multi-core hosts is real,
//! which the `serve_throughput` benchmark relies on.

#![warn(missing_docs)]

use std::ops::Range;

/// Number of worker threads (cores, capped to the item count by callers).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Applies `f` to every item in parallel, preserving order.
fn parallel_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    // One contiguous chunk per thread; chunk i covers [bounds[i], bounds[i+1]).
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut iter = items.into_iter();
    loop {
        let c: Vec<T> = iter.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let mut out: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.push(h.join().expect("rayon worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// An eagerly evaluated parallel iterator: adapters run their closure in
/// parallel immediately and return the materialised results.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter { items: parallel_map(self.items, &f) }
    }

    /// Parallel flat-map where `f` yields a sequential iterator per item.
    pub fn flat_map_iter<I, F>(self, f: F) -> ParIter<I::Item>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(T) -> I + Sync,
    {
        let nested = parallel_map(self.items, &|t| f(t).into_iter().collect::<Vec<_>>());
        ParIter { items: nested.into_iter().flatten().collect() }
    }

    /// Pairs every item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    /// Parallel filter.
    pub fn filter<F: Fn(&T) -> bool + Sync>(self, f: F) -> ParIter<T> {
        let kept = parallel_map(self.items, &|t| if f(&t) { Some(t) } else { None });
        ParIter { items: kept.into_iter().flatten().collect() }
    }

    /// Parallel for-each (side effects only).
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        parallel_map(self.items, &|t| f(t));
    }

    /// Reduces the (already materialised) results; `None` when empty.
    pub fn reduce_with<F: Fn(T, T) -> T>(self, f: F) -> Option<T> {
        self.items.into_iter().reduce(f)
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Collects into any `FromIterator` container, preserving order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Conversion into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Converts into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter { items: self.collect() }
    }
}

/// `par_iter()` over shared references.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

/// `par_chunks_mut()` over mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Splits into mutable chunks of `size`, processable in parallel.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        ParIter { items: self.chunks_mut(size).collect() }
    }
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

/// Drop-in analogue of `rayon::prelude`.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_iter_flattens_in_order() {
        let out: Vec<usize> =
            (0..10usize).into_par_iter().flat_map_iter(|x| vec![x, x + 100]).collect();
        assert_eq!(out.len(), 20);
        assert_eq!(out[0], 0);
        assert_eq!(out[1], 100);
        assert_eq!(out[18], 9);
    }

    #[test]
    fn reduce_with_folds_everything() {
        let total = (1..=100usize).collect::<Vec<_>>().into_par_iter().reduce_with(|a, b| a + b);
        assert_eq!(total, Some(5050));
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_chunks() {
        let mut data = vec![0usize; 64];
        data.par_chunks_mut(8).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v = i;
            }
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[63], 7);
        assert_eq!(data[8], 1);
    }

    #[test]
    fn work_actually_runs_on_multiple_threads() {
        if super::current_num_threads() < 2 {
            return; // single-core host: nothing to assert
        }
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        (0..64usize).into_par_iter().for_each(|_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        assert!(ids.into_inner().unwrap().len() > 1, "expected multi-threaded execution");
    }
}
