//! Offline, API-compatible subset of `serde`.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal serde: [`Serialize`] / [`Deserialize`] convert through an
//! in-memory [`Value`] tree, and the companion `serde_derive` proc-macro
//! crate generates impls for `#[derive(Serialize, Deserialize)]`. The JSON
//! text layer lives in the vendored `serde_json`.
//!
//! Differences from upstream worth knowing:
//! * the data model is a concrete [`Value`] tree, not a generic
//!   serializer/deserializer pair — all the workspace needs is JSON;
//! * non-finite floats round-trip exactly (encoded as the strings
//!   `"NaN"`, `"inf"`, `"-inf"`) instead of degrading to `null`;
//! * enum encoding matches serde's external tagging: unit variants as
//!   `"Name"`, tuple/newtype variants as `{"Name": ...}`, struct variants
//!   as `{"Name": {...}}`.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

// Re-export the derive macros under the trait names, exactly as upstream
// serde does with its `derive` feature.
pub use serde_derive::{Deserialize, Serialize};

/// An in-memory JSON-like value tree: the serialisation data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null` (also `Option::None`).
    Null,
    /// Boolean.
    Bool(bool),
    /// Number (see [`Number`] for the exactness guarantees).
    Num(Number),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key/value map (field order is preserved).
    Object(Vec<(String, Value)>),
}

/// A number that keeps unsigned/signed/float values exact: `u64` seeds and
/// `i64` counters never round-trip through `f64`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Finite float.
    F(f64),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialisation/deserialisation error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the value tree.
    fn serialize(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the value tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// Looks up a required struct field in an object's entries.
pub fn field<'v>(entries: &'v [(String, Value)], name: &str) -> Result<&'v Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error(format!("missing field `{name}`")))
}

// ---- primitive impls ----------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Num(Number::U(n)) => *n,
                    Value::Num(Number::I(i)) if *i >= 0 => *i as u64,
                    Value::Num(Number::F(f)) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(Error(format!(
                        "expected unsigned integer, found {}", other.kind()
                    ))),
                };
                <$t>::try_from(n).map_err(|_| Error(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Num(Number::U(v as u64))
                } else {
                    Value::Num(Number::I(v))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::Num(Number::U(n)) => i64::try_from(*n)
                        .map_err(|_| Error(format!("integer {n} out of i64 range")))?,
                    Value::Num(Number::I(i)) => *i,
                    Value::Num(Number::F(f)) if f.fract() == 0.0 => *f as i64,
                    other => return Err(Error(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                };
                <$t>::try_from(n).map_err(|_| Error(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as f64;
                if v.is_finite() {
                    Value::Num(Number::F(v))
                } else if v.is_nan() {
                    Value::Str("NaN".to_string())
                } else if v > 0.0 {
                    Value::Str("inf".to_string())
                } else {
                    Value::Str("-inf".to_string())
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(Number::F(f)) => Ok(*f as $t),
                    Value::Num(Number::U(n)) => Ok(*n as $t),
                    Value::Num(Number::I(i)) => Ok(*i as $t),
                    Value::Str(s) if s == "NaN" => Ok(<$t>::NAN),
                    Value::Str(s) if s == "inf" => Ok(<$t>::INFINITY),
                    Value::Str(s) if s == "-inf" => Ok(<$t>::NEG_INFINITY),
                    other => Err(Error(format!(
                        "expected number, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error(format!("expected single-char string, found {}", other.kind()))),
        }
    }
}

// ---- container impls ----------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                const ARITY: usize = 0 $( + { let _ = $idx; 1 } )+;
                match v {
                    Value::Array(items) if items.len() == ARITY => {
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    other => Err(Error(format!(
                        "expected {}-tuple array, found {}", ARITY, other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.serialize())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::deserialize(v)?))).collect()
            }
            other => Err(Error(format!("expected object, found {}", other.kind()))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Sort keys so serialisation is deterministic.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.serialize())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::deserialize(v)?))).collect()
            }
            other => Err(Error(format!("expected object, found {}", other.kind()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&42u64.serialize()), Ok(42));
        assert_eq!(i64::deserialize(&(-42i64).serialize()), Ok(-42));
        assert_eq!(f64::deserialize(&1.5f64.serialize()), Ok(1.5));
        assert_eq!(bool::deserialize(&true.serialize()), Ok(true));
        assert_eq!(String::deserialize(&"hi".to_string().serialize()), Ok("hi".into()));
    }

    #[test]
    fn nonfinite_floats_round_trip_exactly() {
        assert!(f64::deserialize(&f64::NAN.serialize()).unwrap().is_nan());
        assert_eq!(f64::deserialize(&f64::INFINITY.serialize()), Ok(f64::INFINITY));
        assert_eq!(f64::deserialize(&f64::NEG_INFINITY.serialize()), Ok(f64::NEG_INFINITY));
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1usize, 2, 3];
        assert_eq!(Vec::<usize>::deserialize(&v.serialize()), Ok(v));
        let o: Option<f64> = None;
        assert_eq!(Option::<f64>::deserialize(&o.serialize()), Ok(None));
        let t = (1usize, 2.5f64);
        assert_eq!(<(usize, f64)>::deserialize(&t.serialize()), Ok(t));
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.0f64);
        assert_eq!(BTreeMap::<String, f64>::deserialize(&m.serialize()), Ok(m));
    }

    #[test]
    fn missing_field_is_an_error() {
        let obj = vec![("present".to_string(), Value::Null)];
        assert!(field(&obj, "absent").is_err());
        assert!(field(&obj, "present").is_ok());
    }

    #[test]
    fn large_u64_stays_exact() {
        let big = u64::MAX - 3;
        assert_eq!(u64::deserialize(&big.serialize()), Ok(big));
    }
}
