//! Offline, API-compatible subset of `serde_json`: renders and parses the
//! vendored `serde`'s [`Value`] tree as JSON text.
//!
//! `f64` values print through Rust's shortest-round-trip formatter and
//! parse through its correctly rounded parser, so
//! serialise → deserialise preserves every finite float bit-for-bit.
//! Non-finite floats are encoded as the strings `"NaN"` / `"inf"` /
//! `"-inf"` (see the vendored `serde` docs).

#![warn(missing_docs)]

use serde::{Deserialize, Number, Serialize, Value};
use std::fmt;

/// JSON serialisation/deserialisation error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serialises `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serialises `value` to human-readable, 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserialisable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::deserialize(&value).map_err(Error::from)
}

/// Parses JSON text into a raw [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

// ---- rendering ----------------------------------------------------------

fn render(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(Number::U(n)) => out.push_str(&n.to_string()),
        Value::Num(Number::I(n)) => out.push_str(&n.to_string()),
        Value::Num(Number::F(f)) => {
            // Rust's Display for f64 is shortest-round-trip; force a
            // fractional part so the value re-parses as a float.
            let s = f.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: advance over a plain UTF-8 run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc =
                        self.peek().ok_or_else(|| Error("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".to_string()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our renderer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F(f)))
            .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, found {:?} at byte {}",
                        other.map(|c| c as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, found {:?} at byte {}",
                        other.map(|c| c as char),
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for &f in &[0.1, -1.5e-300, std::f64::consts::PI, 1.0, f64::MAX, f64::MIN_POSITIVE, -0.0] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} -> {text} -> {back}");
        }
        let back: f64 = from_str(&to_string(&f64::NAN).unwrap()).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1.5f64, 2.5, -3.0];
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&text).unwrap(), v);

        let nested: Vec<Vec<u64>> = vec![vec![1], vec![], vec![2, 3]];
        let text = to_string(&nested).unwrap();
        assert_eq!(from_str::<Vec<Vec<u64>>>(&text).unwrap(), nested);

        let opt: Option<f64> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }

    #[test]
    fn pretty_output_is_reparsable() {
        let v = vec![vec![1.0f64, 2.0], vec![3.0]];
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<f64>>>(&text).unwrap(), v);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<u64>("not json").is_err());
        assert!(from_str::<u64>("42 trailing").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v: Vec<u64> = from_str(" [ 1 , 2 ,\n\t3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
