//! Cross-crate integration tests: the full pipeline from simulated
//! telemetry to active-learning sessions, exercised end-to-end at smoke
//! scale.

use albadross_repro::framework::prelude::*;
use albadross_repro::framework::{prepare_split, seed_and_pool, SplitConfig};

fn volta_smoke() -> SystemData {
    SystemData::generate(System::Volta, FeatureMethod::Mvts, Scale::Smoke, 1234)
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let a = SystemData::generate_uncached(System::Volta, FeatureMethod::Mvts, Scale::Smoke, 99);
    let b = SystemData::generate_uncached(System::Volta, FeatureMethod::Mvts, Scale::Smoke, 99);
    assert_eq!(a.dataset.x.as_slice(), b.dataset.x.as_slice());
    assert_eq!(a.dataset.y, b.dataset.y);

    let sa = prepare_split(&a.dataset, &SplitConfig::default(), 5);
    let sb = prepare_split(&b.dataset, &SplitConfig::default(), 5);
    assert_eq!(sa.selected_features, sb.selected_features);
    assert_eq!(sa.train.x.as_slice(), sb.train.x.as_slice());
}

#[test]
fn train_test_split_has_no_run_level_leakage_in_seed() {
    // Seed + pool partition the training split exactly; no sample appears
    // in both, and together they reconstruct the training set.
    let data = volta_smoke();
    let split = prepare_split(&data.dataset, &SplitConfig::default(), 3);
    let sp = seed_and_pool(&split.train, None, 3);
    assert_eq!(sp.seed_set.len() + sp.pool.len(), split.train.len());
    let mut seen: Vec<(String, usize, usize, usize)> = sp
        .seed_set
        .meta
        .iter()
        .chain(&sp.pool.meta)
        .map(|m| (m.app.clone(), m.run_id, m.node, m.input_deck))
        .collect();
    let n = seen.len();
    seen.sort();
    seen.dedup();
    assert_eq!(seen.len(), n, "a (run, node) sample appeared twice");
}

#[test]
fn session_improves_f1_over_seed_only_model() {
    let data = volta_smoke();
    let split =
        prepare_split(&data.dataset, &SplitConfig { train_fraction: 0.5, top_k_features: 300 }, 7);
    let sp = seed_and_pool(&split.train, None, 7);
    let spec = ModelSpec::tuned(ModelFamily::Rf, true);
    let session = run_session(
        &spec,
        &sp.seed_set,
        &sp.pool,
        &split.test,
        &SessionConfig { strategy: Strategy::Uncertainty, budget: 30, target_f1: None, seed: 7 },
    );
    let final_f1 = session.records.last().unwrap().scores.f1;
    assert!(
        final_f1 > session.initial_scores.f1,
        "F1 must improve with 30 informative labels: {} -> {}",
        session.initial_scores.f1,
        final_f1
    );
}

#[test]
fn no_healthy_seeds_means_total_false_alarm_at_start() {
    // The initial labeled set holds one sample per (app, anomaly) pair and
    // no healthy samples, so the seed-only model cannot predict `healthy`:
    // its false-alarm rate is exactly 1 and its miss rate exactly 0 — the
    // starting point of the paper's Fig. 3 panels.
    let data = volta_smoke();
    let split = prepare_split(&data.dataset, &SplitConfig::default(), 11);
    let sp = seed_and_pool(&split.train, None, 11);
    let spec = ModelSpec::tuned(ModelFamily::Rf, true);
    let session = run_session(
        &spec,
        &sp.seed_set,
        &sp.pool,
        &split.test,
        &SessionConfig { strategy: Strategy::Margin, budget: 1, target_f1: None, seed: 11 },
    );
    assert_eq!(session.initial_scores.false_alarm_rate, 1.0);
    assert_eq!(session.initial_scores.anomaly_miss_rate, 0.0);
}

#[test]
fn early_queries_hunt_for_healthy_labels() {
    // Fig. 4: with no healthy seeds, informative strategies spend most of
    // their first queries asking for healthy labels.
    let data = volta_smoke();
    let split = prepare_split(&data.dataset, &SplitConfig::default(), 13);
    let sp = seed_and_pool(&split.train, None, 13);
    let spec = ModelSpec::tuned(ModelFamily::Rf, true);
    let session = run_session(
        &spec,
        &sp.seed_set,
        &sp.pool,
        &split.test,
        &SessionConfig { strategy: Strategy::Uncertainty, budget: 10, target_f1: None, seed: 13 },
    );
    let healthy = split.train.encoder.encode("healthy").unwrap();
    let healthy_queries = session.records.iter().filter(|r| r.true_label == healthy).count();
    assert!(
        healthy_queries >= 5,
        "expected mostly healthy labels in the first 10 queries, got {healthy_queries}"
    );
}

#[test]
fn feature_methods_produce_different_widths() {
    let mvts = SystemData::generate(System::Volta, FeatureMethod::Mvts, Scale::Smoke, 5);
    let tsf = SystemData::generate(System::Volta, FeatureMethod::TsFresh, Scale::Smoke, 5);
    assert_eq!(mvts.dataset.len(), tsf.dataset.len(), "same campaign, same samples");
    assert!(tsf.dataset.x.cols() > 3 * mvts.dataset.x.cols(), "TSFRESH is far richer");
}

#[test]
fn cached_generation_matches_uncached() {
    let cached = SystemData::generate(System::Volta, FeatureMethod::Mvts, Scale::Smoke, 77);
    let uncached =
        SystemData::generate_uncached(System::Volta, FeatureMethod::Mvts, Scale::Smoke, 77);
    assert_eq!(cached.dataset.x.as_slice(), uncached.dataset.x.as_slice());
    // Second cached call returns the same data.
    let again = SystemData::generate(System::Volta, FeatureMethod::Mvts, Scale::Smoke, 77);
    assert_eq!(cached.dataset.y, again.dataset.y);
}

#[test]
fn proctor_session_is_comparable_and_low_false_alarm_at_end() {
    let data = volta_smoke();
    let split =
        prepare_split(&data.dataset, &SplitConfig { train_fraction: 0.5, top_k_features: 300 }, 17);
    let sp = seed_and_pool(&split.train, None, 17);
    let scale = RunScale::smoke(17);
    let mut cfg = scale.proctor(17);
    cfg.budget = 20;
    let session = run_proctor_session(&sp.seed_set, &sp.pool, &split.test, &cfg);
    assert_eq!(session.records.len(), 20);
    // Proctor's hallmark in the paper: excellent false-alarm behaviour.
    let final_far = session.records.last().unwrap().scores.false_alarm_rate;
    assert!(final_far < 0.3, "proctor final false-alarm rate {final_far}");
}
