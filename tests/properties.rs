//! Property-based tests (proptest) on the core data structures and
//! numerical kernels: invariants that must hold for *any* input, not just
//! the unit-test examples.

use albadross_repro::active::{entropy_score, margin_score, uncertainty_score};
use albadross_repro::chaos::{Backoff, QuarantineConfig, QuarantineGate, Transition};
use albadross_repro::data::Matrix;
use albadross_repro::data::MetricKind;
use albadross_repro::features::stats;
use albadross_repro::features::{chi_square_scores, interpolate_gaps, MinMaxScaler};
use albadross_repro::lint::lexer::lex;
use albadross_repro::lint::lint_source;
use albadross_repro::lint::parse::parse_file;
use albadross_repro::lint::rules::FileContext;
use albadross_repro::ml::{softmax_row, ConfusionMatrix};
use albadross_repro::store::codec::{get_uvarint, put_uvarint};
use albadross_repro::store::{decode_column, encode_column};
use proptest::prelude::*;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 0..max_len)
}

fn nonempty_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..max_len)
}

/// Arbitrary IEEE-754 bit patterns, weighted towards the nasty ones.
fn any_bits() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..u64::MAX,
        Just(f64::NAN.to_bits()),
        Just(f64::INFINITY.to_bits()),
        Just(f64::NEG_INFINITY.to_bits()),
        Just((-0.0f64).to_bits()),
        Just(u64::MAX), // NaN with an all-ones payload
        Just(1u64),     // smallest positive subnormal
    ]
}

fn any_kind() -> impl Strategy<Value = MetricKind> {
    (0u8..2).prop_map(|v| if v == 0 { MetricKind::Gauge } else { MetricKind::Counter })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- stats kernels -------------------------------------------------

    #[test]
    fn stats_are_always_finite(x in finite_vec(200)) {
        prop_assert!(stats::mean(&x).is_finite());
        prop_assert!(stats::std_dev(&x).is_finite());
        prop_assert!(stats::skewness(&x).is_finite());
        prop_assert!(stats::kurtosis(&x).is_finite());
        prop_assert!(stats::linear_trend_slope(&x).is_finite());
        prop_assert!(stats::binned_entropy(&x, 10).is_finite());
        prop_assert!(stats::cid_ce(&x).is_finite());
        prop_assert!(stats::autocorrelation(&x, 3).is_finite());
    }

    #[test]
    fn mean_bounded_by_min_max(x in nonempty_vec(100)) {
        let m = stats::mean(&x);
        prop_assert!(m >= stats::min(&x) - 1e-9);
        prop_assert!(m <= stats::max(&x) + 1e-9);
    }

    #[test]
    fn quantiles_are_monotone(x in nonempty_vec(100), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(stats::quantile(&x, lo) <= stats::quantile(&x, hi) + 1e-9);
    }

    #[test]
    fn shift_invariance_of_dispersion(x in nonempty_vec(80), shift in -1e3f64..1e3) {
        let shifted: Vec<f64> = x.iter().map(|v| v + shift).collect();
        prop_assert!((stats::std_dev(&x) - stats::std_dev(&shifted)).abs() < 1e-6 * (1.0 + stats::std_dev(&x)));
        prop_assert!((stats::mean_abs_change(&x) - stats::mean_abs_change(&shifted)).abs() < 1e-6);
    }

    #[test]
    fn autocorrelation_is_bounded(x in nonempty_vec(120), lag in 1usize..10) {
        let a = stats::autocorrelation(&x, lag);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&a), "autocorr {a}");
    }

    // ---- interpolation -------------------------------------------------

    #[test]
    fn interpolation_removes_all_gaps(
        mut x in prop::collection::vec(prop_oneof![Just(f64::NAN), -1e3f64..1e3], 0..100)
    ) {
        interpolate_gaps(&mut x);
        prop_assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn interpolation_preserves_finite_values(x in nonempty_vec(50), gap_at in 0usize..49) {
        let mut with_gap = x.clone();
        if gap_at < with_gap.len() {
            with_gap[gap_at] = f64::NAN;
        }
        interpolate_gaps(&mut with_gap);
        for (i, (&orig, &filled)) in x.iter().zip(&with_gap).enumerate() {
            if i != gap_at {
                prop_assert_eq!(orig, filled);
            }
        }
    }

    // ---- matrix --------------------------------------------------------

    #[test]
    fn transpose_is_involution(rows in 1usize..8, cols in 1usize..8, seed in 0u64..1000) {
        let mut m = Matrix::zeros(rows, cols);
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
        for v in m.as_mut_slice() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *v = (s >> 33) as f64 / (1u64 << 31) as f64 - 0.5;
        }
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matvec_is_linear(cols in 1usize..6, a in -5.0f64..5.0) {
        let m = Matrix::filled(3, cols, 2.0);
        let v1 = vec![1.0; cols];
        let scaled: Vec<f64> = v1.iter().map(|x| x * a).collect();
        let r1 = m.matvec(&v1);
        let r2 = m.matvec(&scaled);
        for (x, y) in r1.iter().zip(&r2) {
            prop_assert!((x * a - y).abs() < 1e-9);
        }
    }

    // ---- scaling -------------------------------------------------------

    #[test]
    fn minmax_maps_training_to_unit_interval(rows in 2usize..12, cols in 1usize..6, seed in 0u64..1000) {
        let mut m = Matrix::zeros(rows, cols);
        let mut s = seed.wrapping_add(7);
        for v in m.as_mut_slice() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            *v = (s >> 33) as f64 / (1u64 << 28) as f64 - 16.0;
        }
        let scaler = MinMaxScaler::fit(&m);
        let t = scaler.transform(&m);
        for &v in t.as_slice() {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v), "scaled value {v}");
        }
    }

    // ---- metrics -------------------------------------------------------

    #[test]
    fn scores_are_within_unit_interval(
        truth in prop::collection::vec(0usize..4, 1..80),
        seed in 0u64..500,
    ) {
        let mut s = seed;
        let pred: Vec<usize> = truth.iter().map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as usize % 4
        }).collect();
        let cm = ConfusionMatrix::from_predictions(&truth, &pred, 4);
        prop_assert!((0.0..=1.0).contains(&cm.macro_f1()));
        prop_assert!((0.0..=1.0).contains(&cm.accuracy()));
        prop_assert!((0.0..=1.0).contains(&cm.false_alarm_rate(0)));
        prop_assert!((0.0..=1.0).contains(&cm.anomaly_miss_rate(0)));
        prop_assert_eq!(cm.total(), truth.len());
    }

    #[test]
    fn perfect_predictions_always_score_one(truth in prop::collection::vec(0usize..3, 1..50)) {
        let cm = ConfusionMatrix::from_predictions(&truth, &truth, 3);
        prop_assert!((cm.macro_f1() - 1.0).abs() < 1e-12);
        prop_assert_eq!(cm.false_alarm_rate(0), 0.0);
    }

    // ---- query strategies ----------------------------------------------

    #[test]
    fn strategy_scores_are_consistent(raw in prop::collection::vec(0.01f64..10.0, 2..8)) {
        let mut p = raw;
        softmax_row(&mut p);
        let u = uncertainty_score(&p);
        let m = margin_score(&p);
        let h = entropy_score(&p);
        let k = p.len() as f64;
        prop_assert!((0.0..=1.0).contains(&u), "uncertainty {u}");
        prop_assert!((0.0..=1.0).contains(&m), "margin {m}");
        prop_assert!(h >= -1e-12 && h <= k.ln() + 1e-9, "entropy {h}");
    }

    #[test]
    fn certain_predictions_have_extreme_scores(winner in 0usize..4) {
        let mut p = vec![0.0; 4];
        p[winner] = 1.0;
        prop_assert!(uncertainty_score(&p).abs() < 1e-12);
        prop_assert!((margin_score(&p) - 1.0).abs() < 1e-12);
        prop_assert!(entropy_score(&p).abs() < 1e-12);
    }

    // ---- store codecs --------------------------------------------------

    #[test]
    fn uvarint_round_trips_any_u64(values in prop::collection::vec(any_bits(), 0..50)) {
        let mut buf = Vec::new();
        for &v in &values {
            put_uvarint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            prop_assert_eq!(get_uvarint(&buf, &mut pos).unwrap(), v);
        }
        prop_assert_eq!(pos, buf.len(), "no trailing bytes");
    }

    #[test]
    fn column_codec_round_trips_any_bit_pattern(
        bits in prop::collection::vec(any_bits(), 0..120),
        kind in any_kind(),
    ) {
        // *Any* IEEE-754 pattern — subnormals, infinities, NaN payloads —
        // must survive the column codec; NaNs may collapse to the
        // canonical NaN (the gap bitmap carries them), everything else
        // must round-trip bit-exactly.
        let values: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let encoded = encode_column(&values, kind);
        let decoded = decode_column(&encoded, values.len(), kind).unwrap();
        prop_assert_eq!(values.len(), decoded.len());
        for (a, b) in values.iter().zip(&decoded) {
            if a.is_nan() {
                prop_assert!(b.is_nan(), "NaN must decode as NaN");
            } else {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn column_decode_never_panics_on_garbage(
        bytes in prop::collection::vec((0u16..256).prop_map(|v| v as u8), 0..200),
        n in 0usize..64,
        kind in any_kind(),
    ) {
        // Hostile bytes must yield Ok or Err — never a panic, never a
        // huge allocation.
        if let Ok(decoded) = decode_column(&bytes, n, kind) {
            prop_assert_eq!(decoded.len(), n);
        }
    }

    // ---- chaos: backoff ------------------------------------------------

    #[test]
    fn backoff_is_bounded_monotone_and_deterministic(
        base in 1u64..10_000_000,
        cap_mult in 1u64..1_000,
        max_attempts in 1u32..32,
        seed in 0u64..10_000,
    ) {
        let cap = base.saturating_mul(cap_mult);
        let b = Backoff::new(base, cap, max_attempts, seed);
        let mut prev = 0u64;
        for a in 0..max_attempts {
            let d = b.delay_ns(a).expect("attempt inside the budget");
            prop_assert!(d <= cap, "attempt {a}: delay {d} exceeds cap {cap}");
            prop_assert!(d >= base.min(cap), "attempt {a}: delay {d} below floor");
            prop_assert!(d >= prev, "attempt {a}: schedule dipped {prev} -> {d}");
            prev = d;
        }
        // The budget is a hard edge, not a taper.
        prop_assert_eq!(b.delay_ns(max_attempts), None);
        prop_assert_eq!(b.delay_ns(max_attempts.saturating_add(7)), None);
        // Determinism: an identically-parameterised policy replays the
        // exact schedule.
        let twin = Backoff::new(base, cap, max_attempts, seed);
        for a in 0..max_attempts {
            prop_assert_eq!(b.delay_ns(a), twin.delay_ns(a));
        }
        prop_assert!(b.worst_case_total_ns() >= prev, "total covers the largest step");
    }

    // ---- chaos: quarantine hysteresis ----------------------------------

    #[test]
    fn quarantine_never_flaps_under_sub_threshold_alternation(
        bad_windows in 1u32..6,
        good_windows in 1u32..8,
        bad_run in 1u32..10,
        good_run in 1u32..10,
        cycles in 1usize..40,
    ) {
        let gate = QuarantineGate::new(QuarantineConfig { bad_windows, good_windows });
        let mut transitions = 0u64;
        for _ in 0..cycles {
            for _ in 0..bad_run {
                if gate.observe(0, true) != Transition::None {
                    transitions += 1;
                }
            }
            for _ in 0..good_run {
                if gate.observe(0, false) != Transition::None {
                    transitions += 1;
                }
            }
        }
        if bad_run < bad_windows {
            // Bad runs too short to cross the enter threshold: the gate
            // must sit perfectly still, whatever the good runs do.
            prop_assert_eq!(transitions, 0, "hysteresis must absorb sub-threshold flapping");
            prop_assert!(!gate.is_quarantined(0));
        }
        // Transitions strictly alternate enter/release, at most one
        // enter per bad phase — bounded, never runaway.
        prop_assert!(gate.entered() >= gate.released());
        prop_assert!(gate.entered() - gate.released() <= 1);
        prop_assert!(gate.entered() <= cycles as u64);
        prop_assert_eq!(gate.entered() + gate.released(), transitions);
        prop_assert_eq!(gate.is_quarantined(0), gate.entered() > gate.released());
    }

    #[test]
    fn quarantine_thresholds_are_exact(bad_windows in 1u32..9, good_windows in 1u32..9) {
        let gate = QuarantineGate::new(QuarantineConfig { bad_windows, good_windows });
        // Exactly bad_windows consecutive garbage observations enter…
        for k in 1..bad_windows {
            prop_assert_eq!(gate.observe(5, true), Transition::None, "early enter at {k}");
        }
        prop_assert_eq!(gate.observe(5, true), Transition::Entered);
        prop_assert!(gate.is_quarantined(5));
        // …and exactly good_windows consecutive clean ones release.
        for k in 1..good_windows {
            prop_assert_eq!(gate.observe(5, false), Transition::None, "early release at {k}");
        }
        prop_assert_eq!(gate.observe(5, false), Transition::Released);
        prop_assert!(!gate.is_quarantined(5));
        prop_assert_eq!(gate.entered(), 1);
        prop_assert_eq!(gate.released(), 1);
    }

    // ---- chi-square ----------------------------------------------------

    #[test]
    fn chi_square_scores_are_nonnegative_and_finite(
        rows in 4usize..30,
        seed in 0u64..300,
    ) {
        let mut x = Matrix::zeros(rows, 3);
        let mut y = Vec::with_capacity(rows);
        let mut s = seed.wrapping_add(13);
        for r in 0..rows {
            y.push(r % 2);
            for c in 0..3 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                x.set(r, c, (s >> 33) as f64 / (1u64 << 30) as f64 - 4.0);
            }
        }
        let scores = chi_square_scores(&x, &y, 2);
        for &v in &scores.scores {
            prop_assert!(v.is_finite() && v >= 0.0, "chi2 {v}");
        }
    }
}

// ---- alba-lint: the linter itself ----------------------------------

/// Forbidden patterns and the rule each fires when it appears as real
/// code in serve runtime scope (`crates/serve/src/`).
const LINT_CASES: &[(&str, &str)] = &[
    ("thread_rng()", "no-ambient-entropy"),
    ("rng.from_entropy()", "no-ambient-entropy"),
    ("Instant::now()", "no-ambient-time"),
    ("SystemTime::now()", "no-ambient-time"),
    ("a.partial_cmp(&b).unwrap()", "no-float-partial-cmp"),
    ("v.unwrap()", "no-panic-in-fallible"),
    ("v.expect(0)", "no-panic-in-fallible"),
    ("std::fs::read(p)", "no-direct-failpoint-bypass"),
    ("File::open(p)", "no-direct-failpoint-bypass"),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Forbidden patterns inside line comments, block comments (plain and
    /// nested), strings, and raw strings with any hash-guard depth must
    /// never produce a finding: rules match the token stream, and the
    /// lexer strips all of these.
    #[test]
    fn lint_never_fires_on_commented_or_quoted_patterns(
        case in 0..LINT_CASES.len(),
        wrap in 0usize..5,
        hashes in 0usize..4,
    ) {
        let snippet = LINT_CASES[case].0;
        let guard = "#".repeat(hashes);
        let src = match wrap {
            0 => format!("fn ok() {{}}\n// {snippet}\n"),
            1 => format!("/* {snippet}\n   spanning lines */\nfn ok() {{}}\n"),
            2 => format!("fn ok() -> &'static str {{ \"{snippet}\" }}\n"),
            3 => format!("fn ok() -> &'static str {{ r{guard}\"{snippet}\"{guard} }}\n"),
            _ => format!("fn ok() {{}} /* nested /* {snippet} */ still a comment */\n"),
        };
        let findings = lint_source("crates/serve/src/generated.rs", &src);
        prop_assert!(findings.is_empty(), "{snippet:?} wrapped via {wrap} fired: {findings:?}");
    }

    /// The same patterns as live code fire their rule (so the property
    /// above is not vacuous).
    #[test]
    fn lint_fires_on_the_bare_patterns(case in 0..LINT_CASES.len()) {
        let (snippet, rule) = LINT_CASES[case];
        let src = format!("fn f(a: f64, b: f64, v: X, p: &str) {{ let _ = {snippet}; }}");
        let findings = lint_source("crates/serve/src/generated.rs", &src);
        prop_assert!(
            findings.iter().any(|f| f.rule == rule),
            "{snippet:?} should fire {rule}, got {findings:?}"
        );
    }

    /// The lexer and linter are total: hostile input — unterminated
    /// strings and comments, stray hash guards, multi-byte unicode,
    /// control bytes — never panics, and tokens never overlap.
    #[test]
    fn lint_is_total_on_arbitrary_input(seed in 0u64..5000, len in 0usize..400) {
        // Alphabet weighted towards lexer-relevant characters.
        const ALPHABET: &[char] = &[
            '"', '\'', '#', 'r', 'b', 'c', '/', '*', '\\', '\n', '\t', '\0',
            'x', '_', '0', '9', '.', ':', '(', ')', '{', '}', '!', '&',
            'é', '\u{1F600}', '\u{7F}', ' ',
        ];
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(99);
        let src: String = (0..len)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ALPHABET[(s >> 33) as usize % ALPHABET.len()]
            })
            .collect();
        let lexed = lex(&src);
        prop_assert!(lexed.tokens.len() <= src.chars().count().max(1));
        let _ = lint_source("crates/serve/src/generated.rs", &src);
    }

    /// The item parser is total on the same hostile character soup: no
    /// panics, and every item/call/site it does extract carries a line
    /// number inside the input.
    #[test]
    fn item_parser_is_total_on_arbitrary_input(seed in 0u64..5000, len in 0usize..400) {
        const ALPHABET: &[char] = &[
            '"', '\'', '#', 'r', 'b', 'c', '/', '*', '\\', '\n', '\t', '\0',
            'x', '_', '0', '9', '.', ':', '(', ')', '{', '}', '!', '&',
            '<', '>', '[', ']', 'é', '\u{1F600}', '\u{7F}', ' ',
        ];
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(7);
        let src: String = (0..len)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ALPHABET[(s >> 33) as usize % ALPHABET.len()]
            })
            .collect();
        let last_line = src.lines().count().max(1) as u32;
        let lexed = lex(&src);
        let ctx = FileContext::classify("crates/serve/src/generated.rs", &lexed);
        let parsed = parse_file("crates/serve/src/generated.rs", &lexed, &ctx);
        for f in &parsed.fns {
            prop_assert!(f.line >= 1 && f.line <= last_line, "fn line {}", f.line);
            for c in &f.calls {
                prop_assert!(c.line >= 1 && c.line <= last_line, "call line {}", c.line);
            }
            for site in &f.sites {
                prop_assert!(site.line >= 1 && site.line <= last_line, "site line {}", site.line);
            }
        }
    }

    /// Item-shaped token soup drives the parser through its scope
    /// stack (impl/trait/fn nesting, use trees, signatures, bodies)
    /// far more often than raw characters do — still no panics, and
    /// the extracted functions keep their lines in bounds.
    #[test]
    fn item_parser_is_total_on_item_shaped_soup(seed in 0u64..5000, len in 0usize..160) {
        const WORDS: &[&str] = &[
            "fn", "impl", "trait", "use", "for", "struct", "mod", "pub",
            "self", "Self", "crate", "super", "where", "dyn", "as", "mut",
            "{", "}", "(", ")", "[", "]", "<", ">", "::", ".", ",", ";",
            "#", "!", "->", "&", "=", "\n", "a", "B", "f", "unwrap",
            "expect", "lock", "now", "Instant", "HashMap", "tick",
        ];
        let mut s = seed.wrapping_mul(0x9E3779B9).wrapping_add(13);
        let src: String = (0..len)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                WORDS[(s >> 33) as usize % WORDS.len()]
            })
            .collect::<Vec<_>>()
            .join(" ");
        let last_line = src.lines().count().max(1) as u32;
        let lexed = lex(&src);
        let ctx = FileContext::classify("crates/serve/src/generated.rs", &lexed);
        let parsed = parse_file("crates/serve/src/generated.rs", &lexed, &ctx);
        for f in &parsed.fns {
            prop_assert!(f.line >= 1 && f.line <= last_line, "fn line {}", f.line);
        }
    }
}

// ---- alba-net: the wire codec ---------------------------------------

use albadross_repro::net::frame::{decode_frame, HEADER_LEN, MAGIC};
use albadross_repro::net::journal::{parse_log, IngestLog};
use albadross_repro::net::{Decoded, Frame};
use albadross_repro::serve::TelemetrySample;

/// Lowercase ASCII names of bounded length (tenant names, tokens,
/// error messages — content is irrelevant to framing).
fn wire_name() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..26, 0..24)
        .prop_map(|v| v.into_iter().map(|b| (b'a' + b) as char).collect())
}

/// Metric vectors over arbitrary IEEE-754 bit patterns.
fn wire_values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(any_bits().prop_map(f64::from_bits), 0..32)
}

/// Any frame of any type, hostile float payloads included.
fn any_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (wire_name(), wire_name()).prop_map(|(tenant, token)| Frame::Hello { tenant, token }),
        (0u64..u64::MAX, 0u32..u32::MAX)
            .prop_map(|(session, credits)| Frame::Welcome { session, credits }),
        (0u64..1 << 48, 0u64..1 << 48, wire_values())
            .prop_map(|(node, at, values)| Frame::Telemetry { node, at, values }),
        (0u32..u32::MAX).prop_map(|credits| Frame::Credit { credits }),
        (0u64..u64::MAX).prop_map(|dropped| Frame::Busy { dropped }),
        Just(Frame::Bye),
        (0u16..u16::MAX, wire_name()).prop_map(|(code, message)| Frame::Error { code, message }),
    ]
}

/// Bit-exact value equality up to NaN canonicalization: the store
/// column codec represents NaN as a gap and restores the canonical
/// `f64::NAN`, so NaN payload bits are (by documented design) not
/// preserved; everything else must round-trip bit-for-bit.
fn values_codec_equal(x: f64, y: f64) -> bool {
    (x.is_nan() && y.is_nan()) || x.to_bits() == y.to_bits()
}

/// Frames equal bit-for-bit (plain `==` is false for NaN payloads).
fn frames_bit_equal(a: &Frame, b: &Frame) -> bool {
    match (a, b) {
        (
            Frame::Telemetry { node: n1, at: a1, values: v1 },
            Frame::Telemetry { node: n2, at: a2, values: v2 },
        ) => {
            n1 == n2
                && a1 == a2
                && v1.len() == v2.len()
                && v1.iter().zip(v2).all(|(x, y)| values_codec_equal(*x, *y))
        }
        _ => a == b,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any frame round-trips bit-exactly through encode/decode, and the
    /// decoder consumes exactly the encoded length.
    #[test]
    fn wire_frames_round_trip_bit_exactly(frame in any_frame()) {
        let bytes = frame.encode();
        match decode_frame(&bytes) {
            Ok(Decoded::Frame(out, consumed)) => {
                prop_assert_eq!(consumed, bytes.len());
                prop_assert!(frames_bit_equal(&frame, &out), "decoded {:?} from {:?}", out, frame);
            }
            other => prop_assert!(false, "expected a frame, got {:?}", other),
        }
    }

    /// Every strict prefix of a valid frame is Incomplete — truncation
    /// never panics, never errors, never yields a frame.
    #[test]
    fn wire_truncation_is_always_incomplete(frame in any_frame(), cut in 0usize..4096) {
        let bytes = frame.encode();
        let cut = cut % bytes.len().max(1);
        match decode_frame(&bytes[..cut]) {
            Ok(Decoded::Incomplete) => {}
            other => prop_assert!(false, "prefix of {} decoded as {:?}", cut, other),
        }
    }

    /// A single flipped byte can never decode as a valid frame: the CRC
    /// (or the magic/version check) always catches it, with a typed
    /// outcome — corrupt-and-skip, incomplete, or a fatal desync error.
    #[test]
    fn wire_byte_flips_never_yield_a_frame(frame in any_frame(), pos in 0usize..4096, bit in 0usize..8) {
        let mut bytes = frame.encode();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        match decode_frame(&bytes) {
            Ok(Decoded::Frame(_, _)) => {
                prop_assert!(false, "flipped byte {} decoded as a valid frame", pos)
            }
            Ok(Decoded::Corrupt(_, skip)) => prop_assert!(skip > 0 && skip <= bytes.len()),
            Ok(Decoded::Incomplete) => {
                // A corrupted length field can inflate the frame past the
                // buffer; the partial-frame timeout reaps this in practice.
            }
            Err(_) => {
                // Fatal desync: only from damage to the fixed prelude —
                // magic (0..2), version (2), or a length byte (4..8)
                // inflated past the payload cap (Oversize).
                prop_assert!(pos < 8, "fatal error from byte {} past the prelude", pos);
            }
        }
    }

    /// A two-frame stream resyncs past arbitrary corruption of the first
    /// frame's interior: the second frame always decodes intact.
    #[test]
    fn wire_stream_resyncs_after_skippable_corruption(
        a in any_frame(),
        b in any_frame(),
        pos in 0usize..4096,
    ) {
        let mut bytes = a.encode();
        let first_len = bytes.len();
        // Corrupt strictly inside the CRC-covered region (past magic,
        // version, and the length field) so the damage is skippable.
        let lo = HEADER_LEN.min(first_len.saturating_sub(1));
        let pos = lo + pos % (first_len - lo).max(1);
        bytes[pos.min(first_len - 1)] ^= 0xFF;
        bytes.extend_from_slice(&b.encode());
        prop_assert_eq!(&bytes[..2], &MAGIC[..]);
        let mut cursor = 0usize;
        let mut decoded = Vec::new();
        loop {
            match decode_frame(&bytes[cursor..]) {
                Ok(Decoded::Frame(f, n)) => { decoded.push(f); cursor += n; }
                Ok(Decoded::Corrupt(_, n)) => cursor += n,
                Ok(Decoded::Incomplete) => break,
                Err(e) => prop_assert!(false, "desync at {}: {}", cursor, e),
            }
            if cursor >= bytes.len() { break; }
        }
        prop_assert_eq!(decoded.len(), 1, "exactly the second frame survives");
        prop_assert!(frames_bit_equal(&decoded[0], &b));
    }

    /// The ingest journal round-trips hostile float payloads bit-exactly
    /// and tolerates any torn tail without panicking.
    #[test]
    fn ingest_log_round_trips_and_tolerates_torn_tails(
        samples in prop::collection::vec((0usize..64, 0usize..4096, wire_values()), 1..16),
        cut in 0usize..4096,
    ) {
        let mut log = IngestLog::new();
        for (i, (node, at, values)) in samples.iter().enumerate() {
            log.append(i, &TelemetrySample { node: *node, at: *at, values: values.clone() });
        }
        let full = parse_log(log.as_bytes()).expect("a clean log parses");
        prop_assert_eq!(full.len(), samples.len());
        for (rec, (node, at, values)) in full.iter().zip(&samples) {
            prop_assert_eq!(rec.sample.node, *node);
            prop_assert_eq!(rec.sample.at, *at);
            prop_assert_eq!(rec.sample.values.len(), values.len());
            for (x, y) in rec.sample.values.iter().zip(values) {
                prop_assert!(values_codec_equal(*x, *y), "{:?} vs {:?}", x, y);
            }
        }
        // A torn tail drops at most the trailing record, never panics.
        let cut = cut % log.as_bytes().len().max(1);
        if let Ok(records) = parse_log(&log.as_bytes()[..cut]) {
            prop_assert!(records.len() < samples.len());
            for (rec, (node, _, _)) in records.iter().zip(&samples) {
                prop_assert_eq!(rec.sample.node, *node);
            }
        }
    }
}

// ---- alba-par: determinism stress matrix -----------------------------
//
// Random (workers, shards, nodes, fault-plan) tuples, each judged
// against the single-worker oracle for the same configuration: the
// merged event log and the deployed model must be *byte-identical*
// whatever the pool size. A short slice of the matrix runs in tier-1;
// the full sweep is `#[ignore]`d and wired behind `ci.sh --full`.

use albadross_repro::chaos::{FaultEvent, FaultKind, FaultPlan};
use albadross_repro::framework::{MonitorConfig, System};
use albadross_repro::obs::{MemorySink, Obs, TickClock};
use albadross_repro::serve::{FleetService, ServeConfig};
use albadross_repro::telemetry::Scale;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// One randomly drawn stress cell.
#[derive(Debug)]
struct StressCell {
    seed: u64,
    nodes: usize,
    shards: usize,
    workers: usize,
    duration: usize,
    plan: FaultPlan,
}

/// Draws one cell; every dimension that may interact with the merge
/// barrier is randomised — pool size, shard count (including shards >
/// nodes leaving some shards empty), fleet size, and a fault plan
/// mixing shard panics with telemetry faults.
fn draw_cell(rng: &mut StdRng) -> StressCell {
    let nodes = rng.gen_range(4usize..=20);
    let shards = rng.gen_range(1usize..=6);
    let workers = rng.gen_range(2usize..=8);
    let duration = rng.gen_range(90usize..=130);
    let kinds = [
        FaultKind::ShardPanic,
        FaultKind::ShardPanic, // weighted: panics exercise the supervisor
        FaultKind::NodeBlackout,
        FaultKind::GarbageSensor,
        FaultKind::StuckSensor,
    ];
    let events = (0..rng.gen_range(0usize..=4))
        .map(|_| {
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let target = match kind {
                FaultKind::ShardPanic => rng.gen_range(0..shards),
                _ => rng.gen_range(0..nodes),
            };
            FaultEvent {
                kind,
                tick: rng.gen_range(10..duration.saturating_sub(10).max(11)),
                duration: rng.gen_range(1usize..=8),
                target,
                metric: 0,
                magnitude: 1,
            }
        })
        .collect();
    let plan =
        FaultPlan { seed: 0, horizon: duration + 60, n_nodes: nodes, n_shards: shards, events };
    StressCell { seed: rng.gen_range(0u64..1 << 32), nodes, shards, workers, duration, plan }
}

/// Runs one cell at the given worker count; returns the event log and
/// the deployed model (serialised), the byte-identity artifacts.
fn stress_run(cell: &StressCell, workers: usize) -> (Vec<String>, String) {
    let mut cfg = ServeConfig::new(System::Volta, Scale::Smoke, cell.nodes, cell.seed);
    cfg.fleet.duration_override_s = Some(cell.duration);
    cfg.monitor = MonitorConfig { window: 60, stride: 10, confirm: 2, min_confidence: 0.5 };
    cfg.n_shards = cell.shards;
    cfg.n_workers = workers;
    cfg.uncertainty_threshold = 0.35;
    cfg.retrain_batch = 6;
    cfg.max_retrains = 1;
    let obs = Obs::with_clock(Arc::new(TickClock::new()));
    let sink = Arc::new(MemorySink::new());
    obs.set_sink(sink.clone());
    let mut svc = FleetService::with_chaos_plan(cfg, cell.plan.clone(), obs);
    svc.run_to_completion();
    (sink.lines(), svc.model().to_json())
}

/// Judges `cells` random tuples against their 1-worker oracles.
fn stress_matrix(rng_seed: u64, cells: usize) {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut total_events = 0usize;
    for i in 0..cells {
        let cell = draw_cell(&mut rng);
        let (oracle_events, oracle_model) = stress_run(&cell, 1);
        let (events, model) = stress_run(&cell, cell.workers);
        assert_eq!(oracle_events, events, "cell {i} diverged from the 1-worker oracle: {cell:?}");
        assert_eq!(oracle_model, model, "cell {i} deployed a different model: {cell:?}");
        total_events += events.len();
    }
    assert!(total_events > 0, "a stress sweep with no events proves nothing");
}

/// Tier-1 slice of the matrix: a handful of random cells on every run.
#[test]
fn parallel_stress_matrix_smoke() {
    stress_matrix(0xA1BA_0901, 3);
}

/// The full sweep — minutes, not seconds — behind `ci.sh --full`:
/// `cargo test -q parallel_stress_matrix_full -- --ignored`.
#[test]
#[ignore = "full stress sweep; run via ci.sh --full"]
fn parallel_stress_matrix_full() {
    stress_matrix(0xA1BA_0902, 24);
}
