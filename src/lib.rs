//! Umbrella crate for the ALBADross reproduction workspace.
//!
//! Re-exports the public API of every workspace crate so that the
//! `examples/` and `tests/` at the repository root can exercise the full
//! stack through a single dependency.

pub use alba_active as active;
pub use alba_chaos as chaos;
pub use alba_data as data;
pub use alba_features as features;
pub use alba_grid as grid;
pub use alba_lint as lint;
pub use alba_ml as ml;
pub use alba_net as net;
pub use alba_obs as obs;
pub use alba_serve as serve;
pub use alba_store as store;
pub use alba_telemetry as telemetry;
pub use alba_trace as trace;
pub use albadross as framework;
